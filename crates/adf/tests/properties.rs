//! Property-based tests for the adaptive distance filter.

use mobigrid_adf::{
    AdaptiveDistanceFilter, AdfConfig, DistanceFilter, FilterPolicy, FilterReference,
    MobileGridSim, MobileNode, MobilityClassifier, RegionTally, SimBuilder,
};
use mobigrid_campus::{RegionId, RegionKind};
use mobigrid_geo::{Point, Polyline, Vec2};
use mobigrid_mobility::{LoopMode, MobilityPattern, NodeType, PathFollower, StopModel};
use mobigrid_wireless::MnId;
use proptest::prelude::*;

fn trajectory() -> impl Strategy<Value = Vec<Point>> {
    // Random walks with bounded per-step displacement.
    prop::collection::vec((-3.0..3.0f64, -3.0..3.0f64), 2..120).prop_map(|steps| {
        let mut pos = Point::ORIGIN;
        let mut out = vec![pos];
        for (dx, dy) in steps {
            pos += Vec2::new(dx, dy);
            out.push(pos);
        }
        out
    })
}

proptest! {
    /// Raising the DTH never increases the number of transmitted updates
    /// under the paper's per-observation semantics, where each decision
    /// depends only on the current step length.
    ///
    /// (This is deliberately *not* asserted for the dead-band variant:
    /// its anchor path depends on the threshold, so a larger DTH can keep
    /// an older anchor from which a later displacement happens to exceed
    /// it — dead-band filters are only monotone on average, not per
    /// trajectory. Proptest found the counterexample.)
    #[test]
    fn filter_is_monotone_in_dth_under_paper_semantics(
        traj in trajectory(),
        dth_lo in 0.0..3.0f64,
        extra in 0.1..5.0f64,
    ) {
        let reference = FilterReference::PreviousObservation;
        let mut small = DistanceFilter::with_reference(dth_lo, reference);
        let mut large = DistanceFilter::with_reference(dth_lo + extra, reference);
        for p in &traj {
            small.observe(*p);
            large.observe(*p);
        }
        prop_assert!(
            large.sent_count() <= small.sent_count(),
            "dth {dth_lo}+{extra} sent more"
        );
    }

    /// Counts always conserve: sent + filtered = observations.
    #[test]
    fn filter_counts_conserve(traj in trajectory(), dth in 0.0..5.0f64) {
        let mut f = DistanceFilter::new(dth);
        for p in &traj {
            f.observe(*p);
        }
        prop_assert_eq!(f.sent_count() + f.filtered_count(), traj.len() as u64);
        prop_assert!(f.sent_count() >= 1, "first update is always sent");
    }

    /// Under dead-band semantics the broker's stale error is bounded by the
    /// DTH: every observation lies within DTH of the last transmitted point.
    #[test]
    fn dead_band_bounds_stale_error(traj in trajectory(), dth in 0.5..5.0f64) {
        let mut f = DistanceFilter::with_reference(dth, FilterReference::LastTransmitted);
        for p in &traj {
            f.observe(*p);
            let anchor = f.last_sent().expect("first observation sent");
            prop_assert!(anchor.distance_to(*p) < dth + 1e-9);
        }
    }

    /// The classifier never reports movement for a motionless node and
    /// never reports Stop for a node moving faster than walking pace.
    #[test]
    fn classifier_speed_extremes(speed in 2.5..15.0f64, steps in 5usize..40) {
        let mut moving = MobilityClassifier::new(10, 2.0);
        let mut still = MobilityClassifier::new(10, 2.0);
        for t in 0..steps {
            let t_f = t as f64;
            moving.observe(t_f, Point::new(speed * t_f, 0.0));
            still.observe(t_f, Point::new(5.0, 5.0));
        }
        prop_assert_eq!(moving.classify(), MobilityPattern::Linear);
        prop_assert_eq!(still.classify(), MobilityPattern::Stop);
    }

    /// Classifier change fraction is a valid fraction.
    #[test]
    fn classifier_change_fraction_is_bounded(traj in trajectory()) {
        let mut c = MobilityClassifier::new(12, 2.0);
        for (t, p) in traj.iter().enumerate() {
            c.observe(t as f64, *p);
        }
        let f = c.change_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(c.mean_speed() >= 0.0);
    }

    /// The ADF policy returns exactly one decision per observation and its
    /// DTHs are always non-negative and finite.
    #[test]
    fn adf_decisions_align_with_observations(
        node_count in 1usize..12,
        ticks in 1u64..60,
        seed in any::<u64>(),
    ) {
        let mut adf = AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid");
        // Deterministic pseudo-random trajectories from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 250.0 - 2.0
        };
        let mut positions: Vec<Point> = (0..node_count).map(|i| Point::new(i as f64 * 50.0, 0.0)).collect();
        for t in 1..=ticks {
            let obs: Vec<(MnId, Point)> = positions
                .iter_mut()
                .enumerate()
                .map(|(i, p)| {
                    *p += Vec2::new(next(), next());
                    (MnId::new(i as u32), *p)
                })
                .collect();
            let decisions = adf.decide_tick(t as f64, &obs);
            prop_assert_eq!(decisions.len(), obs.len());
            for (id, _) in &obs {
                let dth = adf.dth_for(*id).expect("observed node has a threshold");
                prop_assert!(dth.is_finite() && dth >= 0.0);
            }
        }
    }

    /// Two identical tick streams produce identical ADF decisions —
    /// the policy is deterministic.
    #[test]
    fn adf_is_deterministic(ticks in 1u64..40, seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut adf = AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid");
            let mut sent = Vec::new();
            let mut x = (seed % 97) as f64;
            for t in 1..=ticks {
                x += 1.5 + (t.wrapping_mul(seed) % 3) as f64 * 0.1;
                let obs = [(MnId::new(0), Point::new(x, 0.0))];
                sent.push(adf.decide_tick(t as f64, &obs)[0].is_sent());
            }
            sent
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// `RegionTally::merge` is exact u64 addition, so merging per-shard
    /// tallies in any grouping reproduces the sequential tally verbatim.
    /// This is the algebra the sharded tick reduction relies on.
    #[test]
    fn region_tally_merge_matches_sequential_records(
        records in prop::collection::vec((any::<bool>(), any::<bool>()), 0..120),
        split in 0usize..120,
    ) {
        let kind_of = |road: bool| if road { RegionKind::Road } else { RegionKind::Building };
        let mut whole = RegionTally::new();
        for (road, sent) in &records {
            whole.record(kind_of(*road), *sent);
        }
        let cut = split.min(records.len());
        let mut left = RegionTally::new();
        let mut right = RegionTally::new();
        for (road, sent) in &records[..cut] {
            left.record(kind_of(*road), *sent);
        }
        for (road, sent) in &records[cut..] {
            right.record(kind_of(*road), *sent);
        }
        let mut merged = left;
        merged.merge(&right);
        prop_assert_eq!(merged, whole);
    }

    /// Merging is associative and commutative bit-for-bit: the tally holds
    /// only integer counters, so shard order cannot change the result.
    #[test]
    fn region_tally_merge_is_associative_and_commutative(
        a in prop::collection::vec((any::<bool>(), any::<bool>()), 0..40),
        b in prop::collection::vec((any::<bool>(), any::<bool>()), 0..40),
        c in prop::collection::vec((any::<bool>(), any::<bool>()), 0..40),
    ) {
        let tally = |records: &[(bool, bool)]| {
            let mut t = RegionTally::new();
            for (road, sent) in records {
                t.record(
                    if *road { RegionKind::Road } else { RegionKind::Building },
                    *sent,
                );
            }
            t
        };
        let (ta, tb, tc) = (tally(&a), tally(&b), tally(&c));

        let mut left = ta;
        left.merge(&tb);
        left.merge(&tc);

        let mut right_inner = tb;
        right_inner.merge(&tc);
        let mut right = ta;
        right.merge(&right_inner);
        prop_assert_eq!(left, right);

        let mut ab = ta;
        ab.merge(&tb);
        let mut ba = tb;
        ba.merge(&ta);
        prop_assert_eq!(ab, ba);
    }
}

/// Builds a deterministic synthetic population: a mix of ping-pong walkers
/// and parked nodes, fully determined by `(node_count, seed)`.
fn synthetic_population(node_count: usize, seed: u64) -> Vec<MobileNode> {
    (0..node_count as u32)
        .map(|i| {
            let rng_seed = seed ^ u64::from(i);
            if i % 3 == 2 {
                MobileNode::new(
                    MnId::new(i),
                    RegionId::from_index(0),
                    RegionKind::Building,
                    NodeType::Human,
                    MobilityPattern::Stop,
                    StopModel::new(Point::new(500.0, f64::from(i) * 7.0)),
                    rng_seed,
                )
            } else {
                let y = f64::from(i) * 9.0;
                let path = Polyline::new(vec![Point::new(0.0, y), Point::new(800.0, y)])
                    .expect("two distinct points");
                let speed = 0.5 + f64::from((i.wrapping_mul(7)) % 6);
                MobileNode::new(
                    MnId::new(i),
                    RegionId::from_index(6),
                    RegionKind::Road,
                    NodeType::Human,
                    MobilityPattern::Linear,
                    PathFollower::new(path, speed, LoopMode::PingPong),
                    rng_seed,
                )
            }
        })
        .collect()
}

fn synthetic_sim(node_count: usize, seed: u64, threads: usize) -> MobileGridSim {
    SimBuilder::new()
        .nodes(synthetic_population(node_count, seed))
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid"))
        .threads(threads)
        .build()
        .expect("valid simulation")
}

proptest! {
    /// Reusing the tick scratch leaves no residue between ticks or between
    /// `run` calls: stepping one simulation `a + b` ticks in two bursts
    /// produces the same per-tick statistics stream as one fresh build
    /// stepped `a + b` ticks straight through. Node counts deliberately
    /// straddle multiples of the 64-node shard size, so ragged final
    /// shards reuse the same buffers as full ones.
    #[test]
    fn scratch_reuse_is_invisible_in_tick_stats(
        node_count in 1usize..150,
        seed in any::<u64>(),
        a in 1u64..30,
        b in 1u64..30,
    ) {
        let mut fresh = synthetic_sim(node_count, seed, 1);
        let straight = fresh.run(a + b);

        let mut bursty = synthetic_sim(node_count, seed, 1);
        let mut stream = bursty.run(a);
        stream.extend(bursty.run(b));

        prop_assert_eq!(straight, stream);
    }

    /// The thread count is invisible in the results for arbitrary
    /// populations, including those not divisible by the shard size: the
    /// scratch buffers are carved into the same per-shard slices however
    /// many workers execute them.
    #[test]
    fn thread_count_is_invisible_for_arbitrary_populations(
        node_count in 1usize..150,
        seed in any::<u64>(),
        ticks in 1u64..40,
    ) {
        let serial = synthetic_sim(node_count, seed, 1).run(ticks);
        let threaded = synthetic_sim(node_count, seed, 3).run(ticks);
        prop_assert_eq!(serial, threaded);
    }
}
