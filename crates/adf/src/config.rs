use serde::{Deserialize, Serialize};

use crate::FilterReference;

/// Configuration of the adaptive distance filter.
///
/// The paper fixes some of these (1 s sampling, DTH factors 0.75/1.0/1.25)
/// and leaves others unspecified; the defaults here are the values used for
/// the reproduced figures, and every knob is exposed for the ablation
/// benches.
///
/// # Examples
///
/// ```
/// let cfg = mobigrid_adf::AdfConfig::new(1.0);
/// assert_eq!(cfg.dth_factor, 1.0);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdfConfig {
    /// DTH = `dth_factor` × cluster average velocity (the paper's
    /// 0.75 av / 1.0 av / 1.25 av).
    pub dth_factor: f64,
    /// Sequential-clustering similarity bound α on the velocity feature,
    /// in m/s.
    pub alpha: f64,
    /// Maximum walking velocity (Figure 2's `V_walk`), in m/s.
    pub v_walk: f64,
    /// Sliding window of motion steps used by the classifier.
    pub classifier_window: usize,
    /// Reclustering period, in observation ticks ("classification and
    /// clustering of MNs are repeatedly executed").
    pub recluster_interval: u64,
    /// Ticks of motion history gathered before the initial clustering.
    pub warmup_ticks: u64,
    /// Classifier: heading change (radians) counted as a direction change.
    pub direction_change_threshold: f64,
    /// Classifier: relative speed jump counted as a velocity change.
    pub speed_change_fraction: f64,
    /// Classifier: fraction of changing steps that makes changes "frequent".
    pub frequent_fraction: f64,
    /// Which reference the moving distance is measured from (the paper:
    /// previous observation).
    pub reference: FilterReference,
}

impl AdfConfig {
    /// A configuration with the evaluation defaults and the given DTH
    /// factor.
    #[must_use]
    pub fn new(dth_factor: f64) -> Self {
        AdfConfig {
            dth_factor,
            alpha: 1.0,
            v_walk: 2.0,
            classifier_window: 10,
            recluster_interval: 30,
            warmup_ticks: 5,
            direction_change_threshold: crate::MobilityClassifier::DEFAULT_DIRECTION_CHANGE,
            speed_change_fraction: crate::MobilityClassifier::DEFAULT_SPEED_CHANGE_FRACTION,
            frequent_fraction: crate::MobilityClassifier::DEFAULT_FREQUENT_FRACTION,
            reference: FilterReference::PreviousObservation,
        }
    }

    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.dth_factor.is_finite() && self.dth_factor >= 0.0) {
            return Err(format!("dth_factor must be >= 0, got {}", self.dth_factor));
        }
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(format!("alpha must be > 0, got {}", self.alpha));
        }
        if !(self.v_walk.is_finite() && self.v_walk > 0.0) {
            return Err(format!("v_walk must be > 0, got {}", self.v_walk));
        }
        if self.classifier_window < 2 {
            return Err(format!(
                "classifier_window must be >= 2, got {}",
                self.classifier_window
            ));
        }
        if self.recluster_interval == 0 {
            return Err("recluster_interval must be >= 1".to_string());
        }
        Ok(())
    }
}

impl Default for AdfConfig {
    fn default() -> Self {
        AdfConfig::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        AdfConfig::default().validate().unwrap();
        AdfConfig::new(0.75).validate().unwrap();
        AdfConfig::new(1.25).validate().unwrap();
    }

    #[test]
    fn invalid_fields_are_reported() {
        let c = AdfConfig {
            alpha: 0.0,
            ..AdfConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("alpha"));
        let c = AdfConfig {
            dth_factor: f64::NAN,
            ..AdfConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("dth_factor"));
        let c = AdfConfig {
            classifier_window: 1,
            ..AdfConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("classifier_window"));
        let c = AdfConfig {
            recluster_interval: 0,
            ..AdfConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
