use std::collections::VecDeque;

use mobigrid_geo::{Heading, Point};
use mobigrid_mobility::MobilityPattern;

/// One step of observed motion: speed and (when moving) direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotionSample {
    /// Speed over the step, in m/s.
    pub speed: f64,
    /// Direction of the step; `None` when stationary.
    pub heading: Option<Heading>,
}

/// The paper's Figure-2 mobility-pattern classification algorithm.
///
/// Feed timestamped positions with [`MobilityClassifier::observe`]; the
/// classifier derives per-step speed and heading over a sliding window and
/// classifies:
///
/// * mean speed ≈ 0 → **Stop State**,
/// * mean speed > `v_walk` (running / vehicle) → **Linear Movement**,
/// * walking speed with steady velocity and direction → **Linear Movement**,
/// * walking speed with frequent velocity or direction changes → **Random
///   Movement**.
///
/// "Frequent" is quantified by the fraction of window steps whose heading
/// turned more than [`AdfConfig::direction_change_threshold`] or whose speed
/// jumped more than [`AdfConfig::speed_change_fraction`] of the window mean
/// (the paper leaves these constants unspecified; see `DESIGN.md`).
///
/// [`AdfConfig::direction_change_threshold`]: crate::AdfConfig
/// [`AdfConfig::speed_change_fraction`]: crate::AdfConfig
///
/// # Examples
///
/// ```
/// use mobigrid_adf::MobilityClassifier;
/// use mobigrid_geo::Point;
/// use mobigrid_mobility::MobilityPattern;
///
/// let mut c = MobilityClassifier::new(10, 2.0);
/// for t in 0..10 {
///     c.observe(t as f64, Point::new(1.2 * t as f64, 0.0)); // steady walk east
/// }
/// assert_eq!(c.classify(), MobilityPattern::Linear);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityClassifier {
    window: usize,
    v_walk: f64,
    stop_speed: f64,
    direction_change_threshold: f64,
    speed_change_fraction: f64,
    frequent_fraction: f64,
    samples: VecDeque<MotionSample>,
    last: Option<(f64, Point)>,
}

impl MobilityClassifier {
    /// Default speed below which a node counts as stopped, in m/s.
    pub const DEFAULT_STOP_SPEED: f64 = 0.05;

    /// Default heading change counted as a direction change: 45°.
    pub const DEFAULT_DIRECTION_CHANGE: f64 = std::f64::consts::FRAC_PI_4;

    /// Default relative speed jump counted as a velocity change.
    pub const DEFAULT_SPEED_CHANGE_FRACTION: f64 = 0.5;

    /// Default fraction of changing steps that makes changes "frequent".
    pub const DEFAULT_FREQUENT_FRACTION: f64 = 0.35;

    /// Creates a classifier with a sliding `window` of motion steps and the
    /// maximum walking velocity `v_walk` (m/s).
    ///
    /// # Panics
    ///
    /// Panics when `window < 2` or `v_walk` is not strictly positive.
    #[must_use]
    pub fn new(window: usize, v_walk: f64) -> Self {
        assert!(window >= 2, "classifier window must hold at least 2 steps");
        assert!(
            v_walk.is_finite() && v_walk > 0.0,
            "v_walk must be positive"
        );
        MobilityClassifier {
            window,
            v_walk,
            stop_speed: Self::DEFAULT_STOP_SPEED,
            direction_change_threshold: Self::DEFAULT_DIRECTION_CHANGE,
            speed_change_fraction: Self::DEFAULT_SPEED_CHANGE_FRACTION,
            frequent_fraction: Self::DEFAULT_FREQUENT_FRACTION,
            samples: VecDeque::new(),
            last: None,
        }
    }

    /// Overrides the change-detection thresholds (used by the classifier
    /// ablation bench).
    #[must_use]
    pub fn with_thresholds(
        mut self,
        direction_change_threshold: f64,
        speed_change_fraction: f64,
        frequent_fraction: f64,
    ) -> Self {
        self.direction_change_threshold = direction_change_threshold;
        self.speed_change_fraction = speed_change_fraction;
        self.frequent_fraction = frequent_fraction;
        self
    }

    /// The configured walking-velocity ceiling.
    #[must_use]
    pub fn v_walk(&self) -> f64 {
        self.v_walk
    }

    /// Feeds the node's position at `time_s`, deriving one motion step from
    /// the previous observation. Out-of-order or same-time observations are
    /// ignored.
    pub fn observe(&mut self, time_s: f64, position: Point) {
        if let Some((t0, p0)) = self.last {
            let dt = time_s - t0;
            if dt <= 0.0 {
                return;
            }
            let delta = position - p0;
            let sample = MotionSample {
                speed: delta.norm() / dt,
                heading: delta.heading(),
            };
            if self.samples.len() == self.window {
                self.samples.pop_front();
            }
            self.samples.push_back(sample);
        }
        self.last = Some((time_s, position));
    }

    /// Number of motion steps currently in the window.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Mean speed over the window, in m/s (zero before any steps).
    #[must_use]
    pub fn mean_speed(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.speed).sum::<f64>() / self.samples.len() as f64
    }

    /// The most recent heading observed while moving, if any.
    #[must_use]
    pub fn last_heading(&self) -> Option<Heading> {
        self.samples.iter().rev().find_map(|s| s.heading)
    }

    /// Fraction of window steps exhibiting a velocity or direction change.
    #[must_use]
    pub fn change_fraction(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_speed().max(1e-9);
        let mut changes = 0usize;
        let mut steps = 0usize;
        let mut prev: Option<&MotionSample> = None;
        for s in &self.samples {
            if let Some(p) = prev {
                steps += 1;
                let speed_jump = (s.speed - p.speed).abs() > self.speed_change_fraction * mean;
                let turn = match (p.heading, s.heading) {
                    (Some(a), Some(b)) => a.angle_to(b) > self.direction_change_threshold,
                    // A transition between moving and stopped counts as a
                    // change of movement character.
                    (None, Some(_)) | (Some(_), None) => true,
                    (None, None) => false,
                };
                if speed_jump || turn {
                    changes += 1;
                }
            }
            prev = Some(s);
        }
        changes as f64 / steps as f64
    }

    /// Classifies the window per Figure 2. With no motion history yet,
    /// returns [`MobilityPattern::Stop`].
    #[must_use]
    pub fn classify(&self) -> MobilityPattern {
        let v = self.mean_speed();
        if v <= self.stop_speed {
            return MobilityPattern::Stop;
        }
        if v > self.v_walk {
            // Running or in a vehicle: destination-directed by assumption.
            return MobilityPattern::Linear;
        }
        if self.change_fraction() > self.frequent_fraction {
            MobilityPattern::Random
        } else {
            MobilityPattern::Linear
        }
    }

    /// Clears all motion history.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_line(c: &mut MobilityClassifier, speed: f64, n: usize) {
        for t in 0..n {
            c.observe(t as f64, Point::new(speed * t as f64, 0.0));
        }
    }

    #[test]
    fn stationary_node_is_stop() {
        let mut c = MobilityClassifier::new(10, 2.0);
        for t in 0..10 {
            c.observe(t as f64, Point::new(3.0, 4.0));
        }
        assert_eq!(c.classify(), MobilityPattern::Stop);
        assert_eq!(c.mean_speed(), 0.0);
    }

    #[test]
    fn no_history_defaults_to_stop() {
        let c = MobilityClassifier::new(10, 2.0);
        assert_eq!(c.classify(), MobilityPattern::Stop);
    }

    #[test]
    fn steady_walk_is_linear() {
        let mut c = MobilityClassifier::new(10, 2.0);
        feed_line(&mut c, 1.4, 12);
        assert_eq!(c.classify(), MobilityPattern::Linear);
        assert!((c.mean_speed() - 1.4).abs() < 1e-9);
    }

    #[test]
    fn fast_movement_is_linear_even_if_jittery() {
        // A vehicle above v_walk is LMS regardless of direction changes.
        let mut c = MobilityClassifier::new(10, 2.0);
        let mut pos = Point::ORIGIN;
        for t in 0..12 {
            // Zig-zag at 8 m/s.
            let dir = if t % 2 == 0 { 1.0 } else { -1.0 };
            pos += mobigrid_geo::Vec2::new(8.0 * 0.7, 8.0 * 0.7 * dir);
            c.observe(t as f64, pos);
        }
        assert!(c.mean_speed() > 2.0);
        assert_eq!(c.classify(), MobilityPattern::Linear);
    }

    #[test]
    fn jittery_slow_movement_is_random() {
        // Walking speed but turning sharply every step.
        let mut c = MobilityClassifier::new(10, 2.0);
        let mut pos = Point::ORIGIN;
        for t in 0..14 {
            let angle = (t as f64) * 2.5; // wild turns
            pos += mobigrid_geo::Vec2::from_polar(0.8, mobigrid_geo::Heading::from_radians(angle));
            c.observe(t as f64, pos);
        }
        assert_eq!(c.classify(), MobilityPattern::Random);
    }

    #[test]
    fn walking_with_single_turn_stays_linear() {
        // Tom's case (8): a destination walk with one turn at a crossroads.
        let mut c = MobilityClassifier::new(12, 2.0);
        let mut t = 0.0;
        let mut pos = Point::ORIGIN;
        for _ in 0..6 {
            pos += mobigrid_geo::Vec2::new(1.2, 0.0);
            c.observe(t, pos);
            t += 1.0;
        }
        for _ in 0..6 {
            pos += mobigrid_geo::Vec2::new(0.0, 1.2);
            c.observe(t, pos);
            t += 1.0;
        }
        assert_eq!(c.classify(), MobilityPattern::Linear);
    }

    #[test]
    fn window_slides_and_reclassifies() {
        let mut c = MobilityClassifier::new(6, 2.0);
        feed_line(&mut c, 1.0, 8);
        assert_eq!(c.classify(), MobilityPattern::Linear);
        // Node stops: after the window refills with zero-speed steps the
        // pattern flips to Stop.
        let last = Point::new(7.0, 0.0);
        for t in 8..20 {
            c.observe(t as f64, last);
        }
        assert_eq!(c.classify(), MobilityPattern::Stop);
    }

    #[test]
    fn out_of_order_observations_ignored() {
        let mut c = MobilityClassifier::new(10, 2.0);
        c.observe(5.0, Point::ORIGIN);
        c.observe(4.0, Point::new(100.0, 0.0)); // ignored
        c.observe(5.0, Point::new(50.0, 0.0)); // same time: ignored
        assert_eq!(c.sample_count(), 0);
    }

    #[test]
    fn reset_clears_history() {
        let mut c = MobilityClassifier::new(10, 2.0);
        feed_line(&mut c, 1.0, 5);
        c.reset();
        assert_eq!(c.sample_count(), 0);
        assert_eq!(c.classify(), MobilityPattern::Stop);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_panics() {
        let _ = MobilityClassifier::new(1, 2.0);
    }
}
