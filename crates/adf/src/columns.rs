//! Dense columnar (struct-of-arrays) storage for the node population.
//!
//! The simulation's hot state does not live as a `Vec<MobileNode>`: the
//! builder decomposes the population into [`NodeColumns`] — one dense,
//! node-index-addressed column per field — so the tick kernels become
//! cache-linear slice sweeps instead of pointer-chasing walks over an
//! array of structs. The same SHARD_SIZE=64 shard geometry that governs
//! the parallel phases carves each column into disjoint chunks, which is
//! what lets the movement kernel run shard-parallel through
//! `ShardPool::for_each` with zero per-tick allocations.
//!
//! Column layout (node index `i` addresses every column):
//!
//! ```text
//!        hot movement kernel                cold / metadata
//!  ┌──────────────────────────────┐  ┌────────────────────────────┐
//!  engines[i]       MobilityEngine    regions[i]        RegionId
//!  rng[i]           SplitMix64 (u64)  region_kinds[i]   RegionKind
//!  positions[i]     Point             node_types[i]     NodeType
//!  record_trace[i]  bool              patterns[i]       MobilityPattern
//!  traces[i]        Trace             mobility_kinds[i] MobilityKind
//!                                     home_anchors[i]   Option<Point>
//!                                     retry_policies[i] Option<RetryPolicy>
//! ```
//!
//! The remaining per-node state the ISSUE's layout calls for already lives
//! in sibling dense columns owned by their phases: classification history,
//! cluster id and DTH in the adaptive policy's dense per-node table
//! (`AdaptiveDistanceFilter`), staleness counters in each broker's dense
//! slots, and retry/backoff state plus wire sequence numbers in the
//! simulation's own `Vec`s — all indexed by the same dense node id.
//!
//! # Facade invariants
//!
//! [`MobileNode`] remains the public construction carrier and
//! [`NodeView`] the read-only facade over one column row. Decomposing a
//! population and reading it back through views is lossless for every
//! field, and `advance` produces bit-identical trajectories to stepping
//! the original `MobileNode`s (same engines, same SplitMix64 streams,
//! same order) — the equivalence proptest in
//! `crates/experiments/tests/soa_equivalence.rs` pins both.

use mobigrid_campus::{RegionId, RegionKind};
use mobigrid_geo::Point;
use mobigrid_mobility::{MobilityEngine, MobilityKind, MobilityModel, MobilityPattern, NodeType, Trace};
use mobigrid_sim::SplitMix64;
use mobigrid_wireless::{MnId, RetryPolicy};

use crate::MobileNode;

/// The node population as dense parallel columns, indexed by node id.
///
/// Built once by the simulation builder from a `Vec<MobileNode>` (whose
/// ids must be the dense range `0..n`, validated there); thereafter the
/// tick kernels sweep the columns in shard-sized slices.
pub struct NodeColumns {
    /// Mobility generators, enum-dispatched (no vtable on the hot path).
    engines: Vec<MobilityEngine>,
    /// Per-node SplitMix64 RNG state (one `u64` each), inline in a column.
    rng: Vec<SplitMix64>,
    /// Current ground-truth positions.
    positions: Vec<Point>,
    /// Home regions.
    regions: Vec<RegionId>,
    /// Home-region kinds (road / building), shared read-only with the
    /// sharded apply/measure phase.
    region_kinds: Vec<RegionKind>,
    /// Human-carried or vehicle-mounted.
    node_types: Vec<NodeType>,
    /// Declared (workload-intended) mobility patterns.
    patterns: Vec<MobilityPattern>,
    /// Engine variant discriminants, cached densely for kernels that only
    /// need to branch on the kind.
    mobility_kinds: Vec<MobilityKind>,
    /// Ground-truth traces (empty unless recording was requested).
    traces: Vec<Trace>,
    /// Whether `advance` records into `traces`.
    record_trace: Vec<bool>,
    /// Estimator prior anchors, when the workload set them.
    home_anchors: Vec<Option<Point>>,
    /// Per-node retry policies, when attached.
    retry_policies: Vec<Option<RetryPolicy>>,
}

/// One shard of the movement kernel: disjoint mutable slices of every
/// column the kernel touches, all covering the same node-index range.
pub struct MovementShard<'a> {
    engines: &'a mut [MobilityEngine],
    rng: &'a mut [SplitMix64],
    positions: &'a mut [Point],
    traces: &'a mut [Trace],
    record_trace: &'a [bool],
}

impl MovementShard<'_> {
    /// Advances every node in the shard by `dt` seconds to simulation time
    /// `time_s`, writing the new position both into the position column and
    /// into `obs` (the tick's `(node, position)` observation slice, same
    /// indexing). `base` is the shard's first node index.
    ///
    /// Exactly the legacy `MobileNode::step` semantics per node, in the
    /// same node order: step the engine with the node's own RNG stream,
    /// then record the trace point only when recording is enabled.
    pub fn advance(self, base: usize, time_s: f64, dt: f64, obs: &mut [(MnId, Point)]) {
        debug_assert_eq!(self.engines.len(), obs.len());
        for (k, (engine, rng)) in self.engines.iter_mut().zip(self.rng.iter_mut()).enumerate() {
            let pos = engine.step(dt, rng);
            self.positions[k] = pos;
            if self.record_trace[k] {
                self.traces[k].record(time_s, pos);
            }
            obs[k] = (MnId::new((base + k) as u32), pos);
        }
    }
}

impl NodeColumns {
    /// Decomposes a node population into columns. The caller guarantees
    /// dense ids `0..n` in order (the simulation builder validates this).
    #[must_use]
    pub fn from_nodes(nodes: Vec<MobileNode>) -> Self {
        let n = nodes.len();
        let mut cols = NodeColumns {
            engines: Vec::with_capacity(n),
            rng: Vec::with_capacity(n),
            positions: Vec::with_capacity(n),
            regions: Vec::with_capacity(n),
            region_kinds: Vec::with_capacity(n),
            node_types: Vec::with_capacity(n),
            patterns: Vec::with_capacity(n),
            mobility_kinds: Vec::with_capacity(n),
            traces: Vec::with_capacity(n),
            record_trace: Vec::with_capacity(n),
            home_anchors: Vec::with_capacity(n),
            retry_policies: Vec::with_capacity(n),
        };
        for node in nodes {
            let parts = node.into_parts();
            debug_assert_eq!(
                parts.id.index(),
                cols.engines.len(),
                "node ids must be dense and in order"
            );
            cols.mobility_kinds.push(parts.engine.kind());
            cols.engines.push(parts.engine);
            cols.rng.push(parts.rng);
            cols.positions.push(parts.position);
            cols.regions.push(parts.region);
            cols.region_kinds.push(parts.region_kind);
            cols.node_types.push(parts.node_type);
            cols.patterns.push(parts.declared_pattern);
            cols.traces.push(parts.trace);
            cols.record_trace.push(parts.record_trace);
            cols.home_anchors.push(parts.home_anchor);
            cols.retry_policies.push(parts.retry_policy);
        }
        cols
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// The dense position column (ground truth after the last `advance`).
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The dense home-region-kind column.
    #[must_use]
    pub fn region_kinds(&self) -> &[RegionKind] {
        &self.region_kinds
    }

    /// The dense engine-discriminant column.
    #[must_use]
    pub fn mobility_kinds(&self) -> &[MobilityKind] {
        &self.mobility_kinds
    }

    /// The per-node retry policies (dense, `None` where unset).
    #[must_use]
    pub fn retry_policies(&self) -> &[Option<RetryPolicy>] {
        &self.retry_policies
    }

    /// The per-node home anchors (dense, `None` where unset).
    #[must_use]
    pub fn home_anchors(&self) -> &[Option<Point>] {
        &self.home_anchors
    }

    /// A read-only facade over node `index`'s row across all columns.
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`.
    #[must_use]
    pub fn view(&self, index: usize) -> NodeView<'_> {
        assert!(index < self.len(), "node index {index} out of range");
        NodeView { cols: self, index }
    }

    /// Carves the movement columns into `shard_size`-node shards for the
    /// parallel movement kernel. Shard geometry depends only on the
    /// population size, never the thread count.
    pub fn movement_shards(
        &mut self,
        shard_size: usize,
    ) -> impl ExactSizeIterator<Item = MovementShard<'_>> {
        self.engines
            .chunks_mut(shard_size)
            .zip(self.rng.chunks_mut(shard_size))
            .zip(self.positions.chunks_mut(shard_size))
            .zip(self.traces.chunks_mut(shard_size))
            .zip(self.record_trace.chunks(shard_size))
            .map(|((((engines, rng), positions), traces), record_trace)| MovementShard {
                engines,
                rng,
                positions,
                traces,
                record_trace,
            })
    }
}

impl std::fmt::Debug for NodeColumns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeColumns")
            .field("len", &self.len())
            .finish()
    }
}

/// A read-only view of one node's row across the columns — the thin facade
/// that replaces handing out `&MobileNode`.
#[derive(Clone, Copy)]
pub struct NodeView<'a> {
    cols: &'a NodeColumns,
    index: usize,
}

impl NodeView<'_> {
    /// The node's identity.
    #[must_use]
    pub fn id(&self) -> MnId {
        MnId::new(self.index as u32)
    }

    /// The node's home region.
    #[must_use]
    pub fn region(&self) -> RegionId {
        self.cols.regions[self.index]
    }

    /// Whether the home region is a road or a building.
    #[must_use]
    pub fn region_kind(&self) -> RegionKind {
        self.cols.region_kinds[self.index]
    }

    /// Human-carried or vehicle-mounted.
    #[must_use]
    pub fn node_type(&self) -> NodeType {
        self.cols.node_types[self.index]
    }

    /// The workload's intended mobility pattern.
    #[must_use]
    pub fn declared_pattern(&self) -> MobilityPattern {
        self.cols.patterns[self.index]
    }

    /// Which mobility-engine variant drives this node.
    #[must_use]
    pub fn mobility_kind(&self) -> MobilityKind {
        self.cols.mobility_kinds[self.index]
    }

    /// Current ground-truth position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.cols.positions[self.index]
    }

    /// The recorded ground-truth trace (empty unless recording was
    /// enabled on the source node).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.cols.traces[self.index]
    }

    /// The home-region anchor, when set.
    #[must_use]
    pub fn home_anchor(&self) -> Option<Point> {
        self.cols.home_anchors[self.index]
    }

    /// The node's retry policy, when attached.
    #[must_use]
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.cols.retry_policies[self.index]
    }
}

impl std::fmt::Debug for NodeView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeView")
            .field("id", &self.id())
            .field("region", &self.region())
            .field("kind", &self.region_kind())
            .field("type", &self.node_type())
            .field("pattern", &self.declared_pattern())
            .field("position", &self.position())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigrid_geo::Rect;
    use mobigrid_mobility::{RandomWalk, StopModel};

    fn mixed_population(n: usize) -> Vec<MobileNode> {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(30.0, 30.0)).unwrap();
        (0..n)
            .map(|i| {
                let start = Point::new(5.0 + i as f64, 5.0);
                if i % 2 == 0 {
                    MobileNode::new(
                        MnId::new(i as u32),
                        RegionId::from_index(0),
                        RegionKind::Building,
                        NodeType::Human,
                        MobilityPattern::Stop,
                        StopModel::new(start),
                        i as u64,
                    )
                } else {
                    MobileNode::new(
                        MnId::new(i as u32),
                        RegionId::from_index(1),
                        RegionKind::Road,
                        NodeType::Vehicle,
                        MobilityPattern::Random,
                        RandomWalk::new(bounds, start, 1.0),
                        i as u64,
                    )
                    .with_home_anchor(start)
                }
            })
            .collect()
    }

    #[test]
    fn decomposition_is_lossless_through_views() {
        let nodes = mixed_population(7);
        let expect: Vec<_> = nodes
            .iter()
            .map(|n| {
                (
                    n.id(),
                    n.region(),
                    n.region_kind(),
                    n.node_type(),
                    n.declared_pattern(),
                    n.position(),
                    n.home_anchor(),
                )
            })
            .collect();
        let cols = NodeColumns::from_nodes(nodes);
        assert_eq!(cols.len(), 7);
        for (i, want) in expect.iter().enumerate() {
            let v = cols.view(i);
            let got = (
                v.id(),
                v.region(),
                v.region_kind(),
                v.node_type(),
                v.declared_pattern(),
                v.position(),
                v.home_anchor(),
            );
            assert_eq!(&got, want, "node {i}");
        }
    }

    /// Columnar advance is bit-identical to stepping the original
    /// `MobileNode`s in node order — the facade invariant the pipeline's
    /// golden traces rest on.
    #[test]
    fn advance_matches_aos_stepping() {
        let mut aos = mixed_population(11);
        let mut cols = NodeColumns::from_nodes(mixed_population(11));
        let mut obs = vec![(MnId::new(0), Point::ORIGIN); 11];
        for t in 1..=50 {
            let time_s = t as f64;
            // Bases for shard_size=4 over 11 nodes: 0, 4, 8.
            let shards: Vec<_> = cols.movement_shards(4).collect();
            for (s, shard) in shards.into_iter().enumerate() {
                let base = s * 4;
                let end = (base + 4).min(11);
                shard.advance(base, time_s, 1.0, &mut obs[base..end]);
            }
            for (i, node) in aos.iter_mut().enumerate() {
                let want = node.step(time_s, 1.0);
                assert_eq!(obs[i], (MnId::new(i as u32), want), "tick {t} node {i}");
                assert_eq!(cols.positions()[i], want);
            }
        }
    }

    #[test]
    fn mobility_kind_column_matches_engines() {
        let cols = NodeColumns::from_nodes(mixed_population(6));
        for i in 0..6 {
            let expect = if i % 2 == 0 {
                MobilityKind::Stop
            } else {
                MobilityKind::RandomWalk
            };
            assert_eq!(cols.mobility_kinds()[i], expect);
            assert_eq!(cols.view(i).mobility_kind(), expect);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn view_bounds_are_checked() {
        let cols = NodeColumns::from_nodes(mixed_population(2));
        let _ = cols.view(2);
    }
}
