use mobigrid_campus::RegionKind;

/// Sent/observed tallies split by region kind (road vs building) — the axis
/// of the paper's Figure 6 and Figures 8/9.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindTally {
    /// Updates transmitted.
    pub sent: u64,
    /// Updates observed (transmitted + filtered).
    pub observed: u64,
}

impl KindTally {
    /// Fraction of observations transmitted, in `[0, 1]`; zero when nothing
    /// was observed.
    #[must_use]
    pub fn transmission_rate(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.sent as f64 / self.observed as f64
        }
    }
}

/// Per-region-kind tallies for one run or one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionTally {
    /// Tallies for road regions.
    pub road: KindTally,
    /// Tallies for building regions.
    pub building: KindTally,
}

impl RegionTally {
    /// Creates zeroed tallies.
    #[must_use]
    pub fn new() -> Self {
        RegionTally::default()
    }

    /// Records one observation of the given kind.
    pub fn record(&mut self, kind: RegionKind, sent: bool) {
        let t = match kind {
            RegionKind::Road => &mut self.road,
            RegionKind::Building => &mut self.building,
        };
        t.observed += 1;
        if sent {
            t.sent += 1;
        }
    }

    /// Total updates transmitted across both kinds.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.road.sent + self.building.sent
    }

    /// Total updates observed across both kinds.
    #[must_use]
    pub fn total_observed(&self) -> u64 {
        self.road.observed + self.building.observed
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &RegionTally) {
        self.road.sent += other.road.sent;
        self.road.observed += other.road.observed;
        self.building.sent += other.building.sent;
        self.building.observed += other.building.observed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_kind() {
        let mut t = RegionTally::new();
        t.record(RegionKind::Road, true);
        t.record(RegionKind::Road, false);
        t.record(RegionKind::Building, true);
        assert_eq!(t.road.sent, 1);
        assert_eq!(t.road.observed, 2);
        assert_eq!(t.building.sent, 1);
        assert_eq!(t.total_sent(), 2);
        assert_eq!(t.total_observed(), 3);
    }

    #[test]
    fn transmission_rate() {
        let mut t = RegionTally::new();
        for i in 0..10 {
            t.record(RegionKind::Road, i % 2 == 0);
        }
        assert!((t.road.transmission_rate() - 0.5).abs() < 1e-12);
        assert_eq!(t.building.transmission_rate(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = RegionTally::new();
        a.record(RegionKind::Road, true);
        let mut b = RegionTally::new();
        b.record(RegionKind::Building, false);
        a.merge(&b);
        assert_eq!(a.total_observed(), 2);
        assert_eq!(a.total_sent(), 1);
    }
}
