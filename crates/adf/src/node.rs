use rand::rngs::StdRng;

use mobigrid_campus::{RegionId, RegionKind};
use mobigrid_geo::Point;
use mobigrid_mobility::{MobilityModel, MobilityPattern, NodeType, Trace};
use mobigrid_wireless::{MnId, RetryPolicy};

/// A mobile grid node: identity, workload metadata and its ground-truth
/// mobility generator.
///
/// The node owns its RNG (seeded deterministically per node by the workload
/// generator) and records its ground-truth trace, which the experiments
/// compare broker beliefs against.
pub struct MobileNode {
    id: MnId,
    region: RegionId,
    region_kind: RegionKind,
    node_type: NodeType,
    declared_pattern: MobilityPattern,
    model: Box<dyn MobilityModel + Send>,
    rng: StdRng,
    position: Point,
    trace: Trace,
    record_trace: bool,
    home_anchor: Option<Point>,
    retry_policy: Option<RetryPolicy>,
}

impl std::fmt::Debug for MobileNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileNode")
            .field("id", &self.id)
            .field("region", &self.region)
            .field("kind", &self.region_kind)
            .field("type", &self.node_type)
            .field("pattern", &self.declared_pattern)
            .field("position", &self.position)
            .finish()
    }
}

impl MobileNode {
    /// Creates a node. `declared_pattern` is the Table-1 workload label
    /// (what the generator intends), which the ADF's classifier tries to
    /// recover from motion alone.
    pub fn new(
        id: MnId,
        region: RegionId,
        region_kind: RegionKind,
        node_type: NodeType,
        declared_pattern: MobilityPattern,
        model: Box<dyn MobilityModel + Send>,
        rng: StdRng,
    ) -> Self {
        let position = model.position();
        MobileNode {
            id,
            region,
            region_kind,
            node_type,
            declared_pattern,
            model,
            rng,
            position,
            trace: Trace::new(),
            record_trace: false,
            home_anchor: None,
            retry_policy: None,
        }
    }

    /// Enables ground-truth trace recording on [`MobileNode::step`].
    ///
    /// Off by default: an unbounded trace grows (and occasionally
    /// reallocates) on every tick, which both breaks the simulation's
    /// allocation-free steady state and leaks memory linearly in run length.
    /// Turn it on only for workload export or trace-replay capture.
    #[must_use]
    pub fn with_trace_recording(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Attaches the node's home-region anchor (e.g. the region centre),
    /// which the broker registers as estimator prior knowledge.
    #[must_use]
    pub fn with_home_anchor(mut self, anchor: Point) -> Self {
        self.home_anchor = Some(anchor);
        self
    }

    /// The home-region anchor, when set by the workload generator.
    #[must_use]
    pub fn home_anchor(&self) -> Option<Point> {
        self.home_anchor
    }

    /// Gives the node a bounded retry policy for location updates the
    /// channel drops: the simulation re-sends after an exponential backoff
    /// with deterministic jitter, up to the policy's retry cap.
    ///
    /// Without a policy (the default) a dropped update is simply lost, as
    /// in the pre-fault-injection model.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = Some(policy);
        self
    }

    /// The node's retry policy, when one was attached.
    #[must_use]
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry_policy
    }

    /// The node's identity.
    #[must_use]
    pub fn id(&self) -> MnId {
        self.id
    }

    /// The node's home region (where Table 1 placed it).
    #[must_use]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Whether the home region is a road or a building.
    #[must_use]
    pub fn region_kind(&self) -> RegionKind {
        self.region_kind
    }

    /// Human-carried or vehicle-mounted.
    #[must_use]
    pub fn node_type(&self) -> NodeType {
        self.node_type
    }

    /// The workload's intended mobility pattern for this node.
    #[must_use]
    pub fn declared_pattern(&self) -> MobilityPattern {
        self.declared_pattern
    }

    /// Current ground-truth position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// The recorded ground-truth trace (empty unless
    /// [`MobileNode::with_trace_recording`] was requested).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Advances the node by `dt` seconds to simulation time `time_s`,
    /// returning the new position. Records the trace point only when trace
    /// recording is enabled.
    pub fn step(&mut self, time_s: f64, dt: f64) -> Point {
        self.position = self.model.step(dt, &mut self.rng);
        if self.record_trace {
            self.trace.record(time_s, self.position);
        }
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigrid_campus::RegionId;
    use mobigrid_mobility::StopModel;
    use rand::SeedableRng;

    fn parked_node() -> MobileNode {
        MobileNode::new(
            MnId::new(3),
            RegionId::from_index(0),
            RegionKind::Building,
            NodeType::Human,
            MobilityPattern::Stop,
            Box::new(StopModel::new(Point::new(7.0, 8.0))),
            StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn metadata_round_trips() {
        let n = parked_node();
        assert_eq!(n.id(), MnId::new(3));
        assert_eq!(n.region().index(), 0);
        assert_eq!(n.region_kind(), RegionKind::Building);
        assert_eq!(n.node_type(), NodeType::Human);
        assert_eq!(n.declared_pattern(), MobilityPattern::Stop);
        assert_eq!(n.position(), Point::new(7.0, 8.0));
    }

    #[test]
    fn stepping_records_the_trace_only_when_enabled() {
        let mut silent = parked_node();
        let mut recording = parked_node().with_trace_recording();
        for t in 1..=5 {
            silent.step(t as f64, 1.0);
            recording.step(t as f64, 1.0);
        }
        assert_eq!(silent.trace().len(), 0);
        assert_eq!(recording.trace().len(), 5);
        assert_eq!(recording.trace().total_distance(), 0.0);
    }
}
