use mobigrid_campus::{RegionId, RegionKind};
use mobigrid_geo::Point;
use mobigrid_mobility::{MobilityEngine, MobilityKind, MobilityModel, MobilityPattern, NodeType, Trace};
use mobigrid_sim::SplitMix64;
use mobigrid_wireless::{MnId, RetryPolicy};

/// A mobile grid node: identity, workload metadata and its ground-truth
/// mobility generator.
///
/// The node owns its RNG state (seeded deterministically per node by the
/// workload generator, via the golden-trace-compatible
/// [`SplitMix64::from_stdrng_seed`] path) and records its ground-truth
/// trace, which the experiments compare broker beliefs against.
///
/// Inside [`MobileGridSim`](crate::MobileGridSim) the population does not
/// live as a `Vec<MobileNode>`: the builder decomposes the nodes into the
/// dense [`NodeColumns`](crate::NodeColumns) SoA store and `MobileNode`
/// survives only as the construction-time carrier (and, via
/// [`NodeView`](crate::NodeView), as the read-only facade). Stand-alone
/// drivers (interval resampling, federated ticking) still step `MobileNode`
/// directly; both paths produce bit-identical trajectories.
pub struct MobileNode {
    id: MnId,
    region: RegionId,
    region_kind: RegionKind,
    node_type: NodeType,
    declared_pattern: MobilityPattern,
    engine: MobilityEngine,
    rng: SplitMix64,
    position: Point,
    trace: Trace,
    record_trace: bool,
    home_anchor: Option<Point>,
    retry_policy: Option<RetryPolicy>,
}

/// A `MobileNode` decomposed into its per-column values, consumed by
/// `NodeColumns::from_nodes`.
pub(crate) struct NodeParts {
    pub(crate) id: MnId,
    pub(crate) region: RegionId,
    pub(crate) region_kind: RegionKind,
    pub(crate) node_type: NodeType,
    pub(crate) declared_pattern: MobilityPattern,
    pub(crate) engine: MobilityEngine,
    pub(crate) rng: SplitMix64,
    pub(crate) position: Point,
    pub(crate) trace: Trace,
    pub(crate) record_trace: bool,
    pub(crate) home_anchor: Option<Point>,
    pub(crate) retry_policy: Option<RetryPolicy>,
}

impl std::fmt::Debug for MobileNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileNode")
            .field("id", &self.id)
            .field("region", &self.region)
            .field("kind", &self.region_kind)
            .field("type", &self.node_type)
            .field("pattern", &self.declared_pattern)
            .field("position", &self.position)
            .finish()
    }
}

impl MobileNode {
    /// Creates a node. `declared_pattern` is the Table-1 workload label
    /// (what the generator intends), which the ADF's classifier tries to
    /// recover from motion alone.
    ///
    /// `model` is any concrete mobility model (or an already-built
    /// [`MobilityEngine`], or a legacy `Box<dyn MobilityModel + Send>` for
    /// out-of-tree models). `rng_seed` seeds the node's SplitMix64 stream
    /// exactly like the former per-node `StdRng::seed_from_u64(rng_seed)`
    /// did, so trajectories are unchanged from the AoS era.
    pub fn new(
        id: MnId,
        region: RegionId,
        region_kind: RegionKind,
        node_type: NodeType,
        declared_pattern: MobilityPattern,
        model: impl Into<MobilityEngine>,
        rng_seed: u64,
    ) -> Self {
        let engine = model.into();
        let position = engine.position();
        MobileNode {
            id,
            region,
            region_kind,
            node_type,
            declared_pattern,
            engine,
            rng: SplitMix64::from_stdrng_seed(rng_seed),
            position,
            trace: Trace::new(),
            record_trace: false,
            home_anchor: None,
            retry_policy: None,
        }
    }

    /// Enables ground-truth trace recording on [`MobileNode::step`].
    ///
    /// Off by default: an unbounded trace grows (and occasionally
    /// reallocates) on every tick, which both breaks the simulation's
    /// allocation-free steady state and leaks memory linearly in run length.
    /// Turn it on only for workload export or trace-replay capture.
    #[must_use]
    pub fn with_trace_recording(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Attaches the node's home-region anchor (e.g. the region centre),
    /// which the broker registers as estimator prior knowledge.
    #[must_use]
    pub fn with_home_anchor(mut self, anchor: Point) -> Self {
        self.home_anchor = Some(anchor);
        self
    }

    /// The home-region anchor, when set by the workload generator.
    #[must_use]
    pub fn home_anchor(&self) -> Option<Point> {
        self.home_anchor
    }

    /// Gives the node a bounded retry policy for location updates the
    /// channel drops: the simulation re-sends after an exponential backoff
    /// with deterministic jitter, up to the policy's retry cap.
    ///
    /// Without a policy (the default) a dropped update is simply lost, as
    /// in the pre-fault-injection model.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = Some(policy);
        self
    }

    /// The node's retry policy, when one was attached.
    #[must_use]
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry_policy
    }

    /// The node's identity.
    #[must_use]
    pub fn id(&self) -> MnId {
        self.id
    }

    /// The node's home region (where Table 1 placed it).
    #[must_use]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Whether the home region is a road or a building.
    #[must_use]
    pub fn region_kind(&self) -> RegionKind {
        self.region_kind
    }

    /// Human-carried or vehicle-mounted.
    #[must_use]
    pub fn node_type(&self) -> NodeType {
        self.node_type
    }

    /// The workload's intended mobility pattern for this node.
    #[must_use]
    pub fn declared_pattern(&self) -> MobilityPattern {
        self.declared_pattern
    }

    /// Which mobility-engine variant drives this node.
    #[must_use]
    pub fn mobility_kind(&self) -> MobilityKind {
        self.engine.kind()
    }

    /// Current ground-truth position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// The recorded ground-truth trace (empty unless
    /// [`MobileNode::with_trace_recording`] was requested).
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Advances the node by `dt` seconds to simulation time `time_s`,
    /// returning the new position. Records the trace point only when trace
    /// recording is enabled.
    pub fn step(&mut self, time_s: f64, dt: f64) -> Point {
        self.position = self.engine.step(dt, &mut self.rng);
        if self.record_trace {
            self.trace.record(time_s, self.position);
        }
        self.position
    }

    /// Decomposes the node into its column values (builder → SoA handoff).
    pub(crate) fn into_parts(self) -> NodeParts {
        NodeParts {
            id: self.id,
            region: self.region,
            region_kind: self.region_kind,
            node_type: self.node_type,
            declared_pattern: self.declared_pattern,
            engine: self.engine,
            rng: self.rng,
            position: self.position,
            trace: self.trace,
            record_trace: self.record_trace,
            home_anchor: self.home_anchor,
            retry_policy: self.retry_policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigrid_campus::RegionId;
    use mobigrid_geo::Rect;
    use mobigrid_mobility::{RandomWalk, StopModel};

    fn parked_node() -> MobileNode {
        MobileNode::new(
            MnId::new(3),
            RegionId::from_index(0),
            RegionKind::Building,
            NodeType::Human,
            MobilityPattern::Stop,
            StopModel::new(Point::new(7.0, 8.0)),
            1,
        )
    }

    #[test]
    fn metadata_round_trips() {
        let n = parked_node();
        assert_eq!(n.id(), MnId::new(3));
        assert_eq!(n.region().index(), 0);
        assert_eq!(n.region_kind(), RegionKind::Building);
        assert_eq!(n.node_type(), NodeType::Human);
        assert_eq!(n.declared_pattern(), MobilityPattern::Stop);
        assert_eq!(n.position(), Point::new(7.0, 8.0));
        assert_eq!(n.mobility_kind(), MobilityKind::Stop);
    }

    #[test]
    fn stepping_records_the_trace_only_when_enabled() {
        let mut silent = parked_node();
        let mut recording = parked_node().with_trace_recording();
        for t in 1..=5 {
            silent.step(t as f64, 1.0);
            recording.step(t as f64, 1.0);
        }
        assert_eq!(silent.trace().len(), 0);
        assert_eq!(recording.trace().len(), 5);
        assert_eq!(recording.trace().total_distance(), 0.0);
    }

    /// The seed-compat contract at the node level: a node seeded with
    /// `rng_seed` walks the exact trajectory of the legacy AoS node that
    /// held `StdRng::seed_from_u64(rng_seed)` and a boxed model.
    #[test]
    fn trajectory_matches_legacy_boxed_stdrng_driver() {
        use rand::{rngs::StdRng, SeedableRng};

        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(40.0, 40.0)).unwrap();
        let start = Point::new(20.0, 20.0);
        let mut node = MobileNode::new(
            MnId::new(0),
            RegionId::from_index(0),
            RegionKind::Building,
            NodeType::Human,
            MobilityPattern::Random,
            RandomWalk::new(bounds, start, 1.2),
            99,
        );
        // The legacy driver, reproduced inline: boxed dyn model + StdRng.
        let mut model: Box<dyn MobilityModel + Send> =
            Box::new(RandomWalk::new(bounds, start, 1.2));
        let mut rng = StdRng::seed_from_u64(99);
        for t in 1..=200 {
            let got = node.step(t as f64, 1.0);
            let want = model.step(1.0, &mut rng);
            assert_eq!(got, want, "tick {t}");
        }
    }
}
