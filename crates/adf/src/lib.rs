//! The Adaptive Distance Filter (ADF) — the paper's contribution.
//!
//! Mobile nodes in a grid must keep the grid broker informed of their
//! location, but naive once-a-second location updates (LUs) saturate the
//! wireless uplink. The ADF (Kim, Jang & Lee, ICDCS Workshops 2007) cuts
//! that traffic in three moves:
//!
//! 1. **Classify** each node's mobility pattern — Stop, Random Movement or
//!    Linear Movement — from its velocity and direction history
//!    ([`MobilityClassifier`], the paper's Figure 2 algorithm).
//! 2. **Cluster** the moving nodes by velocity with sequential clustering,
//!    and give each cluster a Distance Threshold (DTH) proportional to the
//!    *cluster's* average velocity ([`AdaptiveDistanceFilter`]). The
//!    non-adaptive baseline ([`GeneralDistanceFilter`]) uses one global
//!    DTH.
//! 3. **Filter**: suppress a node's LU while its displacement since the
//!    last *transmitted* LU is under its DTH ([`DistanceFilter`]).
//!
//! Filtering creates location error at the broker; the paper compensates
//! with a **location estimator** — Brown's double exponential smoothing over
//! speed and direction — hosted in the [`GridBroker`].
//!
//! [`MobileGridSim`] wires nodes, filter policy, access network and brokers
//! into the full evaluation pipeline that regenerates the paper's figures.
//!
//! # Examples
//!
//! Filtering a single walking node with a 2 m threshold:
//!
//! ```
//! use mobigrid_adf::{Decision, DistanceFilter};
//! use mobigrid_geo::Point;
//!
//! let mut df = DistanceFilter::new(2.0);
//! assert_eq!(df.observe(Point::new(0.0, 0.0)), Decision::Sent); // first LU
//! assert_eq!(df.observe(Point::new(1.0, 0.0)), Decision::Filtered); // moved < 2 m
//! assert_eq!(df.observe(Point::new(3.5, 0.0)), Decision::Sent); // moved 2.5 m
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod classifier;
pub mod columns;
mod config;
mod filter;
mod node;
mod pipeline;
mod policy;
mod runtime;
mod stats;

pub use broker::{ApplyInfo, BrokerDelta, BrokerShard, EstimatorKind, GridBroker, LocationRecord};
pub use classifier::{MobilityClassifier, MotionSample};
pub use columns::{MovementShard, NodeColumns, NodeView};
pub use config::AdfConfig;
pub use filter::{Decision, DistanceFilter, FilterReference};
pub use node::MobileNode;
pub use pipeline::{error_bucket_spec, MobileGridSim, SimBuilder, TickStats};
pub use runtime::{FaultSpec, RuntimeOptions, SimError};
pub use policy::{
    AdaptiveDistanceFilter, FilterPolicy, FilterProbe, GeneralDistanceFilter, IdealPolicy,
};
pub use stats::{KindTally, RegionTally};
