use std::collections::BTreeMap;

use mobigrid_cluster::Bsas;
use mobigrid_geo::Point;
use mobigrid_mobility::MobilityPattern;
use mobigrid_sim::stats::Welford;
use mobigrid_wireless::MnId;

use crate::{AdfConfig, Decision, DistanceFilter, FilterReference, MobilityClassifier};

/// A snapshot of the per-node filter state behind one decision, exposed
/// for the flight recorder: which mobility class and cluster were in
/// force, which DTH was compared against, and the displacement the filter
/// measured on its most recent observation.
///
/// Every field is optional — policies report what they actually track
/// (the ideal pass-through policy tracks nothing and returns no probe at
/// all).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FilterProbe {
    /// The node's mobility classification, when the policy classifies.
    pub pattern: Option<MobilityPattern>,
    /// The velocity cluster the node was assigned, when the policy
    /// clusters (stopped nodes are excluded from clustering).
    pub cluster: Option<usize>,
    /// The distance threshold in force, in metres.
    pub dth: Option<f64>,
    /// The displacement measured against the filter's reference on the
    /// most recent observation, in metres.
    pub displacement: Option<f64>,
}

/// A location-update filtering policy: the component that sits between the
/// wireless gateways and the grid broker and decides, each tick, which
/// nodes' location updates are forwarded.
///
/// Implementations are driven with whole ticks (all nodes' observations at
/// one instant) because the adaptive policy clusters *across* nodes.
pub trait FilterPolicy {
    /// Processes one tick of observations, writing one decision per
    /// observation (same order) into `decisions`.
    ///
    /// `decisions` is a caller-provided scratch buffer: implementations
    /// must clear it and then fill it, never read stale contents. Borrowing
    /// the buffer instead of returning a fresh `Vec` keeps the simulation's
    /// steady-state tick path allocation-free — the caller hands the same
    /// buffer back every tick and its capacity is reused.
    fn process_tick(
        &mut self,
        time_s: f64,
        observations: &[(MnId, Point)],
        decisions: &mut Vec<Decision>,
    );

    /// Convenience wrapper around [`FilterPolicy::process_tick`] that
    /// returns the decisions as a fresh `Vec` — for tests and one-shot
    /// callers that don't manage a scratch buffer.
    fn decide_tick(&mut self, time_s: f64, observations: &[(MnId, Point)]) -> Vec<Decision> {
        let mut decisions = Vec::with_capacity(observations.len());
        self.process_tick(time_s, observations, &mut decisions);
        decisions
    }

    /// A short human-readable policy name for reports.
    fn name(&self) -> &str;

    /// The node's current distance threshold, when the policy uses one.
    fn dth_for(&self, node: MnId) -> Option<f64> {
        let _ = node;
        None
    }

    /// The filter state behind the node's most recent decision, for the
    /// flight recorder. `None` (the default) means the policy tracks no
    /// per-node state worth recording.
    fn probe(&self, node: MnId) -> Option<FilterProbe> {
        let _ = node;
        None
    }
}

impl<P: FilterPolicy + ?Sized> FilterPolicy for Box<P> {
    fn process_tick(
        &mut self,
        time_s: f64,
        observations: &[(MnId, Point)],
        decisions: &mut Vec<Decision>,
    ) {
        (**self).process_tick(time_s, observations, decisions);
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn dth_for(&self, node: MnId) -> Option<f64> {
        (**self).dth_for(node)
    }

    fn probe(&self, node: MnId) -> Option<FilterProbe> {
        (**self).probe(node)
    }
}

/// The "ideal LU" baseline: every observation is transmitted.
///
/// This is the paper's comparison point — roughly 135 LUs/second for the
/// 140-node campus workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealPolicy;

impl IdealPolicy {
    /// Creates the pass-through policy.
    #[must_use]
    pub fn new() -> Self {
        IdealPolicy
    }
}

impl FilterPolicy for IdealPolicy {
    fn process_tick(
        &mut self,
        _time_s: f64,
        observations: &[(MnId, Point)],
        decisions: &mut Vec<Decision>,
    ) {
        decisions.clear();
        decisions.resize(observations.len(), Decision::Sent);
    }

    fn name(&self) -> &str {
        "ideal"
    }
}

/// The non-adaptive baseline (general DF): one global DTH sized from the
/// average velocity of *all* nodes.
///
/// The paper's critique (§3.2.2): a single threshold is too large for slow
/// indoor nodes and too small for vehicles, so it filters poorly at both
/// ends. Reproduced here for the ADF-vs-DF ablation.
#[derive(Debug, Clone)]
pub struct GeneralDistanceFilter {
    factor: f64,
    warmup_ticks: u64,
    reference: FilterReference,
    tick: u64,
    speeds: Welford,
    last_positions: BTreeMap<MnId, (f64, Point)>,
    filters: BTreeMap<MnId, DistanceFilter>,
}

impl GeneralDistanceFilter {
    /// Creates the baseline with DTH = `factor` × global average velocity,
    /// activating after `warmup_ticks` observation ticks, using the paper's
    /// previous-observation distance semantics.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative or non-finite.
    #[must_use]
    pub fn new(factor: f64, warmup_ticks: u64) -> Self {
        Self::with_reference(factor, warmup_ticks, FilterReference::PreviousObservation)
    }

    /// Creates the baseline with explicit distance semantics.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is negative or non-finite.
    #[must_use]
    pub fn with_reference(factor: f64, warmup_ticks: u64, reference: FilterReference) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "DTH factor must be non-negative"
        );
        GeneralDistanceFilter {
            factor,
            warmup_ticks,
            reference,
            tick: 0,
            speeds: Welford::new(),
            last_positions: BTreeMap::new(),
            filters: BTreeMap::new(),
        }
    }

    /// The current global DTH in metres (zero during warmup).
    #[must_use]
    pub fn global_dth(&self) -> f64 {
        if self.tick < self.warmup_ticks {
            0.0
        } else {
            self.factor * self.speeds.mean()
        }
    }
}

impl FilterPolicy for GeneralDistanceFilter {
    fn process_tick(
        &mut self,
        time_s: f64,
        observations: &[(MnId, Point)],
        decisions: &mut Vec<Decision>,
    ) {
        self.tick += 1;
        // Update the global velocity statistic from per-node displacements.
        for (node, pos) in observations {
            if let Some((t0, p0)) = self.last_positions.get(node) {
                let dt = time_s - t0;
                if dt > 0.0 {
                    self.speeds.push(p0.distance_to(*pos) / dt);
                }
            }
            self.last_positions.insert(*node, (time_s, *pos));
        }
        let dth = self.global_dth();
        let reference = self.reference;
        decisions.clear();
        decisions.extend(observations.iter().map(|(node, pos)| {
            let f = self
                .filters
                .entry(*node)
                .or_insert_with(|| DistanceFilter::with_reference(0.0, reference));
            f.set_dth(dth);
            f.observe(*pos)
        }));
    }

    fn name(&self) -> &str {
        "general-df"
    }

    fn dth_for(&self, node: MnId) -> Option<f64> {
        self.filters.get(&node).map(DistanceFilter::dth)
    }

    fn probe(&self, node: MnId) -> Option<FilterProbe> {
        self.filters.get(&node).map(|f| FilterProbe {
            pattern: None,
            cluster: None,
            dth: Some(f.dth()),
            displacement: f.last_displacement(),
        })
    }
}

struct AdfNodeState {
    classifier: MobilityClassifier,
    filter: DistanceFilter,
    pattern: MobilityPattern,
    cluster: Option<usize>,
}

/// Dense per-node state table indexed by [`MnId::index`].
///
/// Node ids in this codebase are dense (`0..population`), so a flat `Vec`
/// replaces the pointer-chasing `BTreeMap` the hot observe loop used to
/// traverse twice per node per tick. Unobserved slots hold `None`; memory
/// is proportional to the largest observed id, not the id space. Every
/// iterator below walks slots in ascending-id order — exactly the order
/// `BTreeMap` iteration used — so classification, BSAS feature order and
/// Welford pushes are bit-identical to the map-based implementation.
#[derive(Default)]
struct AdfNodeTable {
    slots: Vec<Option<AdfNodeState>>,
}

impl AdfNodeTable {
    fn get(&self, node: MnId) -> Option<&AdfNodeState> {
        self.slots.get(node.index()).and_then(Option::as_ref)
    }

    fn get_mut(&mut self, node: MnId) -> Option<&mut AdfNodeState> {
        self.slots.get_mut(node.index()).and_then(Option::as_mut)
    }

    fn get_or_insert_with(
        &mut self,
        node: MnId,
        init: impl FnOnce() -> AdfNodeState,
    ) -> &mut AdfNodeState {
        let index = node.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        self.slots[index].get_or_insert_with(init)
    }

    /// Present states in ascending-id order.
    fn values_mut(&mut self) -> impl Iterator<Item = &mut AdfNodeState> {
        self.slots.iter_mut().flatten()
    }

    /// `(id, state)` pairs in ascending-id order.
    fn iter(&self) -> impl Iterator<Item = (MnId, &AdfNodeState)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (MnId::new(i as u32), s)))
    }
}

/// The Adaptive Distance Filter (§3.2): classify → cluster → per-cluster
/// DTH → filter.
///
/// Until the initial clustering (after [`AdfConfig::warmup_ticks`]) every
/// update passes through — which is why the paper's Figure 4 shows the ADF
/// overlapping the ideal curve for the first seconds. Classification and
/// clustering repeat every [`AdfConfig::recluster_interval`] ticks because
/// "a MN's mobility pattern can be changed".
///
/// # Examples
///
/// ```
/// use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, FilterPolicy};
/// use mobigrid_geo::Point;
/// use mobigrid_wireless::MnId;
///
/// let mut adf = AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap();
/// let walker = MnId::new(0);
/// for t in 0..20 {
///     let obs = [(walker, Point::new(1.5 * t as f64, 0.0))];
///     adf.decide_tick(t as f64, &obs);
/// }
/// // After warmup the walker has a positive, velocity-proportional DTH.
/// assert!(adf.dth_for(walker).unwrap() > 0.0);
/// ```
pub struct AdaptiveDistanceFilter {
    config: AdfConfig,
    tick: u64,
    clustered_once: bool,
    global_speeds: Welford,
    nodes: AdfNodeTable,
    cluster_count: usize,
}

impl AdaptiveDistanceFilter {
    /// Creates the filter from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the validation message for inconsistent configurations.
    pub fn new(config: AdfConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(AdaptiveDistanceFilter {
            config,
            tick: 0,
            clustered_once: false,
            global_speeds: Welford::new(),
            nodes: AdfNodeTable::default(),
            cluster_count: 0,
        })
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AdfConfig {
        &self.config
    }

    /// Number of clusters formed at the last reclustering.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// The last classification of `node`, if it has been observed.
    #[must_use]
    pub fn pattern_of(&self, node: MnId) -> Option<MobilityPattern> {
        self.nodes.get(node).map(|s| s.pattern)
    }

    /// The cluster `node` was assigned at the last reclustering (`None` for
    /// stopped nodes, which the paper excludes from clustering).
    #[must_use]
    pub fn cluster_of(&self, node: MnId) -> Option<usize> {
        self.nodes.get(node).and_then(|s| s.cluster)
    }

    fn node_state(&mut self, node: MnId) -> &mut AdfNodeState {
        let cfg = &self.config;
        self.nodes.get_or_insert_with(node, || AdfNodeState {
            classifier: MobilityClassifier::new(cfg.classifier_window, cfg.v_walk).with_thresholds(
                cfg.direction_change_threshold,
                cfg.speed_change_fraction,
                cfg.frequent_fraction,
            ),
            // DTH 0 until the initial clustering: pass everything through,
            // matching the paper's "similar to the ideal LU at initial".
            filter: DistanceFilter::with_reference(0.0, cfg.reference),
            pattern: MobilityPattern::Stop,
            cluster: None,
        })
    }

    /// Reclassifies every node and rebuilds the velocity clusters,
    /// re-deriving each node's DTH (steps (1), (2) and (6) of the ADF
    /// process).
    fn recluster(&mut self) {
        // Classify.
        for state in self.nodes.values_mut() {
            state.pattern = state.classifier.classify();
        }

        // Cluster the moving nodes on their mean velocity.
        let moving: Vec<MnId> = self
            .nodes
            .iter()
            .filter(|(_, s)| s.pattern != MobilityPattern::Stop)
            .map(|(id, _)| id)
            .collect();
        let features: Vec<Vec<f64>> = moving
            .iter()
            .map(|id| {
                let state = self.nodes.get(*id).expect("moving node exists");
                vec![state.classifier.mean_speed()]
            })
            .collect();

        let fallback_dth = self.config.dth_factor * self.global_speeds.mean();

        if features.is_empty() {
            self.cluster_count = 0;
        } else {
            let clustering = Bsas::new(self.config.alpha).cluster(&features);
            self.cluster_count = clustering.cluster_count();
            for (i, id) in moving.iter().enumerate() {
                let cluster = clustering.assignment(i);
                let cluster_speed = clustering.centroid(cluster)[0];
                let state = self.nodes.get_mut(*id).expect("moving node exists");
                state.cluster = Some(cluster);
                state.filter.set_dth(self.config.dth_factor * cluster_speed);
            }
        }

        // Stopped nodes are excluded from clustering; any positive DTH
        // suppresses their (zero-displacement) updates. Size it from the
        // global average so a node that starts moving again behaves like
        // the general DF until the next reclustering.
        for state in self.nodes.values_mut() {
            if state.pattern == MobilityPattern::Stop {
                state.cluster = None;
                state.filter.set_dth(fallback_dth.max(f64::MIN_POSITIVE));
            }
        }
        self.clustered_once = true;
    }
}

impl FilterPolicy for AdaptiveDistanceFilter {
    fn process_tick(
        &mut self,
        time_s: f64,
        observations: &[(MnId, Point)],
        decisions: &mut Vec<Decision>,
    ) {
        self.tick += 1;

        // Step (3): acquire locations; update per-node motion history.
        for (node, pos) in observations {
            // Borrow dance: compute the speed sample before mutating self.
            let prev_speed = {
                let state = self.node_state(*node);
                let before = state.classifier.sample_count();
                state.classifier.observe(time_s, *pos);
                if state.classifier.sample_count() > before {
                    // A new motion step was derived; its speed is the last
                    // one folded into the mean. Recover it from the mean
                    // delta is overkill — just use mean over window for the
                    // global statistic.
                    Some(state.classifier.mean_speed())
                } else {
                    None
                }
            };
            if let Some(v) = prev_speed {
                self.global_speeds.push(v);
            }
        }

        // Steps (1)/(2)/(6): initial clustering after warmup, then
        // periodic reclustering.
        let due_initial = !self.clustered_once && self.tick >= self.config.warmup_ticks;
        let due_periodic =
            self.clustered_once && self.tick.is_multiple_of(self.config.recluster_interval);
        if due_initial || due_periodic {
            self.recluster();
        }

        // Steps (4)/(5): distance-filter each observation.
        decisions.clear();
        for (node, pos) in observations {
            let decision = self.node_state(*node).filter.observe(*pos);
            decisions.push(decision);
        }
    }

    fn name(&self) -> &str {
        "adf"
    }

    fn dth_for(&self, node: MnId) -> Option<f64> {
        self.nodes.get(node).map(|s| s.filter.dth())
    }

    fn probe(&self, node: MnId) -> Option<FilterProbe> {
        self.nodes.get(node).map(|s| FilterProbe {
            pattern: Some(s.pattern),
            cluster: s.cluster,
            dth: Some(s.filter.dth()),
            displacement: s.filter.last_displacement(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(specs: &[(u32, f64, f64)]) -> Vec<(MnId, Point)> {
        specs
            .iter()
            .map(|(id, x, y)| (MnId::new(*id), Point::new(*x, *y)))
            .collect()
    }

    #[test]
    fn ideal_policy_sends_everything() {
        let mut p = IdealPolicy::new();
        let decisions = p.decide_tick(0.0, &obs(&[(0, 0.0, 0.0), (1, 5.0, 5.0)]));
        assert!(decisions.iter().all(|d| d.is_sent()));
        assert_eq!(p.name(), "ideal");
    }

    #[test]
    fn general_df_warms_up_then_filters() {
        let mut p = GeneralDistanceFilter::new(1.0, 3);
        // One slow node (1 m/s), one fast (9 m/s): global mean 5 m/s.
        for t in 0..10u64 {
            let t_f = t as f64;
            let decisions = p.decide_tick(t_f, &obs(&[(0, t_f, 0.0), (1, 9.0 * t_f, 100.0)]));
            if t == 0 {
                assert!(decisions.iter().all(|d| d.is_sent()));
            }
        }
        let dth = p.global_dth();
        assert!((dth - 5.0).abs() < 0.5, "global dth = {dth}");
        // The slow node is over-filtered: its DTH (5 m) exceeds its speed.
        assert_eq!(p.dth_for(MnId::new(0)), p.dth_for(MnId::new(1)));
    }

    #[test]
    fn adf_passes_everything_before_initial_clustering() {
        let cfg = AdfConfig {
            warmup_ticks: 5,
            ..AdfConfig::new(1.0)
        };
        let mut p = AdaptiveDistanceFilter::new(cfg).unwrap();
        for t in 0..4u64 {
            let t_f = t as f64;
            let decisions = p.decide_tick(t_f, &obs(&[(0, 1.0 * t_f, 0.0)]));
            assert!(decisions[0].is_sent(), "tick {t} filtered during warmup");
        }
    }

    #[test]
    fn adf_assigns_per_cluster_thresholds() {
        let mut p = AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap();
        // Two walkers at ~1 m/s and two vehicles at ~8 m/s.
        for t in 0..20u64 {
            let t_f = t as f64;
            p.decide_tick(
                t_f,
                &obs(&[
                    (0, 1.0 * t_f, 0.0),
                    (1, 1.1 * t_f, 10.0),
                    (2, 8.0 * t_f, 20.0),
                    (3, 8.2 * t_f, 30.0),
                ]),
            );
        }
        assert_eq!(p.cluster_count(), 2);
        assert_eq!(p.cluster_of(MnId::new(0)), p.cluster_of(MnId::new(1)));
        assert_ne!(p.cluster_of(MnId::new(0)), p.cluster_of(MnId::new(2)));
        let walker_dth = p.dth_for(MnId::new(0)).unwrap();
        let vehicle_dth = p.dth_for(MnId::new(2)).unwrap();
        assert!(
            vehicle_dth > 4.0 * walker_dth,
            "walker {walker_dth} vehicle {vehicle_dth}"
        );
    }

    #[test]
    fn adf_suppresses_stationary_nodes_after_clustering() {
        let mut p = AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap();
        let mut sent_after_warmup = 0;
        for t in 0..30u64 {
            let t_f = t as f64;
            // One mover keeps the global average positive; one node parked.
            let decisions = p.decide_tick(t_f, &obs(&[(0, 2.0 * t_f, 0.0), (1, 50.0, 50.0)]));
            if t >= 6 && decisions[1].is_sent() {
                sent_after_warmup += 1;
            }
        }
        assert_eq!(p.pattern_of(MnId::new(1)), Some(MobilityPattern::Stop));
        assert_eq!(sent_after_warmup, 0, "parked node kept transmitting");
    }

    #[test]
    fn adf_filters_more_with_larger_factor() {
        let run = |factor: f64| {
            let mut p = AdaptiveDistanceFilter::new(AdfConfig::new(factor)).unwrap();
            let mut sent = 0u32;
            for t in 0..120u64 {
                let t_f = t as f64;
                // A walker moving at 1 m/s with slight speed wobble.
                let x = t_f + 0.3 * (t_f * 0.7).sin();
                for d in p.decide_tick(t_f, &obs(&[(0, x, 0.0)])) {
                    if d.is_sent() {
                        sent += 1;
                    }
                }
            }
            sent
        };
        let s075 = run(0.75);
        let s100 = run(1.0);
        let s125 = run(1.25);
        assert!(s075 >= s100, "0.75av sent {s075} < 1.0av sent {s100}");
        assert!(s100 >= s125, "1.0av sent {s100} < 1.25av sent {s125}");
        assert!(s125 < 120);
    }

    #[test]
    fn adf_reclusters_when_behaviour_changes() {
        let cfg = AdfConfig {
            recluster_interval: 10,
            ..AdfConfig::new(1.0)
        };
        let mut p = AdaptiveDistanceFilter::new(cfg).unwrap();
        // Walk for 30 ticks...
        for t in 0..30u64 {
            let t_f = t as f64;
            p.decide_tick(t_f, &obs(&[(0, 1.5 * t_f, 0.0)]));
        }
        assert_eq!(p.pattern_of(MnId::new(0)), Some(MobilityPattern::Linear));
        // ...then stop for 30 ticks: the periodic reclustering must notice.
        for t in 30..60u64 {
            p.decide_tick(t as f64, &obs(&[(0, 1.5 * 29.0, 0.0)]));
        }
        assert_eq!(p.pattern_of(MnId::new(0)), Some(MobilityPattern::Stop));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = AdfConfig::new(1.0);
        cfg.alpha = -1.0;
        assert!(AdaptiveDistanceFilter::new(cfg).is_err());
    }

    #[test]
    fn probe_reports_per_policy_state() {
        let node = MnId::new(0);
        // The ideal policy tracks nothing.
        assert_eq!(IdealPolicy::new().probe(node), None);

        // The general DF exposes DTH and displacement but never classifies.
        let mut gdf = GeneralDistanceFilter::new(1.0, 2);
        assert_eq!(gdf.probe(node), None, "unknown node has no probe");
        for t in 0..6u64 {
            let t_f = t as f64;
            gdf.decide_tick(t_f, &obs(&[(0, 2.0 * t_f, 0.0)]));
        }
        let probe = gdf.probe(node).unwrap();
        assert_eq!(probe.pattern, None);
        assert_eq!(probe.cluster, None);
        assert!(probe.dth.unwrap() > 0.0);
        assert!((probe.displacement.unwrap() - 2.0).abs() < 1e-9);

        // The ADF exposes the full classification/cluster state.
        let mut adf = AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap();
        for t in 0..20u64 {
            let t_f = t as f64;
            adf.decide_tick(t_f, &obs(&[(0, 1.5 * t_f, 0.0), (1, 50.0, 50.0)]));
        }
        let probe = adf.probe(node).unwrap();
        assert_eq!(probe.pattern, Some(MobilityPattern::Linear));
        assert!(probe.cluster.is_some());
        assert!(probe.dth.unwrap() > 0.0);
        assert!((probe.displacement.unwrap() - 1.5).abs() < 1e-9);
        let parked = adf.probe(MnId::new(1)).unwrap();
        assert_eq!(parked.pattern, Some(MobilityPattern::Stop));
        assert_eq!(parked.cluster, None, "stopped nodes are not clustered");

        // Boxed policies forward the probe.
        let boxed: Box<dyn FilterPolicy> = Box::new(adf);
        assert_eq!(boxed.probe(node).unwrap().pattern, Some(MobilityPattern::Linear));
    }
}
