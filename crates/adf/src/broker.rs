use std::collections::BTreeMap;

use mobigrid_forecast::{
    AxisSmoothing, BrownPositionEstimator, DeadReckoning, HoltLinear, LastKnown, PositionEstimator,
};
use mobigrid_geo::Point;
use mobigrid_wireless::{LocationUpdate, MnId};

/// Which location estimator the broker runs for filtered nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EstimatorKind {
    /// No estimation: the broker keeps the last received location (the
    /// paper's "without LE" arm).
    WithoutLe,
    /// Brown's double exponential smoothing over speed and direction — the
    /// paper's estimator (§3.3).
    Brown {
        /// Smoothing factor in `(0, 1)`.
        alpha: f64,
    },
    /// Holt's linear method applied per coordinate axis (ablation).
    HoltAxes {
        /// Level smoothing factor in `(0, 1]`.
        alpha: f64,
        /// Trend smoothing factor in `(0, 1]`.
        beta: f64,
    },
    /// Dead reckoning from the last two received updates (ablation).
    DeadReckoning,
    /// A constant-velocity Kalman filter (ablation): optimal for genuinely
    /// constant-velocity motion with Gaussian noise, but extrapolates
    /// unboundedly through silences.
    KalmanCv {
        /// Process (acceleration) noise in m/s².
        accel_sigma: f64,
        /// Measurement noise in metres.
        measurement_sigma: f64,
    },
}

impl EstimatorKind {
    fn build(self) -> Box<dyn PositionEstimator + Send> {
        match self {
            EstimatorKind::WithoutLe => Box::new(LastKnown::new()),
            EstimatorKind::Brown { alpha } => {
                Box::new(BrownPositionEstimator::new(alpha).expect("validated smoothing factor"))
            }
            EstimatorKind::HoltAxes { alpha, beta } => {
                let make = || HoltLinear::new(alpha, beta).expect("validated smoothing factors");
                Box::new(AxisSmoothing::new(make(), make(), 1.0))
            }
            EstimatorKind::DeadReckoning => Box::new(DeadReckoning::new()),
            EstimatorKind::KalmanCv {
                accel_sigma,
                measurement_sigma,
            } => Box::new(
                mobigrid_forecast::KalmanCv::new(accel_sigma, measurement_sigma)
                    .expect("validated sigmas"),
            ),
        }
    }

    /// Validates the embedded parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the invalid parameter.
    pub fn validate(self) -> Result<(), String> {
        match self {
            EstimatorKind::Brown { alpha }
                if (alpha <= 0.0 || alpha >= 1.0 || !alpha.is_finite()) =>
            {
                return Err(format!("brown alpha must be in (0,1), got {alpha}"));
            }
            EstimatorKind::HoltAxes { alpha, beta } => {
                for v in [alpha, beta] {
                    if v <= 0.0 || v > 1.0 || !v.is_finite() {
                        return Err(format!("holt factors must be in (0,1], got {v}"));
                    }
                }
            }
            EstimatorKind::KalmanCv {
                accel_sigma,
                measurement_sigma,
            } => {
                for v in [accel_sigma, measurement_sigma] {
                    if v <= 0.0 || !v.is_finite() {
                        return Err(format!("kalman sigmas must be positive, got {v}"));
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// What the broker currently believes about one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationRecord {
    /// The believed position.
    pub position: Point,
    /// When the belief was formed (receipt or estimation time).
    pub time_s: f64,
    /// `true` when the position came from the location estimator rather
    /// than a received update.
    pub estimated: bool,
}

/// The grid broker's location service: a location DB plus the location
/// estimator (Figure 3's right-hand side).
///
/// Received updates are stored verbatim and fed to the per-node estimator;
/// when an update is filtered the broker asks the estimator for the node's
/// likely position and stores that instead, flagged as estimated.
///
/// # Examples
///
/// ```
/// use mobigrid_adf::{EstimatorKind, GridBroker};
/// use mobigrid_geo::Point;
/// use mobigrid_wireless::{LocationUpdate, MnId};
///
/// let mut broker = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
/// let mn = MnId::new(1);
/// for t in 0..10 {
///     let lu = LocationUpdate::new(mn, t as f64, Point::new(2.0 * t as f64, 0.0), t);
///     broker.receive(&lu);
/// }
/// // The next two updates are filtered; the broker extrapolates the walk.
/// broker.note_filtered(mn, 10.0);
/// let rec = broker.location(mn).unwrap();
/// assert!(rec.estimated);
/// assert!((rec.position.x - 20.0).abs() < 1.0);
/// ```
pub struct GridBroker {
    kind: EstimatorKind,
    records: BTreeMap<MnId, LocationRecord>,
    estimators: BTreeMap<MnId, Box<dyn PositionEstimator + Send>>,
    home_anchors: BTreeMap<MnId, Point>,
    received: u64,
    estimated: u64,
}

impl std::fmt::Debug for GridBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridBroker")
            .field("kind", &self.kind)
            .field("nodes", &self.records.len())
            .field("received", &self.received)
            .field("estimated", &self.estimated)
            .finish()
    }
}

impl GridBroker {
    /// Creates a broker with the given estimator.
    ///
    /// # Errors
    ///
    /// Returns the estimator's parameter-validation message.
    pub fn new(kind: EstimatorKind) -> Result<Self, String> {
        kind.validate()?;
        Ok(GridBroker {
            kind,
            records: BTreeMap::new(),
            estimators: BTreeMap::new(),
            home_anchors: BTreeMap::new(),
            received: 0,
            estimated: 0,
        })
    }

    /// Registers where `node` lives (its home region's centre) as prior
    /// knowledge for the location estimator. In a mobile grid the broker
    /// holds this from node registration; estimators that maintain a
    /// long-horizon anchor shrink toward it while a node's own history is
    /// thin.
    pub fn set_home_anchor(&mut self, node: MnId, anchor: Point) {
        self.home_anchors.insert(node, anchor);
        if let Some(est) = self.estimators.get_mut(&node) {
            est.set_home_anchor(anchor);
        }
    }

    /// The estimator this broker runs.
    #[must_use]
    pub fn estimator_kind(&self) -> EstimatorKind {
        self.kind
    }

    /// Ingests a received location update.
    pub fn receive(&mut self, lu: &LocationUpdate) {
        self.received += 1;
        self.records.insert(
            lu.node,
            LocationRecord {
                position: lu.position,
                time_s: lu.time_s,
                estimated: false,
            },
        );
        let kind = self.kind;
        let anchor = self.home_anchors.get(&lu.node).copied();
        self.estimators
            .entry(lu.node)
            .or_insert_with(|| {
                let mut est = kind.build();
                if let Some(a) = anchor {
                    est.set_home_anchor(a);
                }
                est
            })
            .observe(lu.time_s, lu.position);
    }

    /// Notes that `node`'s update at `time_s` was filtered: estimates its
    /// position and stores the estimate.
    ///
    /// A node never heard from has no record and no estimator; the call is
    /// a no-op then (the broker cannot invent a location).
    pub fn note_filtered(&mut self, node: MnId, time_s: f64) {
        let Some(est) = self.estimators.get(&node) else {
            return;
        };
        if let Some(position) = est.estimate(time_s) {
            self.estimated += 1;
            self.records.insert(
                node,
                LocationRecord {
                    position,
                    time_s,
                    estimated: true,
                },
            );
        }
    }

    /// The broker's current belief about `node`.
    #[must_use]
    pub fn location(&self, node: MnId) -> Option<LocationRecord> {
        self.records.get(&node).copied()
    }

    /// Number of nodes with a record in the location DB.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.records.len()
    }

    /// Updates received.
    #[must_use]
    pub fn received_count(&self) -> u64 {
        self.received
    }

    /// Estimates performed.
    #[must_use]
    pub fn estimated_count(&self) -> u64 {
        self.estimated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lu(node: u32, t: f64, x: f64, y: f64) -> LocationUpdate {
        LocationUpdate::new(MnId::new(node), t, Point::new(x, y), 0)
    }

    #[test]
    fn without_le_keeps_last_received() {
        let mut b = GridBroker::new(EstimatorKind::WithoutLe).unwrap();
        b.receive(&lu(1, 0.0, 5.0, 5.0));
        b.note_filtered(MnId::new(1), 10.0);
        let rec = b.location(MnId::new(1)).unwrap();
        // "Estimate" equals the stale last position.
        assert_eq!(rec.position, Point::new(5.0, 5.0));
        assert!(rec.estimated);
    }

    #[test]
    fn brown_extrapolates_straight_walks() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        for t in 0..20 {
            b.receive(&lu(1, t as f64, 1.5 * t as f64, 0.0));
        }
        b.note_filtered(MnId::new(1), 22.0);
        let rec = b.location(MnId::new(1)).unwrap();
        assert!(rec.estimated);
        assert!(
            (rec.position.x - 33.0).abs() < 1.0,
            "x = {}",
            rec.position.x
        );
    }

    #[test]
    fn received_overrides_previous_estimate() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        b.receive(&lu(1, 0.0, 0.0, 0.0));
        b.receive(&lu(1, 1.0, 1.0, 0.0));
        b.note_filtered(MnId::new(1), 2.0);
        assert!(b.location(MnId::new(1)).unwrap().estimated);
        b.receive(&lu(1, 3.0, 3.0, 0.0));
        let rec = b.location(MnId::new(1)).unwrap();
        assert!(!rec.estimated);
        assert_eq!(rec.position, Point::new(3.0, 0.0));
    }

    #[test]
    fn unknown_node_filtered_is_noop() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        b.note_filtered(MnId::new(9), 1.0);
        assert_eq!(b.location(MnId::new(9)), None);
        assert_eq!(b.estimated_count(), 0);
    }

    #[test]
    fn counters_track_activity() {
        let mut b = GridBroker::new(EstimatorKind::DeadReckoning).unwrap();
        b.receive(&lu(1, 0.0, 0.0, 0.0));
        b.receive(&lu(2, 0.0, 1.0, 1.0));
        b.note_filtered(MnId::new(1), 1.0);
        assert_eq!(b.received_count(), 2);
        assert_eq!(b.estimated_count(), 1);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn invalid_estimator_parameters_rejected() {
        assert!(GridBroker::new(EstimatorKind::Brown { alpha: 1.5 }).is_err());
        assert!(GridBroker::new(EstimatorKind::HoltAxes {
            alpha: 0.5,
            beta: 0.0
        })
        .is_err());
        assert!(GridBroker::new(EstimatorKind::WithoutLe).is_ok());
    }

    #[test]
    fn holt_axes_estimator_tracks_diagonals() {
        let mut b = GridBroker::new(EstimatorKind::HoltAxes {
            alpha: 0.7,
            beta: 0.3,
        })
        .unwrap();
        for t in 0..30 {
            b.receive(&lu(1, t as f64, t as f64, 2.0 * t as f64));
        }
        b.note_filtered(MnId::new(1), 31.0);
        let rec = b.location(MnId::new(1)).unwrap();
        assert!((rec.position.x - 31.0).abs() < 1.0);
        assert!((rec.position.y - 62.0).abs() < 2.0);
    }
}
