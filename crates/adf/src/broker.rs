use mobigrid_forecast::{
    AxisSmoothing, BrownPositionEstimator, DeadReckoning, HoltLinear, LastKnown, PositionEstimator,
};
use mobigrid_geo::Point;
use mobigrid_telemetry::ApplyOutcome;
use mobigrid_wireless::{LocationUpdate, MnId};

/// Which location estimator the broker runs for filtered nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EstimatorKind {
    /// No estimation: the broker keeps the last received location (the
    /// paper's "without LE" arm).
    WithoutLe,
    /// Brown's double exponential smoothing over speed and direction — the
    /// paper's estimator (§3.3).
    Brown {
        /// Smoothing factor in `(0, 1)`.
        alpha: f64,
    },
    /// Holt's linear method applied per coordinate axis (ablation).
    HoltAxes {
        /// Level smoothing factor in `(0, 1]`.
        alpha: f64,
        /// Trend smoothing factor in `(0, 1]`.
        beta: f64,
    },
    /// Dead reckoning from the last two received updates (ablation).
    DeadReckoning,
    /// A constant-velocity Kalman filter (ablation): optimal for genuinely
    /// constant-velocity motion with Gaussian noise, but extrapolates
    /// unboundedly through silences.
    KalmanCv {
        /// Process (acceleration) noise in m/s².
        accel_sigma: f64,
        /// Measurement noise in metres.
        measurement_sigma: f64,
    },
}

impl EstimatorKind {
    fn build(self) -> Box<dyn PositionEstimator + Send> {
        match self {
            EstimatorKind::WithoutLe => Box::new(LastKnown::new()),
            EstimatorKind::Brown { alpha } => {
                Box::new(BrownPositionEstimator::new(alpha).expect("validated smoothing factor"))
            }
            EstimatorKind::HoltAxes { alpha, beta } => {
                let make = || HoltLinear::new(alpha, beta).expect("validated smoothing factors");
                Box::new(AxisSmoothing::new(make(), make(), 1.0))
            }
            EstimatorKind::DeadReckoning => Box::new(DeadReckoning::new()),
            EstimatorKind::KalmanCv {
                accel_sigma,
                measurement_sigma,
            } => Box::new(
                mobigrid_forecast::KalmanCv::new(accel_sigma, measurement_sigma)
                    .expect("validated sigmas"),
            ),
        }
    }

    /// Validates the embedded parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the invalid parameter.
    pub fn validate(self) -> Result<(), String> {
        match self {
            EstimatorKind::Brown { alpha }
                if (alpha <= 0.0 || alpha >= 1.0 || !alpha.is_finite()) =>
            {
                return Err(format!("brown alpha must be in (0,1), got {alpha}"));
            }
            EstimatorKind::HoltAxes { alpha, beta } => {
                for v in [alpha, beta] {
                    if v <= 0.0 || v > 1.0 || !v.is_finite() {
                        return Err(format!("holt factors must be in (0,1], got {v}"));
                    }
                }
            }
            EstimatorKind::KalmanCv {
                accel_sigma,
                measurement_sigma,
            } => {
                for v in [accel_sigma, measurement_sigma] {
                    if v <= 0.0 || !v.is_finite() {
                        return Err(format!("kalman sigmas must be positive, got {v}"));
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// What the broker currently believes about one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationRecord {
    /// The believed position.
    pub position: Point,
    /// When the belief was formed (receipt or estimation time).
    pub time_s: f64,
    /// `true` when the position came from the location estimator rather
    /// than a received update.
    pub estimated: bool,
}

/// How many consecutive losses it takes to halve the broker's trust in
/// pure extrapolation (see [`NodeSlot::note_lost`]).
const STALENESS_TRUST_WINDOW: f64 = 8.0;

/// The last update actually received from a node — the dedup/ordering key
/// and the degradation anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LastRx {
    time_s: f64,
    seq: u32,
    position: Point,
}

/// What one broker apply call did, for the flight recorder: the typed
/// outcome, the node's staleness counter after the call, and the
/// trust-window blend weight used (1.0 when no degraded blending
/// happened).
///
/// Every apply entry point ([`GridBroker::receive`] /
/// [`GridBroker::note_filtered`] / [`GridBroker::note_lost`] and their
/// shard twins) returns one; callers that don't record simply ignore it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyInfo {
    /// What the broker did.
    pub outcome: ApplyOutcome,
    /// The node's consecutive-loss staleness counter after the call.
    pub staleness: u32,
    /// Trust-window weight toward pure extrapolation (see
    /// [`GridBroker::note_lost`]); 1.0 everywhere else.
    pub blend: f64,
}

/// What [`NodeSlot::receive`] did with an incoming update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RxOutcome {
    /// Stored and fed to the estimator; `fresh` marks the node's first
    /// record.
    Accepted { fresh: bool },
    /// An exact copy of the last accepted update (a channel duplicate) —
    /// ignored, protecting the estimator's monotone-time contract.
    Duplicate,
    /// Older than the last accepted update (a reordered late frame) —
    /// ignored.
    Stale,
}

/// Everything the broker tracks for one node, stored densely by `MnId`
/// index: the current belief, the per-node estimator, the registration
/// anchor, plus the fault-tolerance state (last receipt and staleness).
#[derive(Default)]
struct NodeSlot {
    record: Option<LocationRecord>,
    estimator: Option<Box<dyn PositionEstimator + Send>>,
    home_anchor: Option<Point>,
    last_rx: Option<LastRx>,
    /// Consecutive expected-but-lost updates since the last receipt.
    staleness: u32,
}

impl NodeSlot {
    /// Ingests a received update, rejecting channel duplicates and
    /// reordered stale frames before they can reach the estimator (whose
    /// observation times must be non-decreasing).
    fn receive(&mut self, kind: EstimatorKind, lu: &LocationUpdate) -> RxOutcome {
        if let Some(rx) = &self.last_rx {
            if lu.time_s == rx.time_s && lu.seq == rx.seq {
                return RxOutcome::Duplicate;
            }
            if lu.time_s < rx.time_s {
                return RxOutcome::Stale;
            }
        }
        let fresh = self.record.is_none();
        self.record = Some(LocationRecord {
            position: lu.position,
            time_s: lu.time_s,
            estimated: false,
        });
        self.last_rx = Some(LastRx {
            time_s: lu.time_s,
            seq: lu.seq,
            position: lu.position,
        });
        self.staleness = 0;
        let anchor = self.home_anchor;
        self.estimator
            .get_or_insert_with(|| {
                let mut est = kind.build();
                if let Some(a) = anchor {
                    est.set_home_anchor(a);
                }
                est
            })
            .observe(lu.time_s, lu.position);
        RxOutcome::Accepted { fresh }
    }

    /// Stores an estimate for a filtered update. Returns
    /// `(estimate_stored, first_record)`.
    fn note_filtered(&mut self, time_s: f64) -> (bool, bool) {
        let Some(est) = &self.estimator else {
            return (false, false);
        };
        let Some(position) = est.estimate(time_s) else {
            return (false, false);
        };
        let fresh = self.record.is_none();
        self.record = Some(LocationRecord {
            position,
            time_s,
            estimated: true,
        });
        (true, fresh)
    }

    /// Stores a *degraded* estimate for an update the broker expected but
    /// never received (dropped, corrupted or still in flight).
    ///
    /// Unlike a filtered update — where the filter guarantees the node is
    /// within its DTH of the last transmission — a lost update carries no
    /// such bound, so blind extrapolation can run away (dead reckoning and
    /// the Kalman filter extrapolate unboundedly through silences). The
    /// slot therefore widens its trust window as staleness grows: the
    /// stored belief is the estimator's extrapolation blended toward the
    /// last *confirmed* fix with weight `W / (W + staleness - 1)`
    /// (`W =` [`STALENESS_TRUST_WINDOW`]). The first loss trusts the
    /// estimator fully; sustained silence decays smoothly back to the last
    /// thing the node actually said.
    /// Returns `(estimate_stored, first_record, blend)` where `blend` is
    /// the trust weight applied toward pure extrapolation (1.0 when no
    /// blending happened — no confirmed fix to blend toward, or nothing
    /// stored at all).
    fn note_lost(&mut self, time_s: f64) -> (bool, bool, f64) {
        self.staleness = self.staleness.saturating_add(1);
        let Some(est) = &self.estimator else {
            return (false, false, 1.0);
        };
        let Some(extrapolated) = est.estimate(time_s) else {
            return (false, false, 1.0);
        };
        let (position, blend) = match &self.last_rx {
            Some(rx) => {
                let trust = STALENESS_TRUST_WINDOW
                    / (STALENESS_TRUST_WINDOW + f64::from(self.staleness - 1));
                (
                    Point::new(
                        rx.position.x + (extrapolated.x - rx.position.x) * trust,
                        rx.position.y + (extrapolated.y - rx.position.y) * trust,
                    ),
                    trust,
                )
            }
            None => (extrapolated, 1.0),
        };
        let fresh = self.record.is_none();
        self.record = Some(LocationRecord {
            position,
            time_s,
            estimated: true,
        });
        (true, fresh, blend)
    }
}

/// Counter changes accumulated by a [`BrokerShard`], merged back into the
/// owning [`GridBroker`] in shard order after a parallel region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokerDelta {
    /// Updates received.
    pub received: u64,
    /// Estimates performed.
    pub estimated: u64,
    /// Nodes that gained their first record.
    pub fresh_records: u64,
    /// Expected updates that never arrived (degraded estimates stored).
    pub lost: u64,
    /// Received frames rejected as duplicates or stale reorderings.
    pub rejected: u64,
}

impl BrokerDelta {
    /// Folds another delta into this one. Pure `u64` addition, so the merge
    /// is exact and associative.
    pub fn merge(&mut self, other: &BrokerDelta) {
        self.received += other.received;
        self.estimated += other.estimated;
        self.fresh_records += other.fresh_records;
        self.lost += other.lost;
        self.rejected += other.rejected;
    }
}

/// A mutable view over one contiguous shard of a [`GridBroker`]'s node
/// slots, for use inside a parallel region.
///
/// The shard owns slots for node indices `[base, base + len)` and keeps its
/// counter changes in a local [`BrokerDelta`]; the caller merges the deltas
/// back with [`GridBroker::apply_delta`] **in shard order** once every shard
/// has completed. Because shards cover disjoint index ranges, per-node state
/// never races, and because the reduction order is fixed, results do not
/// depend on how shards were scheduled across threads.
pub struct BrokerShard<'a> {
    kind: EstimatorKind,
    base: usize,
    slots: &'a mut [NodeSlot],
    delta: BrokerDelta,
}

impl BrokerShard<'_> {
    /// First node index covered by this shard.
    #[must_use]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of nodes covered by this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the shard covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn slot_mut(&mut self, node: MnId) -> &mut NodeSlot {
        let local = node
            .index()
            .checked_sub(self.base)
            .filter(|i| *i < self.slots.len())
            .expect("node id outside this broker shard");
        &mut self.slots[local]
    }

    /// Ingests a received location update for a node in this shard.
    /// Duplicate and stale frames are counted as rejected, not received.
    pub fn receive(&mut self, lu: &LocationUpdate) -> ApplyInfo {
        let kind = self.kind;
        let (rx, staleness) = {
            let slot = self.slot_mut(lu.node);
            let rx = slot.receive(kind, lu);
            (rx, slot.staleness)
        };
        let outcome = match rx {
            RxOutcome::Accepted { fresh } => {
                self.delta.received += 1;
                self.delta.fresh_records += u64::from(fresh);
                ApplyOutcome::Accepted
            }
            RxOutcome::Duplicate => {
                self.delta.rejected += 1;
                ApplyOutcome::Duplicate
            }
            RxOutcome::Stale => {
                self.delta.rejected += 1;
                ApplyOutcome::Stale
            }
        };
        ApplyInfo {
            outcome,
            staleness,
            blend: 1.0,
        }
    }

    /// Notes a filtered update for a node in this shard: estimates and
    /// stores its position, as [`GridBroker::note_filtered`] does.
    pub fn note_filtered(&mut self, node: MnId, time_s: f64) -> ApplyInfo {
        let slot = self.slot_mut(node);
        let (estimated, fresh) = slot.note_filtered(time_s);
        let staleness = slot.staleness;
        self.delta.estimated += u64::from(estimated);
        self.delta.fresh_records += u64::from(fresh);
        ApplyInfo {
            outcome: if estimated {
                ApplyOutcome::Estimated
            } else {
                ApplyOutcome::NoRecord
            },
            staleness,
            blend: 1.0,
        }
    }

    /// Notes an update that was sent but never arrived: stores a degraded
    /// estimate, as [`GridBroker::note_lost`] does.
    pub fn note_lost(&mut self, node: MnId, time_s: f64) -> ApplyInfo {
        let slot = self.slot_mut(node);
        let (estimated, fresh, blend) = slot.note_lost(time_s);
        let staleness = slot.staleness;
        self.delta.lost += 1;
        self.delta.estimated += u64::from(estimated);
        self.delta.fresh_records += u64::from(fresh);
        ApplyInfo {
            outcome: if estimated {
                ApplyOutcome::Degraded
            } else {
                ApplyOutcome::NoRecord
            },
            staleness,
            blend,
        }
    }

    /// Number of nodes in this shard currently marked stale (at least one
    /// consecutive loss since their last receipt).
    #[must_use]
    pub fn stale_count(&self) -> u32 {
        let mut n = 0u32;
        for slot in self.slots.iter() {
            n += u32::from(slot.staleness > 0);
        }
        n
    }

    /// The shard's current belief about a node — a direct dense-slot read,
    /// no map lookup.
    #[must_use]
    pub fn location(&self, node: MnId) -> Option<&LocationRecord> {
        let local = node
            .index()
            .checked_sub(self.base)
            .filter(|i| *i < self.slots.len())
            .expect("node id outside this broker shard");
        self.slots[local].record.as_ref()
    }

    /// Consumes the shard, yielding the counter changes it accumulated.
    #[must_use]
    pub fn into_delta(self) -> BrokerDelta {
        self.delta
    }
}

/// The grid broker's location service: a location DB plus the location
/// estimator (Figure 3's right-hand side).
///
/// Received updates are stored verbatim and fed to the per-node estimator;
/// when an update is filtered the broker asks the estimator for the node's
/// likely position and stores that instead, flagged as estimated.
///
/// Per-node state lives in a dense vector indexed by [`MnId::index`] — node
/// ids are expected to be (near-)dense, as [`crate::SimBuilder`] enforces;
/// storage is proportional to the largest id seen. Sparse-id callers keep
/// working: slots are grown on demand and untouched slots hold no record.
///
/// # Examples
///
/// ```
/// use mobigrid_adf::{EstimatorKind, GridBroker};
/// use mobigrid_geo::Point;
/// use mobigrid_wireless::{LocationUpdate, MnId};
///
/// let mut broker = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
/// let mn = MnId::new(1);
/// for t in 0..10 {
///     let lu = LocationUpdate::new(mn, t as f64, Point::new(2.0 * t as f64, 0.0), t);
///     broker.receive(&lu);
/// }
/// // The next two updates are filtered; the broker extrapolates the walk.
/// broker.note_filtered(mn, 10.0);
/// let rec = broker.location(mn).unwrap();
/// assert!(rec.estimated);
/// assert!((rec.position.x - 20.0).abs() < 1.0);
/// ```
pub struct GridBroker {
    kind: EstimatorKind,
    slots: Vec<NodeSlot>,
    live_records: usize,
    received: u64,
    estimated: u64,
    lost: u64,
    rejected: u64,
}

impl std::fmt::Debug for GridBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GridBroker")
            .field("kind", &self.kind)
            .field("nodes", &self.live_records)
            .field("received", &self.received)
            .field("estimated", &self.estimated)
            .field("lost", &self.lost)
            .field("rejected", &self.rejected)
            .finish()
    }
}

impl GridBroker {
    /// Creates a broker with the given estimator.
    ///
    /// # Errors
    ///
    /// Returns the estimator's parameter-validation message.
    pub fn new(kind: EstimatorKind) -> Result<Self, String> {
        kind.validate()?;
        Ok(GridBroker {
            kind,
            slots: Vec::new(),
            live_records: 0,
            received: 0,
            estimated: 0,
            lost: 0,
            rejected: 0,
        })
    }

    /// Pre-sizes the dense slot storage for node indices `0..n`. Growing is
    /// otherwise on demand; pre-sizing lets [`GridBroker::shard_views`]
    /// cover the whole population.
    pub fn ensure_nodes(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, NodeSlot::default);
        }
    }

    /// Registers where `node` lives (its home region's centre) as prior
    /// knowledge for the location estimator. In a mobile grid the broker
    /// holds this from node registration; estimators that maintain a
    /// long-horizon anchor shrink toward it while a node's own history is
    /// thin.
    pub fn set_home_anchor(&mut self, node: MnId, anchor: Point) {
        self.ensure_nodes(node.index() + 1);
        let slot = &mut self.slots[node.index()];
        slot.home_anchor = Some(anchor);
        if let Some(est) = &mut slot.estimator {
            est.set_home_anchor(anchor);
        }
    }

    /// The estimator this broker runs.
    #[must_use]
    pub fn estimator_kind(&self) -> EstimatorKind {
        self.kind
    }

    /// Ingests a received location update. Exact duplicates of the last
    /// accepted update and frames older than it (channel reorderings) are
    /// rejected and counted in [`GridBroker::rejected_count`].
    pub fn receive(&mut self, lu: &LocationUpdate) -> ApplyInfo {
        self.ensure_nodes(lu.node.index() + 1);
        let kind = self.kind;
        let slot = &mut self.slots[lu.node.index()];
        let rx = slot.receive(kind, lu);
        let staleness = slot.staleness;
        let outcome = match rx {
            RxOutcome::Accepted { fresh } => {
                self.received += 1;
                self.live_records += usize::from(fresh);
                ApplyOutcome::Accepted
            }
            RxOutcome::Duplicate => {
                self.rejected += 1;
                ApplyOutcome::Duplicate
            }
            RxOutcome::Stale => {
                self.rejected += 1;
                ApplyOutcome::Stale
            }
        };
        ApplyInfo {
            outcome,
            staleness,
            blend: 1.0,
        }
    }

    /// Notes that `node`'s update at `time_s` was filtered: estimates its
    /// position and stores the estimate.
    ///
    /// A node never heard from has no record and no estimator; the call is
    /// a no-op then (the broker cannot invent a location).
    pub fn note_filtered(&mut self, node: MnId, time_s: f64) -> ApplyInfo {
        let Some(slot) = self.slots.get_mut(node.index()) else {
            return ApplyInfo {
                outcome: ApplyOutcome::NoRecord,
                staleness: 0,
                blend: 1.0,
            };
        };
        let (estimated, fresh) = slot.note_filtered(time_s);
        let staleness = slot.staleness;
        self.estimated += u64::from(estimated);
        self.live_records += usize::from(fresh);
        ApplyInfo {
            outcome: if estimated {
                ApplyOutcome::Estimated
            } else {
                ApplyOutcome::NoRecord
            },
            staleness,
            blend: 1.0,
        }
    }

    /// Notes that `node`'s update at `time_s` was sent but never arrived
    /// (dropped, corrupted or delayed past this tick): stores a degraded
    /// estimate whose trust in extrapolation shrinks with consecutive
    /// losses, and bumps the node's staleness counter.
    ///
    /// A node never heard from has no estimator; only the staleness
    /// bookkeeping happens then.
    pub fn note_lost(&mut self, node: MnId, time_s: f64) -> ApplyInfo {
        self.ensure_nodes(node.index() + 1);
        let slot = &mut self.slots[node.index()];
        let (estimated, fresh, blend) = slot.note_lost(time_s);
        let staleness = slot.staleness;
        self.lost += 1;
        self.estimated += u64::from(estimated);
        self.live_records += usize::from(fresh);
        ApplyInfo {
            outcome: if estimated {
                ApplyOutcome::Degraded
            } else {
                ApplyOutcome::NoRecord
            },
            staleness,
            blend,
        }
    }

    /// Consecutive losses since `node`'s last accepted update (zero for a
    /// healthy or unknown node).
    #[must_use]
    pub fn staleness(&self, node: MnId) -> u32 {
        self.slots.get(node.index()).map_or(0, |s| s.staleness)
    }

    /// The broker's current belief about `node`.
    #[must_use]
    pub fn location(&self, node: MnId) -> Option<LocationRecord> {
        self.slots.get(node.index()).and_then(|s| s.record)
    }

    /// Splits the broker's slots into contiguous shards of `shard_size`
    /// nodes for a parallel region. Call [`GridBroker::ensure_nodes`] first
    /// so the shards cover the whole population; merge each shard's
    /// [`BrokerDelta`] back with [`GridBroker::apply_delta`] in shard order.
    ///
    /// # Panics
    ///
    /// Panics when `shard_size` is zero.
    pub fn shard_views(&mut self, shard_size: usize) -> Vec<BrokerShard<'_>> {
        self.shard_views_iter(shard_size).collect()
    }

    /// Iterator form of [`GridBroker::shard_views`]: yields the shards
    /// lazily without collecting them into a `Vec`, so a caller zipping
    /// broker shards into larger per-shard jobs allocates nothing here.
    ///
    /// # Panics
    ///
    /// Panics when `shard_size` is zero.
    pub fn shard_views_iter(
        &mut self,
        shard_size: usize,
    ) -> impl ExactSizeIterator<Item = BrokerShard<'_>> {
        assert!(shard_size > 0, "shard size must be positive");
        let kind = self.kind;
        self.slots
            .chunks_mut(shard_size)
            .enumerate()
            .map(move |(i, slots)| BrokerShard {
                kind,
                base: i * shard_size,
                slots,
                delta: BrokerDelta::default(),
            })
    }

    /// Merges a shard's counter changes back into the broker.
    pub fn apply_delta(&mut self, delta: &BrokerDelta) {
        self.received += delta.received;
        self.estimated += delta.estimated;
        self.live_records += delta.fresh_records as usize;
        self.lost += delta.lost;
        self.rejected += delta.rejected;
    }

    /// Number of nodes with a record in the location DB.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.live_records
    }

    /// Updates received.
    #[must_use]
    pub fn received_count(&self) -> u64 {
        self.received
    }

    /// Estimates performed.
    #[must_use]
    pub fn estimated_count(&self) -> u64 {
        self.estimated
    }

    /// Expected updates that never arrived (lost to the channel).
    #[must_use]
    pub fn lost_count(&self) -> u64 {
        self.lost
    }

    /// Received frames rejected as duplicates or stale reorderings.
    #[must_use]
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lu(node: u32, t: f64, x: f64, y: f64) -> LocationUpdate {
        LocationUpdate::new(MnId::new(node), t, Point::new(x, y), 0)
    }

    #[test]
    fn without_le_keeps_last_received() {
        let mut b = GridBroker::new(EstimatorKind::WithoutLe).unwrap();
        b.receive(&lu(1, 0.0, 5.0, 5.0));
        b.note_filtered(MnId::new(1), 10.0);
        let rec = b.location(MnId::new(1)).unwrap();
        // "Estimate" equals the stale last position.
        assert_eq!(rec.position, Point::new(5.0, 5.0));
        assert!(rec.estimated);
    }

    #[test]
    fn brown_extrapolates_straight_walks() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        for t in 0..20 {
            b.receive(&lu(1, t as f64, 1.5 * t as f64, 0.0));
        }
        b.note_filtered(MnId::new(1), 22.0);
        let rec = b.location(MnId::new(1)).unwrap();
        assert!(rec.estimated);
        assert!(
            (rec.position.x - 33.0).abs() < 1.0,
            "x = {}",
            rec.position.x
        );
    }

    #[test]
    fn received_overrides_previous_estimate() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        b.receive(&lu(1, 0.0, 0.0, 0.0));
        b.receive(&lu(1, 1.0, 1.0, 0.0));
        b.note_filtered(MnId::new(1), 2.0);
        assert!(b.location(MnId::new(1)).unwrap().estimated);
        b.receive(&lu(1, 3.0, 3.0, 0.0));
        let rec = b.location(MnId::new(1)).unwrap();
        assert!(!rec.estimated);
        assert_eq!(rec.position, Point::new(3.0, 0.0));
    }

    #[test]
    fn unknown_node_filtered_is_noop() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        b.note_filtered(MnId::new(9), 1.0);
        assert_eq!(b.location(MnId::new(9)), None);
        assert_eq!(b.estimated_count(), 0);
    }

    #[test]
    fn counters_track_activity() {
        let mut b = GridBroker::new(EstimatorKind::DeadReckoning).unwrap();
        b.receive(&lu(1, 0.0, 0.0, 0.0));
        b.receive(&lu(2, 0.0, 1.0, 1.0));
        b.note_filtered(MnId::new(1), 1.0);
        assert_eq!(b.received_count(), 2);
        assert_eq!(b.estimated_count(), 1);
        assert_eq!(b.node_count(), 2);
    }

    #[test]
    fn invalid_estimator_parameters_rejected() {
        assert!(GridBroker::new(EstimatorKind::Brown { alpha: 1.5 }).is_err());
        assert!(GridBroker::new(EstimatorKind::HoltAxes {
            alpha: 0.5,
            beta: 0.0
        })
        .is_err());
        assert!(GridBroker::new(EstimatorKind::WithoutLe).is_ok());
    }

    #[test]
    fn holt_axes_estimator_tracks_diagonals() {
        let mut b = GridBroker::new(EstimatorKind::HoltAxes {
            alpha: 0.7,
            beta: 0.3,
        })
        .unwrap();
        for t in 0..30 {
            b.receive(&lu(1, t as f64, t as f64, 2.0 * t as f64));
        }
        b.note_filtered(MnId::new(1), 31.0);
        let rec = b.location(MnId::new(1)).unwrap();
        assert!((rec.position.x - 31.0).abs() < 1.0);
        assert!((rec.position.y - 62.0).abs() < 2.0);
    }

    #[test]
    fn anchor_set_before_first_update_reaches_estimator() {
        // The anchor is registered before any update arrives; the slot must
        // hand it to the estimator it lazily builds on first receive.
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        b.set_home_anchor(MnId::new(0), Point::new(7.0, 7.0));
        b.receive(&lu(0, 0.0, 1.0, 1.0));
        assert_eq!(b.node_count(), 1);
        assert!(b.location(MnId::new(0)).is_some());
    }

    #[test]
    fn shard_views_partition_the_population() {
        let mut b = GridBroker::new(EstimatorKind::WithoutLe).unwrap();
        b.ensure_nodes(10);
        let shards = b.shard_views(4);
        assert_eq!(shards.len(), 3);
        assert_eq!(
            shards.iter().map(BrokerShard::len).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        assert_eq!(
            shards.iter().map(BrokerShard::base).collect::<Vec<_>>(),
            vec![0, 4, 8]
        );
    }

    #[test]
    fn shard_updates_match_sequential_updates() {
        let mut seq = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        let mut sharded = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        sharded.ensure_nodes(6);

        for t in 0..5 {
            for node in 0..6u32 {
                seq.receive(&lu(node, t as f64, f64::from(node) + t as f64, 0.0));
            }
        }
        seq.note_filtered(MnId::new(2), 5.0);

        {
            let mut shards = sharded.shard_views(4);
            for t in 0..5 {
                for node in 0..6u32 {
                    let shard = &mut shards[node as usize / 4];
                    shard.receive(&lu(node, t as f64, f64::from(node) + t as f64, 0.0));
                }
            }
            shards[0].note_filtered(MnId::new(2), 5.0);
            let deltas: Vec<BrokerDelta> = shards.into_iter().map(BrokerShard::into_delta).collect();
            for d in &deltas {
                sharded.apply_delta(d);
            }
        }

        assert_eq!(seq.received_count(), sharded.received_count());
        assert_eq!(seq.estimated_count(), sharded.estimated_count());
        assert_eq!(seq.node_count(), sharded.node_count());
        for node in 0..6u32 {
            assert_eq!(seq.location(MnId::new(node)), sharded.location(MnId::new(node)));
        }
    }

    #[test]
    fn duplicate_frames_are_rejected() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        let update = lu(1, 1.0, 2.0, 3.0);
        b.receive(&update);
        b.receive(&update); // channel duplicate: same time, same seq
        assert_eq!(b.received_count(), 1);
        assert_eq!(b.rejected_count(), 1);
        assert!(!b.location(MnId::new(1)).unwrap().estimated);
    }

    #[test]
    fn stale_frames_are_rejected() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        b.receive(&lu(1, 5.0, 10.0, 0.0));
        // A delayed frame from t=2 arrives after the t=5 one: dropped, and
        // the stored belief keeps the newer position.
        b.receive(&lu(1, 2.0, 4.0, 0.0));
        assert_eq!(b.received_count(), 1);
        assert_eq!(b.rejected_count(), 1);
        assert_eq!(b.location(MnId::new(1)).unwrap().position, Point::new(10.0, 0.0));
    }

    #[test]
    fn lost_updates_degrade_toward_last_receipt() {
        // A node walking +2 m/s goes silent; the degraded estimate must sit
        // between the last confirmed fix and the raw extrapolation, and move
        // toward the fix as staleness grows.
        let mut b = GridBroker::new(EstimatorKind::DeadReckoning).unwrap();
        b.receive(&lu(1, 0.0, 0.0, 0.0));
        b.receive(&lu(1, 1.0, 2.0, 0.0));
        let last_rx_x = 2.0;

        b.note_lost(MnId::new(1), 2.0);
        let first = b.location(MnId::new(1)).unwrap();
        assert!(first.estimated);
        // staleness = 1 → trust = 1.0 → pure extrapolation (x = 4).
        assert!((first.position.x - 4.0).abs() < 1e-9, "x = {}", first.position.x);
        assert_eq!(b.staleness(MnId::new(1)), 1);

        for k in 2..=10u32 {
            b.note_lost(MnId::new(1), 1.0 + f64::from(k));
        }
        let later = b.location(MnId::new(1)).unwrap();
        let raw_x = 2.0 + 2.0 * 10.0; // dead reckoning at t=11
        assert_eq!(b.staleness(MnId::new(1)), 10);
        assert!(later.position.x > last_rx_x && later.position.x < raw_x);
        // trust = 8/(8+9): well under half the raw extrapolated offset.
        let expected_x = last_rx_x + (raw_x - last_rx_x) * (8.0 / 17.0);
        assert!((later.position.x - expected_x).abs() < 1e-9, "x = {}", later.position.x);
        assert_eq!(b.lost_count(), 10);
    }

    #[test]
    fn receive_resets_staleness() {
        let mut b = GridBroker::new(EstimatorKind::DeadReckoning).unwrap();
        b.receive(&lu(1, 0.0, 0.0, 0.0));
        b.note_lost(MnId::new(1), 1.0);
        b.note_lost(MnId::new(1), 2.0);
        assert_eq!(b.staleness(MnId::new(1)), 2);
        b.receive(&lu(1, 3.0, 6.0, 0.0));
        assert_eq!(b.staleness(MnId::new(1)), 0);
        assert!(!b.location(MnId::new(1)).unwrap().estimated);
    }

    #[test]
    fn note_lost_on_unknown_node_only_tracks_staleness() {
        let mut b = GridBroker::new(EstimatorKind::Brown { alpha: 0.5 }).unwrap();
        b.note_lost(MnId::new(4), 1.0);
        assert_eq!(b.location(MnId::new(4)), None);
        assert_eq!(b.lost_count(), 1);
        assert_eq!(b.estimated_count(), 0);
        assert_eq!(b.staleness(MnId::new(4)), 1);
    }

    #[test]
    fn shard_note_lost_matches_sequential() {
        let mut seq = GridBroker::new(EstimatorKind::DeadReckoning).unwrap();
        let mut sharded = GridBroker::new(EstimatorKind::DeadReckoning).unwrap();
        sharded.ensure_nodes(4);

        for t in 0..3 {
            for node in 0..4u32 {
                seq.receive(&lu(node, t as f64, f64::from(node) * t as f64, 0.0));
            }
        }
        seq.note_lost(MnId::new(1), 3.0);
        seq.note_lost(MnId::new(1), 4.0);
        seq.note_lost(MnId::new(3), 3.0);

        {
            let mut shards = sharded.shard_views(2);
            for t in 0..3 {
                for node in 0..4u32 {
                    let shard = &mut shards[node as usize / 2];
                    shard.receive(&lu(node, t as f64, f64::from(node) * t as f64, 0.0));
                }
            }
            shards[0].note_lost(MnId::new(1), 3.0);
            shards[0].note_lost(MnId::new(1), 4.0);
            shards[1].note_lost(MnId::new(3), 3.0);
            assert_eq!(shards[0].stale_count(), 1);
            assert_eq!(shards[1].stale_count(), 1);
            let deltas: Vec<BrokerDelta> = shards.into_iter().map(BrokerShard::into_delta).collect();
            for d in &deltas {
                sharded.apply_delta(d);
            }
        }

        assert_eq!(seq.lost_count(), sharded.lost_count());
        assert_eq!(seq.estimated_count(), sharded.estimated_count());
        for node in 0..4u32 {
            assert_eq!(seq.location(MnId::new(node)), sharded.location(MnId::new(node)));
            assert_eq!(seq.staleness(MnId::new(node)), sharded.staleness(MnId::new(node)));
        }
    }

    #[test]
    fn apply_info_reports_outcome_staleness_and_blend() {
        let mut b = GridBroker::new(EstimatorKind::DeadReckoning).unwrap();
        // Unknown node: nothing to estimate from.
        let info = b.note_filtered(MnId::new(1), 0.0);
        assert_eq!(info.outcome, ApplyOutcome::NoRecord);
        fn check(info: ApplyInfo, outcome: ApplyOutcome, staleness: u32) {
            assert_eq!(info.outcome, outcome);
            assert_eq!(info.staleness, staleness);
        }
        check(b.receive(&lu(1, 0.0, 0.0, 0.0)), ApplyOutcome::Accepted, 0);
        check(b.receive(&lu(1, 1.0, 2.0, 0.0)), ApplyOutcome::Accepted, 0);
        // Duplicate and stale frames keep staleness untouched.
        check(b.receive(&lu(1, 1.0, 2.0, 0.0)), ApplyOutcome::Duplicate, 0);
        check(b.receive(&lu(1, 0.5, 1.0, 0.0)), ApplyOutcome::Stale, 0);
        // Suppressed tick: estimated, still not stale, no blending.
        let info = b.note_filtered(MnId::new(1), 2.0);
        check(info, ApplyOutcome::Estimated, 0);
        assert_eq!(info.blend, 1.0);
        // First loss: degraded with full trust in extrapolation.
        let info = b.note_lost(MnId::new(1), 3.0);
        check(info, ApplyOutcome::Degraded, 1);
        assert!((info.blend - 1.0).abs() < 1e-12);
        // Second loss: trust shrinks to W/(W+1) = 8/9.
        let info = b.note_lost(MnId::new(1), 4.0);
        check(info, ApplyOutcome::Degraded, 2);
        assert!((info.blend - 8.0 / 9.0).abs() < 1e-12, "blend {}", info.blend);
        // A receive resets staleness.
        check(b.receive(&lu(1, 5.0, 10.0, 0.0)), ApplyOutcome::Accepted, 0);
        // Loss on a never-heard-from node: staleness only, nothing stored.
        check(b.note_lost(MnId::new(7), 5.0), ApplyOutcome::NoRecord, 1);

        // Shard views report the same ApplyInfo shape.
        let mut sb = GridBroker::new(EstimatorKind::DeadReckoning).unwrap();
        sb.ensure_nodes(2);
        let mut shards = sb.shard_views(2);
        check(shards[0].receive(&lu(0, 0.0, 0.0, 0.0)), ApplyOutcome::Accepted, 0);
        check(shards[0].receive(&lu(0, 1.0, 1.0, 0.0)), ApplyOutcome::Accepted, 0);
        check(shards[0].note_lost(MnId::new(0), 2.0), ApplyOutcome::Degraded, 1);
        check(shards[0].note_filtered(MnId::new(1), 2.0), ApplyOutcome::NoRecord, 0);
    }

    #[test]
    #[should_panic(expected = "outside this broker shard")]
    fn shard_rejects_foreign_node() {
        let mut b = GridBroker::new(EstimatorKind::WithoutLe).unwrap();
        b.ensure_nodes(8);
        let mut shards = b.shard_views(4);
        shards[0].receive(&lu(6, 0.0, 0.0, 0.0));
    }
}
