use serde::{Deserialize, Serialize};

use mobigrid_geo::Point;

/// The outcome of passing one location observation through a filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The location update is transmitted to the grid broker.
    Sent,
    /// The location update is suppressed; the broker must estimate.
    Filtered,
}

impl Decision {
    /// Returns `true` for [`Decision::Sent`].
    #[must_use]
    pub fn is_sent(self) -> bool {
        matches!(self, Decision::Sent)
    }
}

/// Which reference position the moving distance is measured from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterReference {
    /// Distance moved since the **previous observation** — the paper's
    /// semantics ("compares the MN's moving distance with the DTH").
    /// A node moving steadily below its DTH is suppressed indefinitely, so
    /// the broker's error is unbounded without estimation; this is exactly
    /// why the paper pairs the filter with a location estimator.
    PreviousObservation,
    /// Distance moved since the **last transmitted** position — the
    /// dead-band variant common in moving-object databases. Slow nodes
    /// accumulate displacement and eventually report, bounding the broker's
    /// error by the DTH. Kept as an ablation arm.
    LastTransmitted,
}

/// The per-node distance filter (DF): suppress the location update while
/// the node's moving distance is below the Distance Threshold (DTH).
///
/// The first observation is always sent (the broker must learn the node
/// exists somewhere). See [`FilterReference`] for the two distance
/// semantics; the paper's is [`FilterReference::PreviousObservation`].
///
/// # Examples
///
/// ```
/// use mobigrid_adf::{Decision, DistanceFilter, FilterReference};
/// use mobigrid_geo::Point;
///
/// // Paper semantics: a node creeping at 1 m/tick under a 2 m DTH stays
/// // silent forever…
/// let mut df = DistanceFilter::new(2.0);
/// assert!(df.observe(Point::new(0.0, 0.0)).is_sent());
/// assert!(!df.observe(Point::new(1.0, 0.0)).is_sent());
/// assert!(!df.observe(Point::new(2.0, 0.0)).is_sent());
/// assert!(!df.observe(Point::new(3.0, 0.0)).is_sent());
///
/// // …while the dead-band variant reports once 2 m accumulate.
/// let mut db = DistanceFilter::with_reference(2.0, FilterReference::LastTransmitted);
/// assert!(db.observe(Point::new(0.0, 0.0)).is_sent());
/// assert!(!db.observe(Point::new(1.0, 0.0)).is_sent());
/// assert!(db.observe(Point::new(2.0, 0.0)).is_sent());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceFilter {
    dth: f64,
    reference: FilterReference,
    last_sent: Option<Point>,
    last_observed: Option<Point>,
    last_step: Option<f64>,
    sent: u64,
    filtered: u64,
}

impl DistanceFilter {
    /// Creates a filter with threshold `dth` metres and the paper's
    /// previous-observation semantics.
    ///
    /// # Panics
    ///
    /// Panics when `dth` is negative or non-finite. A zero DTH is allowed
    /// and sends every observation (the "ideal LU" behaviour).
    #[must_use]
    pub fn new(dth: f64) -> Self {
        DistanceFilter::with_reference(dth, FilterReference::PreviousObservation)
    }

    /// Creates a filter with an explicit distance reference.
    ///
    /// # Panics
    ///
    /// Panics when `dth` is negative or non-finite.
    #[must_use]
    pub fn with_reference(dth: f64, reference: FilterReference) -> Self {
        assert!(dth.is_finite() && dth >= 0.0, "DTH must be non-negative");
        DistanceFilter {
            dth,
            reference,
            last_sent: None,
            last_observed: None,
            last_step: None,
            sent: 0,
            filtered: 0,
        }
    }

    /// The current distance threshold in metres.
    #[must_use]
    pub fn dth(&self) -> f64 {
        self.dth
    }

    /// The distance semantics in use.
    #[must_use]
    pub fn reference(&self) -> FilterReference {
        self.reference
    }

    /// Re-sizes the threshold (the ADF does this on every reclustering).
    ///
    /// # Panics
    ///
    /// Panics when `dth` is negative or non-finite.
    pub fn set_dth(&mut self, dth: f64) {
        assert!(dth.is_finite() && dth >= 0.0, "DTH must be non-negative");
        self.dth = dth;
    }

    /// The last transmitted position, if any update has been sent.
    #[must_use]
    pub fn last_sent(&self) -> Option<Point> {
        self.last_sent
    }

    /// Filters one observation.
    pub fn observe(&mut self, position: Point) -> Decision {
        let anchor = match self.reference {
            FilterReference::PreviousObservation => self.last_observed,
            FilterReference::LastTransmitted => self.last_sent,
        };
        let dist = anchor.map(|prev| prev.distance_to(position));
        let send = match dist {
            None => true,
            Some(d) => d >= self.dth,
        };
        self.last_step = dist;
        self.last_observed = Some(position);
        if send {
            self.last_sent = Some(position);
            self.sent += 1;
            Decision::Sent
        } else {
            self.filtered += 1;
            Decision::Filtered
        }
    }

    /// The displacement (metres against the filter's reference) measured
    /// by the most recent [`DistanceFilter::observe`] call — `None` until
    /// the filter has an anchor to measure from (the always-sent first
    /// observation). Feeds the flight recorder's decision events.
    #[must_use]
    pub fn last_displacement(&self) -> Option<f64> {
        self.last_step
    }

    /// Number of observations transmitted.
    #[must_use]
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Number of observations suppressed.
    #[must_use]
    pub fn filtered_count(&self) -> u64 {
        self.filtered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_always_sent() {
        let mut df = DistanceFilter::new(100.0);
        assert_eq!(df.observe(Point::ORIGIN), Decision::Sent);
        assert_eq!(df.last_sent(), Some(Point::ORIGIN));
    }

    #[test]
    fn zero_dth_sends_everything() {
        for reference in [
            FilterReference::PreviousObservation,
            FilterReference::LastTransmitted,
        ] {
            let mut df = DistanceFilter::with_reference(0.0, reference);
            for i in 0..5 {
                assert!(df.observe(Point::new(f64::from(i) * 0.001, 0.0)).is_sent());
            }
            assert_eq!(df.sent_count(), 5);
        }
    }

    #[test]
    fn paper_semantics_suppress_steady_slow_movers_indefinitely() {
        let mut df = DistanceFilter::new(3.0);
        df.observe(Point::new(0.0, 0.0));
        for i in 1..100 {
            let d = df.observe(Point::new(f64::from(i) * 2.0, 0.0));
            assert!(!d.is_sent(), "step {i} sent despite moving < DTH per tick");
        }
        assert_eq!(df.sent_count(), 1);
    }

    #[test]
    fn paper_semantics_send_fast_steps() {
        let mut df = DistanceFilter::new(3.0);
        df.observe(Point::new(0.0, 0.0));
        assert!(df.observe(Point::new(5.0, 0.0)).is_sent());
        assert!(!df.observe(Point::new(6.0, 0.0)).is_sent());
        assert!(df.observe(Point::new(10.0, 0.0)).is_sent());
    }

    #[test]
    fn dead_band_accumulates_from_last_sent() {
        let mut df = DistanceFilter::with_reference(3.0, FilterReference::LastTransmitted);
        df.observe(Point::new(0.0, 0.0));
        assert!(!df.observe(Point::new(1.0, 0.0)).is_sent());
        assert!(!df.observe(Point::new(2.0, 0.0)).is_sent());
        assert!(df.observe(Point::new(3.0, 0.0)).is_sent());
        // Baseline resets to (3,0).
        assert!(!df.observe(Point::new(4.0, 0.0)).is_sent());
    }

    #[test]
    fn boundary_is_inclusive() {
        let mut df = DistanceFilter::new(2.0);
        df.observe(Point::ORIGIN);
        assert!(df.observe(Point::new(2.0, 0.0)).is_sent());
    }

    #[test]
    fn stationary_node_sends_only_once() {
        for reference in [
            FilterReference::PreviousObservation,
            FilterReference::LastTransmitted,
        ] {
            let mut df = DistanceFilter::with_reference(1.0, reference);
            df.observe(Point::new(5.0, 5.0));
            for _ in 0..100 {
                assert!(!df.observe(Point::new(5.0, 5.0)).is_sent());
            }
            assert_eq!(df.sent_count(), 1);
            assert_eq!(df.filtered_count(), 100);
        }
    }

    #[test]
    fn oscillation_below_dth_is_fully_filtered() {
        // A node pacing between two points 1 m apart never exceeds a 2 m
        // DTH under either semantics — the RMS-in-a-lab case.
        for reference in [
            FilterReference::PreviousObservation,
            FilterReference::LastTransmitted,
        ] {
            let mut df = DistanceFilter::with_reference(2.0, reference);
            df.observe(Point::new(0.0, 0.0));
            for i in 0..50 {
                let x = if i % 2 == 0 { 1.0 } else { 0.0 };
                assert!(!df.observe(Point::new(x, 0.0)).is_sent());
            }
        }
    }

    #[test]
    fn set_dth_applies_immediately() {
        let mut df = DistanceFilter::new(10.0);
        df.observe(Point::ORIGIN);
        assert!(!df.observe(Point::new(5.0, 0.0)).is_sent());
        df.set_dth(4.0);
        assert!(df.observe(Point::new(10.0, 0.0)).is_sent());
    }

    #[test]
    fn reference_accessor_reports_semantics() {
        assert_eq!(
            DistanceFilter::new(1.0).reference(),
            FilterReference::PreviousObservation
        );
        assert_eq!(
            DistanceFilter::with_reference(1.0, FilterReference::LastTransmitted).reference(),
            FilterReference::LastTransmitted
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dth_panics() {
        let _ = DistanceFilter::new(-1.0);
    }

    #[test]
    fn last_displacement_tracks_each_observation() {
        let mut df = DistanceFilter::new(3.0);
        assert_eq!(df.last_displacement(), None);
        df.observe(Point::new(0.0, 0.0));
        assert_eq!(df.last_displacement(), None, "first observation has no anchor");
        df.observe(Point::new(2.0, 0.0));
        assert_eq!(df.last_displacement(), Some(2.0));
        df.observe(Point::new(6.0, 0.0));
        assert_eq!(df.last_displacement(), Some(4.0));
        // Dead-band semantics measure from the last transmitted fix.
        let mut db = DistanceFilter::with_reference(3.0, FilterReference::LastTransmitted);
        db.observe(Point::new(0.0, 0.0));
        db.observe(Point::new(1.0, 0.0));
        db.observe(Point::new(2.0, 0.0));
        assert_eq!(db.last_displacement(), Some(2.0), "accumulated from last sent");
    }
}
