use mobigrid_campus::RegionKind;
use mobigrid_geo::Point;
use mobigrid_mobility::MobilityPattern;
use mobigrid_sim::par::ShardPool;
use mobigrid_sim::stats::Rmse;
use mobigrid_telemetry::{
    ApplyOutcome, BucketSpec, EventKind, HistogramDelta, LinkFate, MobilityClass, MonitorSet,
    NodeFate, NoopRecorder, Phase, Recorder, TickVitals, Violation,
};
use mobigrid_wireless::{
    event_noise, AccessNetwork, DropCause, FaultChannel, FaultPlan, LinkEvent, LocationUpdate,
    MnId, RetryPolicy, SALT_RETRY_JITTER,
};

use crate::broker::{ApplyInfo, BrokerDelta, BrokerShard};
use crate::runtime::{FaultSpec, RuntimeOptions, SimError};
use crate::{
    Decision, EstimatorKind, FilterPolicy, GridBroker, MobileNode, NodeColumns, NodeView,
    RegionTally,
};

/// Nodes per shard in the parallel tick phases.
///
/// Shard geometry is a pure function of the population size — never of the
/// thread count — so per-shard partial results and the shard-ordered
/// reduction below are bit-identical whether a tick runs on one thread or
/// many. Threads only decide *where* a shard executes.
const SHARD_SIZE: usize = 64;

/// Upper bound on the invariant violations [`MobileGridSim`] retains in
/// memory (the recorder additionally sees every one as an event). A
/// healthy run keeps zero; the cap only stops a systemically broken run
/// from growing the log without bound.
const VIOLATION_LOG_CAP: usize = 1024;

/// The fixed log-spaced bucket boundaries both per-node location-error
/// histograms (`sim.err_with_le`, `sim.err_without_le`) are recorded
/// over: 20 buckets from 0.125 m doubling up to ~65 km, plus underflow
/// and overflow. Fixed boundaries are what make per-shard
/// [`HistogramDelta`]s exactly mergeable in shard order.
#[must_use]
pub fn error_bucket_spec() -> BucketSpec {
    BucketSpec::log_spaced(0.125, 2.0, 20)
}

/// Everything the experiments need from one simulation tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickStats {
    /// Simulation time at the end of the tick, in seconds.
    pub time_s: f64,
    /// Location updates transmitted this tick (the Figure-4 series).
    /// Counts every frame that reached the air, including retransmissions
    /// and frames the fault channel then lost.
    pub sent: u32,
    /// Location updates observed (transmitted + filtered) this tick.
    pub observed: u32,
    /// Retransmissions among this tick's sends (attempt number > 0).
    pub retries: u32,
    /// Transmitted updates that failed to arrive this tick: dropped in
    /// flight, corrupted, or deferred to a later tick.
    pub lost: u32,
    /// Deferred updates that finally arrived this tick.
    pub late: u32,
    /// Nodes the with-LE broker currently marks stale (one or more
    /// consecutive losses since their last accepted update).
    pub stale_nodes: u32,
    /// Per-region-kind tallies for this tick (Figure 6).
    pub region: RegionTally,
    /// RMSE of the broker *with* the location estimator (Figure 7).
    pub rmse_with_le: f64,
    /// RMSE of the broker *without* the estimator (Figure 7).
    pub rmse_without_le: f64,
    /// Road-only RMSE with the estimator (Figure 9).
    pub road_rmse_with_le: f64,
    /// Road-only RMSE without the estimator (Figure 8).
    pub road_rmse_without_le: f64,
    /// Building-only RMSE with the estimator (Figure 9).
    pub building_rmse_with_le: f64,
    /// Building-only RMSE without the estimator (Figure 8).
    pub building_rmse_without_le: f64,
}

/// Builder for [`MobileGridSim`].
///
/// # Examples
///
/// See [`MobileGridSim`].
pub struct SimBuilder {
    nodes: Vec<MobileNode>,
    policy: Option<Box<dyn FilterPolicy + Send>>,
    estimator: EstimatorKind,
    network: Option<AccessNetwork>,
    runtime: RuntimeOptions,
    dt: f64,
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder {
            nodes: Vec::new(),
            policy: None,
            estimator: EstimatorKind::Brown { alpha: 0.5 },
            network: None,
            runtime: RuntimeOptions::default(),
            dt: 1.0,
        }
    }
}

impl SimBuilder {
    /// Starts an empty builder (1 s ticks, Brown α = 0.5 estimator).
    #[must_use]
    pub fn new() -> Self {
        SimBuilder::default()
    }

    /// Sets the node population. Node ids must be the dense range `0..n`.
    #[must_use]
    pub fn nodes(mut self, nodes: Vec<MobileNode>) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the filter policy under test.
    #[must_use]
    pub fn policy(mut self, policy: impl FilterPolicy + Send + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Sets the "with LE" broker's estimator (the "without LE" broker always
    /// runs [`EstimatorKind::WithoutLe`]).
    #[must_use]
    pub fn estimator(mut self, kind: EstimatorKind) -> Self {
        self.estimator = kind;
        self
    }

    /// Attaches an access network for traffic accounting. Updates sent from
    /// outside any gateway's coverage are counted as dropped and do not
    /// reach the brokers.
    #[must_use]
    pub fn network(mut self, network: AccessNetwork) -> Self {
        self.network = Some(network);
        self
    }

    /// Wraps the access network in a deterministic [`FaultChannel`] driven
    /// by `plan` and a dedicated `seed` (independent of the workload seed).
    /// Fault fates are pure hashes of `(seed, node, seq, attempt)`, so the
    /// same plan and seed replay bit-identically at any thread count.
    ///
    /// Requires [`SimBuilder::network`]; [`SimBuilder::build`] rejects a
    /// fault plan without a network to inject into.
    ///
    /// Convenience over [`SimBuilder::runtime`]'s `faults` field.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan, seed: u64) -> Self {
        self.runtime.faults = Some(FaultSpec { plan, seed });
        self
    }

    /// Replaces the whole execution-option set at once. Unlike the
    /// clamping convenience setters, the options pass through
    /// [`RuntimeOptions::validate`] unchanged at build time, so
    /// `threads: 0` or out-of-range fault rates are rejected instead of
    /// silently adjusted.
    #[must_use]
    pub fn runtime(mut self, runtime: RuntimeOptions) -> Self {
        self.runtime = runtime;
        self
    }

    /// Overrides the tick length in seconds (default 1.0, as in the paper).
    #[must_use]
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Sets the worker-thread budget for the parallel tick phases
    /// (default 1 = fully serial). Results are bit-identical for every
    /// thread count: shards are fixed-size slices of the node population
    /// and their partial results are reduced in shard order.
    ///
    /// Convenience over [`SimBuilder::runtime`]; `0` clamps to `1` for
    /// backwards compatibility (pass a [`RuntimeOptions`] to have `0`
    /// rejected instead).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.runtime.threads = threads.max(1);
        self
    }

    /// Assembles the simulation.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`]: missing policy, empty/non-dense node
    /// population, invalid estimator parameters, a non-positive tick
    /// length, invalid [`RuntimeOptions`] (zero thread budgets, fault
    /// rates outside `[0, 1]`, bad retry policies), or a fault plan
    /// without a network.
    pub fn build(self) -> Result<MobileGridSim, SimError> {
        self.runtime.validate()?;
        let policy = self
            .policy
            .ok_or_else(|| SimError::Config("a filter policy is required".to_string()))?;
        if self.nodes.is_empty() {
            return Err(SimError::Config("at least one node is required".to_string()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id().index() != i {
                return Err(SimError::Config(format!(
                    "node ids must be dense 0..n: found {} at position {i}",
                    n.id()
                )));
            }
        }
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(SimError::Config(format!(
                "dt must be positive, got {}",
                self.dt
            )));
        }
        let mut broker_le = GridBroker::new(self.estimator).map_err(SimError::Config)?;
        let mut broker_raw = GridBroker::new(EstimatorKind::WithoutLe).map_err(SimError::Config)?;
        broker_le.ensure_nodes(self.nodes.len());
        broker_raw.ensure_nodes(self.nodes.len());
        let channel = match &self.runtime.faults {
            Some(FaultSpec { plan, seed }) => {
                if self.network.is_none() {
                    return Err(SimError::Config(
                        "fault injection requires an access network".to_string(),
                    ));
                }
                Some(FaultChannel::new(plan.clone(), *seed)?)
            }
            None => None,
        };
        // Dense ids were validated above: decompose the population into the
        // columnar SoA store the tick kernels sweep.
        let cols = NodeColumns::from_nodes(self.nodes);
        for (i, anchor) in cols.home_anchors().iter().enumerate() {
            if let Some(anchor) = anchor {
                broker_le.set_home_anchor(MnId::new(i as u32), *anchor);
                broker_raw.set_home_anchor(MnId::new(i as u32), *anchor);
            }
        }
        // Per-node policies win; `runtime.retry` fills the gaps.
        let retry_policies: Vec<Option<RetryPolicy>> = cols
            .retry_policies()
            .iter()
            .map(|p| p.or(self.runtime.retry))
            .collect();
        for policy in retry_policies.iter().flatten() {
            policy.validate()?;
        }
        let seqs = vec![0u32; cols.len()];
        let retry = vec![RetryState::IDLE; cols.len()];
        let scratch = TickScratch::new(cols.len());
        Ok(MobileGridSim {
            cols,
            policy,
            broker_le,
            broker_raw,
            network: self.network,
            channel,
            retry_policies,
            retry,
            dt: self.dt,
            tick: 0,
            seqs,
            cumulative: RegionTally::new(),
            pool: ShardPool::new(self.runtime.threads),
            prev_stale: 0,
            scratch,
            monitors: MonitorSet::standard(),
            violations: Vec::new(),
        })
    }
}

/// Reusable per-tick buffers owned by [`MobileGridSim`] — the simulation's
/// tick arena.
///
/// Every buffer is sized for the (fixed) node population at build time and
/// reused on every [`MobileGridSim::step`], so the steady-state tick path
/// performs no heap allocations (see `DESIGN.md`, "Tick memory model").
/// `observations`, `link` and `sent_seq` are fixed-length and overwritten
/// in place; `decisions`, `late_lus` and `outs` are cleared and refilled,
/// reusing their high-water capacity.
struct TickScratch {
    /// This tick's `(node, ground-truth position)` pairs, node order.
    /// Written by phase 1 through disjoint per-shard slices.
    observations: Vec<(MnId, Point)>,
    /// One filter decision per observation, written by the policy.
    decisions: Vec<Decision>,
    /// Per-node network outcome when an access network is attached.
    link: Vec<LinkOutcome>,
    /// Sequence number each node transmitted with this tick (valid only
    /// where `link` records a transmission; phase 2b owns `seqs` when a
    /// network is attached and hands the used value to phase 3 here).
    sent_seq: Vec<u32>,
    /// Deferred frames that came due this tick, drained from the channel.
    late_lus: Vec<LocationUpdate>,
    /// Per-shard partial results of the fused apply/measure phase.
    outs: Vec<ShardOut>,
    /// Per-node apply fate for the invariant monitors, derived from the
    /// decisions (no network) or the link outcomes (network attached).
    fates: Vec<NodeFate>,
    /// Per-node with-LE staleness counters after the apply phase, read
    /// back from the broker for the staleness-consistency monitor.
    staleness: Vec<u32>,
    /// Per-node flag: a deferred frame for this node arrived late and was
    /// accepted earlier in the tick (resets the staleness baseline).
    late_accepted: Vec<bool>,
}

impl TickScratch {
    fn new(nodes: usize) -> Self {
        TickScratch {
            observations: vec![(MnId::new(0), Point::ORIGIN); nodes],
            decisions: Vec::with_capacity(nodes),
            link: vec![LinkOutcome::Idle; nodes],
            sent_seq: vec![0u32; nodes],
            late_lus: Vec::new(),
            outs: Vec::with_capacity(mobigrid_sim::par::shard_count(nodes, SHARD_SIZE)),
            fates: vec![NodeFate::Idle; nodes],
            staleness: vec![0u32; nodes],
            late_accepted: vec![false; nodes],
        }
    }
}

/// Per-node outcome of the network phase, handed from the sequential
/// routing phase (2b) to the sharded apply/measure phase (3+4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkOutcome {
    /// Nothing was transmitted for this node this tick.
    Idle,
    /// The update reached the broker this tick.
    Delivered {
        /// The channel delivered a second copy alongside the original.
        duplicate: bool,
    },
    /// The update did not reach the broker this tick. `transmitted` is
    /// true when the frame reached the air (lost or deferred in flight)
    /// and false when the node was out of coverage.
    Lost { transmitted: bool },
}

/// Per-node retransmission state driven by the node's [`RetryPolicy`].
#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// Failed attempts in the current loss streak (0 = healthy).
    attempt: u32,
    /// Tick at which the next retransmission fires (`u64::MAX` = none).
    due_tick: u64,
}

impl RetryState {
    const IDLE: RetryState = RetryState {
        attempt: 0,
        due_tick: u64::MAX,
    };
}

/// The full evaluation pipeline: nodes → filter policy → (optional) access
/// network → twin brokers (with and without the location estimator).
///
/// Each [`MobileGridSim::step`] advances every node one tick, filters the
/// resulting location updates, feeds both brokers identically, and measures
/// each broker's location error against ground truth — producing exactly the
/// quantities plotted in the paper's Figures 4–9.
///
/// # Examples
///
/// ```
/// use mobigrid_adf::{IdealPolicy, MobileNode, SimBuilder};
/// use mobigrid_campus::{RegionId, RegionKind};
/// use mobigrid_geo::Point;
/// use mobigrid_mobility::{MobilityPattern, NodeType, StopModel};
/// use mobigrid_wireless::MnId;
///
/// let node = MobileNode::new(
///     MnId::new(0),
///     RegionId::from_index(0),
///     RegionKind::Building,
///     NodeType::Human,
///     MobilityPattern::Stop,
///     StopModel::new(Point::new(1.0, 1.0)),
///     0,
/// );
/// let mut sim = SimBuilder::new()
///     .nodes(vec![node])
///     .policy(IdealPolicy::new())
///     .build()
///     .unwrap();
/// let stats = sim.step();
/// assert_eq!(stats.sent, 1);
/// assert_eq!(stats.rmse_without_le, 0.0); // ideal policy: no error
/// ```
pub struct MobileGridSim {
    /// The node population as a dense columnar store: movement state,
    /// metadata and the region-kind column the parallel phases slice.
    cols: NodeColumns,
    policy: Box<dyn FilterPolicy + Send>,
    broker_le: GridBroker,
    broker_raw: GridBroker,
    network: Option<AccessNetwork>,
    channel: Option<FaultChannel>,
    retry_policies: Vec<Option<RetryPolicy>>,
    retry: Vec<RetryState>,
    dt: f64,
    tick: u64,
    seqs: Vec<u32>,
    cumulative: RegionTally,
    pool: ShardPool,
    /// Stale-node count at the end of the previous tick, for the
    /// telemetry staleness-transition event.
    prev_stale: u32,
    scratch: TickScratch,
    /// The online invariant battery, run at the end of every tick —
    /// recording or not — over the tick's conservation-law vitals.
    monitors: MonitorSet,
    /// Violations the monitors have found so far, capped at
    /// [`VIOLATION_LOG_CAP`] (an enabled recorder sees every one as an
    /// `invariant_violation` event regardless).
    violations: Vec<Violation>,
}

impl std::fmt::Debug for MobileGridSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileGridSim")
            .field("nodes", &self.cols.len())
            .field("policy", &self.policy.name())
            .field("tick", &self.tick)
            .field("threads", &self.pool.threads())
            .finish()
    }
}

/// Everything one shard of the fused apply/measure phase needs: disjoint
/// mutable slices of the per-node state plus read-only slices of this tick's
/// inputs, all covering the same `[base, base + len)` node-index range.
struct ShardJob<'a> {
    kinds: &'a [RegionKind],
    observations: &'a [(MnId, Point)],
    decisions: &'a [Decision],
    /// Per-node network outcomes, present when a network is attached (the
    /// routing phase then owns the sequence counters).
    link: Option<&'a [LinkOutcome]>,
    /// Sequence numbers each node transmitted with. With a network the
    /// routing phase wrote them (valid where `link` records a
    /// transmission); without one this shard owns `seqs` and writes the
    /// used value back here for the seq-monotonicity monitor.
    sent_seqs: &'a mut [u32],
    seqs: &'a mut [u32],
    le: BrokerShard<'a>,
    raw: BrokerShard<'a>,
}

/// One node's flight-recorder sample from the apply/measure phase: the
/// with-LE broker's apply verdict plus both brokers' location errors.
/// Collected per shard only while a recorder is enabled, and drained in
/// shard order into `lu_apply`/`lu_error` events so the emission order is
/// independent of the thread count.
struct FlightSample {
    node: u32,
    apply: ApplyInfo,
    err_le: f64,
    err_raw: f64,
}

/// One shard's partial results. `sent` and the tally are exact (`u32`/`u64`)
/// under any merge order; the RMSE partials are reduced in shard order so
/// the floating-point sums are bit-identical across thread counts.
struct ShardOut {
    sent: u32,
    stale: u32,
    tally: RegionTally,
    all_le: Rmse,
    all_raw: Rmse,
    road_le: Rmse,
    road_raw: Rmse,
    bld_le: Rmse,
    bld_raw: Rmse,
    le_delta: BrokerDelta,
    raw_delta: BrokerDelta,
    /// Per-node location-error histograms over [`error_bucket_spec`]
    /// buckets, filled only when a recorder is enabled. Like the RMSE
    /// partials they are merged in shard order — and because a
    /// [`HistogramDelta`] merge is pure integer adds plus f64 min/max,
    /// the merged result is bit-identical under *any* order.
    err_le: HistogramDelta,
    err_raw: HistogramDelta,
    /// Per-node flight-recorder samples, filled only when a recorder is
    /// enabled (stays an unallocated empty `Vec` otherwise, keeping the
    /// steady-state tick allocation-free).
    flight: Vec<FlightSample>,
}

impl MobileGridSim {
    /// Starts building a simulation.
    #[must_use]
    pub fn builder() -> SimBuilder {
        SimBuilder::new()
    }

    /// The node population's columnar store.
    #[must_use]
    pub fn columns(&self) -> &NodeColumns {
        &self.cols
    }

    /// Number of nodes in the population.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.cols.len()
    }

    /// A read-only facade over node `index` (dense ids: `index` is the
    /// node's [`MnId`] value).
    ///
    /// # Panics
    ///
    /// Panics when `index >= node_count()`.
    #[must_use]
    pub fn node(&self, index: usize) -> NodeView<'_> {
        self.cols.view(index)
    }

    /// The filter policy under test.
    #[must_use]
    pub fn policy(&self) -> &(dyn FilterPolicy + Send) {
        self.policy.as_ref()
    }

    /// The broker running the location estimator.
    #[must_use]
    pub fn broker_with_le(&self) -> &GridBroker {
        &self.broker_le
    }

    /// The broker without estimation (last-received only).
    #[must_use]
    pub fn broker_without_le(&self) -> &GridBroker {
        &self.broker_raw
    }

    /// The access network, when attached.
    #[must_use]
    pub fn network(&self) -> Option<&AccessNetwork> {
        self.network.as_ref()
    }

    /// The fault-injection channel, when one was configured via
    /// [`SimBuilder::faults`].
    #[must_use]
    pub fn fault_channel(&self) -> Option<&FaultChannel> {
        self.channel.as_ref()
    }

    /// Ticks executed so far.
    #[must_use]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Cumulative per-kind tallies since the start of the run.
    #[must_use]
    pub fn cumulative_tally(&self) -> RegionTally {
        self.cumulative
    }

    /// The worker-thread budget for the parallel tick phases.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Invariant violations the online monitor battery has found so far.
    ///
    /// The four-law battery ([`MonitorSet::standard`]) runs at the end of
    /// **every** tick, recorded or not: filter conservation, channel
    /// conservation (including in-flight continuity), per-node wire-seq
    /// monotonicity, and staleness consistency. A healthy run keeps this
    /// empty; tests and CI assert exactly that. Retention is capped at
    /// 1024 entries so a systemically broken run cannot grow the log
    /// without bound (an enabled recorder still sees every violation as
    /// an `invariant_violation` event).
    #[must_use]
    pub fn invariant_violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Executes one tick and returns its statistics.
    ///
    /// The tick runs in four phases. Ground-truth advancement (1) and the
    /// fused deliver/estimate/measure phase (3+4) run shard-parallel over
    /// fixed `SHARD_SIZE`-node slices; filtering (2) and network routing
    /// (2b) stay sequential — the ADF clusters across the whole population
    /// and the access network is a single shared resource with ordered
    /// accounting. Phase 2b also drains the fault channel's deferred
    /// frames and drives each node's retry schedule; fault fates are pure
    /// hashes of the event identity, never of scheduling. Every per-shard
    /// partial is reduced in shard order, so the returned [`TickStats`]
    /// stream is bit-identical for every thread count.
    ///
    /// Every phase works in the reusable [`TickScratch`] buffers, so in
    /// steady state (with a single worker thread) a tick performs **zero
    /// heap allocations** — pinned by the counting-allocator test in
    /// `crates/bench/tests/zero_alloc.rs`. With more threads the only
    /// allocations are the executor's transient spawn scaffolding.
    pub fn step(&mut self) -> TickStats {
        self.step_recorded(&mut NoopRecorder)
    }

    /// Executes one tick like [`MobileGridSim::step`], streaming telemetry
    /// into `rec`.
    ///
    /// With the default [`NoopRecorder`] this is exactly [`step`]
    /// (`MobileGridSim::step` simply delegates here): every emission site
    /// is either a no-op virtual call or gated on [`Recorder::enabled`],
    /// so the tick path stays allocation-free and the golden traces stay
    /// bit-exact. With an enabled recorder each tick emits the **causal
    /// flight-recorder chain** — every location update carries the stable
    /// identity `(node, seq)` where `seq` is the tick it was generated
    /// on, linking its lifecycle events:
    ///
    /// - `lu_generated` — the ground-truth observation (position);
    /// - `lu_classified` — the policy's view, when it classifies
    ///   (mobility class, velocity cluster or `-1`, DTH in force);
    /// - `lu_decision` — sent or suppressed, with the measured
    ///   displacement against the DTH;
    /// - `lu_channel` — one per frame on the air (first sends, retries
    ///   and late arrivals), with wire seq, attempt and fate (delivered,
    ///   duplicate, deferred with its due tick, arrived-late, dropped by
    ///   cause);
    /// - `lu_apply` — the with-LE broker's verdict (accepted, duplicate,
    ///   stale, estimated, degraded) with the node's staleness counter
    ///   and trust-blend weight;
    /// - `lu_error` — both brokers' location error against ground truth.
    ///
    /// Alongside the chain each tick emits **spans** for the four phases,
    /// `staleness` transition and `invariant_violation` events,
    /// **counters** mirroring [`TickStats`] plus the flow-conservation
    /// quantities (`sim.filter_sent`, `sim.suppressed`, `sim.delivered`,
    /// `sim.deferred`, `sim.no_coverage`, `sim.invariant_violations`),
    /// **gauges** for the instantaneous values, and the two per-node
    /// location-error **histograms** over the fixed [`error_bucket_spec`]
    /// buckets. Everything is accumulated per shard and merged in shard
    /// order, so recorded telemetry is bit-identical at every thread
    /// count.
    ///
    /// The online invariant monitors run whether or not a recorder is
    /// attached; see [`MobileGridSim::invariant_violations`].
    ///
    /// [`step`]: MobileGridSim::step
    pub fn step_recorded(&mut self, rec: &mut dyn Recorder) -> TickStats {
        let recording = rec.enabled();
        self.tick += 1;
        rec.tick_start(self.tick);
        let time_s = self.tick as f64 * self.dt;
        let dt = self.dt;
        let scratch = &mut self.scratch;

        // 1. Advance ground truth — the columnar movement kernel, shard-
        //    parallel, each shard sweeping disjoint slices of the engine /
        //    RNG / position columns and writing its observations into a
        //    disjoint slice of the flat buffer. Each node owns its RNG
        //    state, so per-node trajectories are independent of scheduling.
        self.pool.for_each(
            self.cols
                .movement_shards(SHARD_SIZE)
                .zip(scratch.observations.chunks_mut(SHARD_SIZE)),
            |i, (shard, obs)| shard.advance(i * SHARD_SIZE, time_s, dt, obs),
        );

        rec.span(Phase::Observe, scratch.observations.len() as u64);

        // 2. Filter — sequential: the ADF clusters across all nodes.
        self.policy
            .process_tick(time_s, &scratch.observations, &mut scratch.decisions);
        debug_assert_eq!(scratch.decisions.len(), scratch.observations.len());
        // The filter-conservation monitor needs the split every tick.
        let mut filter_sent = 0u32;
        for decision in &scratch.decisions {
            filter_sent += u32::from(decision.is_sent());
        }
        let suppressed = scratch.decisions.len() as u32 - filter_sent;
        // An update's flight-recorder identity is (node, generation tick):
        // stable across retries and deferrals, unlike the wire seq which
        // advances once per frame on the air.
        let gen_seq = self.tick as u32;
        if recording {
            for ((id, pos), decision) in scratch.observations.iter().zip(&scratch.decisions) {
                rec.event(EventKind::LuGenerated {
                    node: id.raw(),
                    seq: gen_seq,
                    x: pos.x,
                    y: pos.y,
                });
                let probe = self.policy.probe(*id);
                if let Some(p) = probe {
                    if let Some(pattern) = p.pattern {
                        rec.event(EventKind::LuClassified {
                            node: id.raw(),
                            seq: gen_seq,
                            class: match pattern {
                                MobilityPattern::Stop => MobilityClass::Stop,
                                MobilityPattern::Random => MobilityClass::Random,
                                MobilityPattern::Linear => MobilityClass::Linear,
                            },
                            cluster: p.cluster.map_or(-1, |c| c as i32),
                            dth: p.dth.unwrap_or(f64::NAN),
                        });
                    }
                }
                let (displacement, dth) = probe.map_or((f64::NAN, f64::NAN), |p| {
                    (p.displacement.unwrap_or(f64::NAN), p.dth.unwrap_or(f64::NAN))
                });
                rec.event(EventKind::LuDecision {
                    node: id.raw(),
                    seq: gen_seq,
                    sent: decision.is_sent(),
                    displacement,
                    dth,
                });
            }
        }
        rec.span(Phase::Filter, scratch.decisions.len() as u64);

        // 2b. Route transmitted updates through the access network (and the
        //     fault channel, when one is attached), in node order. When a
        //     network is present this phase owns the sequence counters: it
        //     advances them and records the used value in `sent_seq` so
        //     phase 3 can rebuild the identical update. Retry-due nodes
        //     retransmit here even when the filter said nothing new.
        let mut retries = 0u32;
        let mut lost = 0u32;
        let mut late = 0u32;
        let mut on_air = 0u64;
        let mut delivered = 0u32;
        let mut deferred = 0u32;
        let mut no_coverage = 0u32;
        scratch.late_accepted.fill(false);
        let routed = if let Some(net) = self.network.as_mut() {
            // Deferred frames due now reach the brokers before anything
            // sent this tick, so their (older) timestamps stay in order.
            if let Some(ch) = self.channel.as_mut() {
                scratch.late_lus.clear();
                ch.drain_due(self.tick, &mut scratch.late_lus);
                for lu in &scratch.late_lus {
                    let info = self.broker_le.receive(lu);
                    self.broker_raw.receive(lu);
                    if info.outcome == ApplyOutcome::Accepted {
                        // Resets the node's staleness baseline before the
                        // apply phase runs — the staleness monitor needs
                        // to know.
                        scratch.late_accepted[lu.node.index()] = true;
                    }
                    if recording {
                        // A deferred frame keeps its generation-tick
                        // identity: recover it from the timestamp.
                        let seq = (lu.time_s / dt).round() as u32;
                        rec.event(EventKind::LuChannel {
                            node: lu.node.raw(),
                            seq,
                            wire_seq: lu.seq,
                            attempt: 0,
                            fate: LinkFate::ArrivedLate,
                            due_tick: self.tick,
                        });
                        rec.event(EventKind::LuApply {
                            node: lu.node.raw(),
                            seq,
                            outcome: info.outcome,
                            staleness: info.staleness,
                            blend: info.blend,
                        });
                    }
                }
                late = scratch.late_lus.len() as u32;
            }
            for (i, (((id, pos), decision), out)) in scratch
                .observations
                .iter()
                .zip(&scratch.decisions)
                .zip(scratch.link.iter_mut())
                .enumerate()
            {
                let state = &mut self.retry[i];
                let retry_due = state.due_tick <= self.tick;
                if !(matches!(decision, Decision::Sent) || retry_due) {
                    *out = LinkOutcome::Idle;
                    continue;
                }
                let attempt = state.attempt;
                let seq = self.seqs[i];
                self.seqs[i] = seq.wrapping_add(1);
                scratch.sent_seq[i] = seq;
                retries += u32::from(attempt > 0);
                let lu = LocationUpdate::new(*id, time_s, *pos, seq);
                let event = match self.channel.as_mut() {
                    Some(ch) => ch.transmit(net, &lu, attempt, self.tick),
                    None => match net.transmit(&lu) {
                        Ok(gateway) => LinkEvent::Delivered {
                            gateway,
                            duplicate: false,
                        },
                        Err(_) => LinkEvent::Dropped {
                            cause: DropCause::NoCoverage,
                        },
                    },
                };
                on_air += 1;
                let (fate, due) = match &event {
                    LinkEvent::Delivered {
                        duplicate: false, ..
                    } => (LinkFate::Delivered, 0),
                    LinkEvent::Delivered {
                        duplicate: true, ..
                    } => (LinkFate::DeliveredDuplicate, 0),
                    LinkEvent::Deferred { due_tick, .. } => (LinkFate::Deferred, *due_tick),
                    LinkEvent::Dropped {
                        cause: DropCause::NoCoverage,
                    } => (LinkFate::DroppedNoCoverage, 0),
                    LinkEvent::Dropped {
                        cause: DropCause::Fault,
                    } => (LinkFate::DroppedFault, 0),
                    LinkEvent::Dropped {
                        cause: DropCause::Corrupted,
                    } => (LinkFate::DroppedCorrupted, 0),
                };
                match fate {
                    LinkFate::Delivered | LinkFate::DeliveredDuplicate => delivered += 1,
                    LinkFate::Deferred => deferred += 1,
                    LinkFate::DroppedNoCoverage => no_coverage += 1,
                    _ => {}
                }
                if recording {
                    rec.event(EventKind::LuChannel {
                        node: id.raw(),
                        seq: gen_seq,
                        wire_seq: seq,
                        attempt,
                        fate,
                        due_tick: due,
                    });
                }
                *out = match event {
                    LinkEvent::Delivered { duplicate, .. } => {
                        *state = RetryState::IDLE;
                        LinkOutcome::Delivered { duplicate }
                    }
                    LinkEvent::Deferred { .. } => {
                        // In flight: it will arrive on its own, so the
                        // sender does not retransmit, but the broker misses
                        // it this tick.
                        *state = RetryState::IDLE;
                        lost += 1;
                        LinkOutcome::Lost { transmitted: true }
                    }
                    LinkEvent::Dropped {
                        cause: DropCause::NoCoverage,
                    } => {
                        *state = RetryState::IDLE;
                        LinkOutcome::Lost { transmitted: false }
                    }
                    LinkEvent::Dropped { .. } => {
                        lost += 1;
                        *state = match self.retry_policies[i] {
                            Some(policy) if attempt < policy.max_retries => {
                                let next = attempt + 1;
                                let noise = event_noise(
                                    self.channel.as_ref().map_or(0, FaultChannel::seed),
                                    id.raw(),
                                    seq,
                                    next,
                                    SALT_RETRY_JITTER,
                                );
                                RetryState {
                                    attempt: next,
                                    due_tick: self.tick + policy.backoff_ticks(next, noise),
                                }
                            }
                            _ => RetryState::IDLE,
                        };
                        LinkOutcome::Lost { transmitted: true }
                    }
                };
            }
            true
        } else {
            false
        };
        // Per-node apply fates for the invariant monitors: without a
        // network a sent update reaches the broker directly; with one the
        // routing phase just decided every frame's fate.
        if routed {
            for (fate, outcome) in scratch.fates.iter_mut().zip(scratch.link.iter()) {
                *fate = match outcome {
                    LinkOutcome::Idle => NodeFate::Idle,
                    LinkOutcome::Delivered { .. } => NodeFate::Accepted,
                    LinkOutcome::Lost { transmitted: true } => NodeFate::LostInFlight,
                    LinkOutcome::Lost { transmitted: false } => NodeFate::NoCoverage,
                };
            }
        } else {
            for (fate, decision) in scratch.fates.iter_mut().zip(scratch.decisions.iter()) {
                *fate = if decision.is_sent() {
                    NodeFate::Accepted
                } else {
                    NodeFate::Idle
                };
            }
        }
        let link: Option<&[LinkOutcome]> = routed.then_some(&scratch.link);
        rec.span(Phase::Transmit, on_air);

        // 3+4 fused, shard-parallel: apply each decision to both brokers
        // and measure location error against ground truth — the paper's
        // RMSE over all n nodes at time t — from the freshly updated dense
        // slots. The job list is a lazy zip of per-shard slices; results
        // land in the reused `outs` buffer in shard order.
        let jobs = self
            .cols
            .region_kinds()
            .chunks(SHARD_SIZE)
            .zip(scratch.observations.chunks(SHARD_SIZE))
            .zip(scratch.decisions.chunks(SHARD_SIZE))
            .zip(scratch.sent_seq.chunks_mut(SHARD_SIZE))
            .zip(self.seqs.chunks_mut(SHARD_SIZE))
            .zip(self.broker_le.shard_views_iter(SHARD_SIZE))
            .zip(self.broker_raw.shard_views_iter(SHARD_SIZE))
            .enumerate()
            .map(|(i, ((((((kinds, obs), dec), sent_seqs), seqs), le), raw))| ShardJob {
                kinds,
                observations: obs,
                decisions: dec,
                link: link.map(|d| &d[i * SHARD_SIZE..(i * SHARD_SIZE + obs.len())]),
                sent_seqs,
                seqs,
                le,
                raw,
            });
        self.pool.run_into(jobs, &mut scratch.outs, |_, job| {
            Self::run_shard(time_s, recording, job)
        });

        // Shard-ordered reduction: exact for the integer tallies, and a
        // fixed floating-point summation order for the RMSE partials.
        let mut tick_tally = RegionTally::new();
        let mut sent = 0u32;
        let mut stale_nodes = 0u32;
        let mut all_le = Rmse::new();
        let mut all_raw = Rmse::new();
        let mut road_le = Rmse::new();
        let mut road_raw = Rmse::new();
        let mut bld_le = Rmse::new();
        let mut bld_raw = Rmse::new();
        let mut err_le = HistogramDelta::new(error_bucket_spec());
        let mut err_raw = HistogramDelta::new(error_bucket_spec());
        for out in &scratch.outs {
            sent += out.sent;
            stale_nodes += out.stale;
            tick_tally.merge(&out.tally);
            all_le.merge(&out.all_le);
            all_raw.merge(&out.all_raw);
            road_le.merge(&out.road_le);
            road_raw.merge(&out.road_raw);
            bld_le.merge(&out.bld_le);
            bld_raw.merge(&out.bld_raw);
            if recording {
                err_le.merge(&out.err_le);
                err_raw.merge(&out.err_raw);
                // Drain the shard's flight samples in shard order, so the
                // apply/error event stream is identical at any thread
                // count.
                for s in &out.flight {
                    rec.event(EventKind::LuApply {
                        node: s.node,
                        seq: gen_seq,
                        outcome: s.apply.outcome,
                        staleness: s.apply.staleness,
                        blend: s.apply.blend,
                    });
                    rec.event(EventKind::LuError {
                        node: s.node,
                        seq: gen_seq,
                        err_le: s.err_le,
                        err_raw: s.err_raw,
                    });
                }
            }
            self.broker_le.apply_delta(&out.le_delta);
            self.broker_raw.apply_delta(&out.raw_delta);
        }
        self.cumulative.merge(&tick_tally);
        rec.span(Phase::Estimate, scratch.observations.len() as u64);

        if recording {
            rec.histogram_merge("sim.err_with_le", &err_le);
            rec.histogram_merge("sim.err_without_le", &err_raw);

            rec.counter_add("sim.ticks", 1);
            rec.counter_add("sim.observed", u64::from(scratch.observations.len() as u32));
            rec.counter_add("sim.sent", u64::from(sent));
            rec.counter_add("sim.retries", u64::from(retries));
            rec.counter_add("sim.lost", u64::from(lost));
            rec.counter_add("sim.late", u64::from(late));
            rec.counter_add("sim.filter_sent", u64::from(filter_sent));
            rec.counter_add("sim.suppressed", u64::from(suppressed));
            rec.counter_add("sim.delivered", u64::from(if routed { delivered } else { filter_sent }));
            rec.counter_add("sim.deferred", u64::from(deferred));
            rec.counter_add("sim.no_coverage", u64::from(no_coverage));
            rec.counter_add("sim.road.sent", tick_tally.road.sent);
            rec.counter_add("sim.road.observed", tick_tally.road.observed);
            rec.counter_add("sim.building.sent", tick_tally.building.sent);
            rec.counter_add("sim.building.observed", tick_tally.building.observed);

            rec.gauge_set("sim.time_s", time_s);
            rec.gauge_set("sim.stale_nodes", f64::from(stale_nodes));
            rec.gauge_set("sim.rmse_with_le", all_le.value());
            rec.gauge_set("sim.rmse_without_le", all_raw.value());
            rec.gauge_set("sim.road.rmse_with_le", road_le.value());
            rec.gauge_set("sim.road.rmse_without_le", road_raw.value());
            rec.gauge_set("sim.building.rmse_with_le", bld_le.value());
            rec.gauge_set("sim.building.rmse_without_le", bld_raw.value());

            rec.gauge_set("broker.le.received", self.broker_le.received_count() as f64);
            rec.gauge_set("broker.le.estimated", self.broker_le.estimated_count() as f64);
            rec.gauge_set("broker.le.lost", self.broker_le.lost_count() as f64);
            rec.gauge_set("broker.le.rejected", self.broker_le.rejected_count() as f64);
            rec.gauge_set("broker.raw.received", self.broker_raw.received_count() as f64);
            rec.gauge_set(
                "broker.raw.estimated",
                self.broker_raw.estimated_count() as f64,
            );
            rec.gauge_set("broker.raw.lost", self.broker_raw.lost_count() as f64);
            rec.gauge_set("broker.raw.rejected", self.broker_raw.rejected_count() as f64);
            if let Some(net) = &self.network {
                net.record_telemetry(rec);
            }
            if let Some(ch) = &self.channel {
                ch.record_telemetry(rec);
            }
            if stale_nodes != self.prev_stale {
                rec.event(EventKind::StalenessTransition {
                    stale_nodes,
                    previous: self.prev_stale,
                });
            }
        }
        self.prev_stale = stale_nodes;

        // Online invariant monitors — every tick, recording or not. The
        // per-node staleness counters are read back from the with-LE
        // broker after the apply deltas landed.
        for (i, slot) in scratch.staleness.iter_mut().enumerate() {
            *slot = self.broker_le.staleness(MnId::new(i as u32));
        }
        let vitals = TickVitals {
            tick: self.tick,
            generated: scratch.observations.len() as u64,
            filter_sent: u64::from(filter_sent),
            suppressed: u64::from(suppressed),
            // Without a network a sent update reaches the broker
            // directly: one "frame" per send, all delivered.
            on_air: if routed { on_air } else { u64::from(filter_sent) },
            delivered: u64::from(if routed { delivered } else { filter_sent }),
            lost: u64::from(lost),
            no_coverage: u64::from(no_coverage),
            deferred: u64::from(deferred),
            arrived_late: u64::from(late),
            in_flight: self.channel.as_ref().map_or(0, |ch| ch.in_flight() as u64),
            stale_nodes,
            node_fates: &scratch.fates,
            wire_seqs: &scratch.sent_seq,
            staleness: &scratch.staleness,
            late_accepted: &scratch.late_accepted,
        };
        let found = self.monitors.check_tick(&vitals);
        if !found.is_empty() {
            if recording {
                rec.counter_add("sim.invariant_violations", found.len() as u64);
                for v in found {
                    rec.event(EventKind::InvariantViolation {
                        monitor: v.monitor,
                        node: v.node.unwrap_or(u32::MAX),
                        expected: v.expected,
                        actual: v.actual,
                    });
                }
            }
            let room = VIOLATION_LOG_CAP.saturating_sub(self.violations.len());
            self.violations.extend(found.iter().take(room).copied());
        }

        TickStats {
            time_s,
            sent,
            observed: scratch.observations.len() as u32,
            retries,
            lost,
            late,
            stale_nodes,
            region: tick_tally,
            rmse_with_le: all_le.value(),
            rmse_without_le: all_raw.value(),
            road_rmse_with_le: road_le.value(),
            road_rmse_without_le: road_raw.value(),
            building_rmse_with_le: bld_le.value(),
            building_rmse_without_le: bld_raw.value(),
        }
    }

    /// Applies one shard's decisions to both broker shards and accumulates
    /// the shard's tally and RMSE partials (plus, when `record` is set, the
    /// per-node location-error histograms).
    fn run_shard(time_s: f64, record: bool, mut job: ShardJob<'_>) -> ShardOut {
        let mut out = ShardOut {
            sent: 0,
            stale: 0,
            tally: RegionTally::new(),
            all_le: Rmse::new(),
            all_raw: Rmse::new(),
            road_le: Rmse::new(),
            road_raw: Rmse::new(),
            bld_le: Rmse::new(),
            bld_raw: Rmse::new(),
            le_delta: BrokerDelta::default(),
            raw_delta: BrokerDelta::default(),
            err_le: HistogramDelta::new(error_bucket_spec()),
            err_raw: HistogramDelta::new(error_bucket_spec()),
            flight: Vec::new(),
        };
        for (i, (id, pos)) in job.observations.iter().enumerate() {
            let kind = job.kinds[i];
            let apply = match job.link {
                // No network: a sent update reaches the brokers directly,
                // and this phase owns the sequence counters (writing the
                // used value back for the seq-monotonicity monitor).
                None => match job.decisions[i] {
                    Decision::Sent => {
                        let seq = &mut job.seqs[i];
                        let lu = LocationUpdate::new(*id, time_s, *pos, *seq);
                        job.sent_seqs[i] = *seq;
                        *seq = seq.wrapping_add(1);
                        out.sent += 1;
                        out.tally.record(kind, true);
                        let info = job.le.receive(&lu);
                        job.raw.receive(&lu);
                        info
                    }
                    Decision::Filtered => {
                        out.tally.record(kind, false);
                        let info = job.le.note_filtered(*id, time_s);
                        job.raw.note_filtered(*id, time_s);
                        info
                    }
                },
                // With a network the routing phase already decided every
                // frame's fate; apply it to both brokers.
                Some(link) => match link[i] {
                    LinkOutcome::Idle => {
                        out.tally.record(kind, false);
                        let info = job.le.note_filtered(*id, time_s);
                        job.raw.note_filtered(*id, time_s);
                        info
                    }
                    LinkOutcome::Delivered { duplicate } => {
                        let lu = LocationUpdate::new(*id, time_s, *pos, job.sent_seqs[i]);
                        out.sent += 1;
                        out.tally.record(kind, true);
                        let info = job.le.receive(&lu);
                        job.raw.receive(&lu);
                        if duplicate {
                            // The second copy is byte-identical; the broker
                            // rejects it and counts the rejection.
                            job.le.receive(&lu);
                            job.raw.receive(&lu);
                        }
                        info
                    }
                    LinkOutcome::Lost { transmitted: true } => {
                        // The frame consumed airtime but never arrived: the
                        // broker expected it and degrades gracefully.
                        out.sent += 1;
                        out.tally.record(kind, true);
                        let info = job.le.note_lost(*id, time_s);
                        job.raw.note_lost(*id, time_s);
                        info
                    }
                    LinkOutcome::Lost { transmitted: false } => {
                        // Out of coverage: the frame never reached the air;
                        // the broker estimates, same as a filtered update.
                        out.tally.record(kind, false);
                        let info = job.le.note_filtered(*id, time_s);
                        job.raw.note_filtered(*id, time_s);
                        info
                    }
                },
            };
            // Measure against ground truth via direct dense-slot reads.
            let err_le = job
                .le
                .location(*id)
                .map_or(0.0, |r| r.position.distance_to(*pos));
            let err_raw = job
                .raw
                .location(*id)
                .map_or(0.0, |r| r.position.distance_to(*pos));
            out.all_le.push(err_le);
            out.all_raw.push(err_raw);
            if record {
                out.err_le.record(err_le);
                out.err_raw.record(err_raw);
                out.flight.push(FlightSample {
                    node: id.raw(),
                    apply,
                    err_le,
                    err_raw,
                });
            }
            match kind {
                RegionKind::Road => {
                    out.road_le.push(err_le);
                    out.road_raw.push(err_raw);
                }
                RegionKind::Building => {
                    out.bld_le.push(err_le);
                    out.bld_raw.push(err_raw);
                }
            }
        }
        out.stale = job.le.stale_count();
        out.le_delta = job.le.into_delta();
        out.raw_delta = job.raw.into_delta();
        out
    }

    /// Runs `ticks` steps, collecting every tick's statistics.
    pub fn run(&mut self, ticks: u64) -> Vec<TickStats> {
        (0..ticks).map(|_| self.step()).collect()
    }

    /// Runs `ticks` steps like [`MobileGridSim::run`], streaming telemetry
    /// into `rec` (see [`MobileGridSim::step_recorded`]).
    pub fn run_recorded(&mut self, ticks: u64, rec: &mut dyn Recorder) -> Vec<TickStats> {
        (0..ticks).map(|_| self.step_recorded(rec)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveDistanceFilter, AdfConfig, IdealPolicy};
    use mobigrid_campus::RegionId;
    use mobigrid_geo::{Point, Polyline};
    use mobigrid_mobility::{LoopMode, MobilityPattern, NodeType, PathFollower, StopModel};
    use mobigrid_wireless::MnId;

    fn walker(id: u32, speed: f64) -> MobileNode {
        let y = f64::from(id) * 50.0;
        let path = Polyline::new(vec![Point::new(0.0, y), Point::new(1000.0, y)]).unwrap();
        MobileNode::new(
            MnId::new(id),
            RegionId::from_index(6), // a road
            RegionKind::Road,
            NodeType::Human,
            MobilityPattern::Linear,
            PathFollower::new(path, speed, LoopMode::PingPong),
            u64::from(id),
        )
    }

    fn parked(id: u32) -> MobileNode {
        MobileNode::new(
            MnId::new(id),
            RegionId::from_index(0),
            RegionKind::Building,
            NodeType::Human,
            MobilityPattern::Stop,
            StopModel::new(Point::new(500.0, 500.0)),
            u64::from(id),
        )
    }

    #[test]
    fn ideal_policy_sends_every_node_every_tick() {
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1)])
            .policy(IdealPolicy::new())
            .build()
            .unwrap();
        for _ in 0..10 {
            let s = sim.step();
            assert_eq!(s.sent, 2);
            assert_eq!(s.observed, 2);
            // Broker is always current: zero error.
            assert_eq!(s.rmse_without_le, 0.0);
            assert_eq!(s.rmse_with_le, 0.0);
        }
        assert_eq!(sim.cumulative_tally().total_sent(), 20);
    }

    #[test]
    fn adf_reduces_traffic_and_le_reduces_error() {
        let nodes = vec![walker(0, 1.5), walker(1, 1.6), walker(2, 8.0), parked(3)];
        let mut sim = SimBuilder::new()
            .nodes(nodes)
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.25)).unwrap())
            .build()
            .unwrap();
        let stats = sim.run(300);

        let total_sent: u64 = stats.iter().map(|s| u64::from(s.sent)).sum();
        let total_obs: u64 = stats.iter().map(|s| u64::from(s.observed)).sum();
        assert!(total_sent < total_obs, "no reduction at all");
        assert!(
            (total_sent as f64) < 0.9 * total_obs as f64,
            "reduction too weak: {total_sent}/{total_obs}"
        );

        // Post-warmup, LE error should beat the stale-last-position error
        // on average (the walkers move predictably).
        let tail = &stats[30..];
        let mean_le: f64 = tail.iter().map(|s| s.rmse_with_le).sum::<f64>() / tail.len() as f64;
        let mean_raw: f64 = tail.iter().map(|s| s.rmse_without_le).sum::<f64>() / tail.len() as f64;
        assert!(
            mean_le < mean_raw,
            "LE did not help: with={mean_le} without={mean_raw}"
        );
    }

    #[test]
    fn accounting_conserves_observations() {
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1), walker(2, 5.0)])
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
            .build()
            .unwrap();
        let stats = sim.run(100);
        for s in &stats {
            assert_eq!(
                s.region.total_observed(),
                u64::from(s.observed),
                "per-kind tallies must cover every observation"
            );
        }
        let tally = sim.cumulative_tally();
        assert_eq!(tally.total_observed(), 300);
        let total_sent: u64 = stats.iter().map(|s| u64::from(s.sent)).sum();
        assert_eq!(tally.total_sent(), total_sent);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        assert!(SimBuilder::new().build().is_err()); // no policy
        assert!(SimBuilder::new()
            .policy(IdealPolicy::new())
            .build()
            .is_err()); // no nodes
                        // Non-dense ids.
        let err = SimBuilder::new()
            .nodes(vec![walker(5, 1.0)])
            .policy(IdealPolicy::new())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("dense"));
        // Bad dt.
        let err = SimBuilder::new()
            .nodes(vec![walker(0, 1.0)])
            .policy(IdealPolicy::new())
            .dt(0.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("dt"));
        // RuntimeOptions pass through validation unclamped.
        let err = SimBuilder::new()
            .nodes(vec![walker(0, 1.0)])
            .policy(IdealPolicy::new())
            .runtime(RuntimeOptions {
                threads: 0,
                ..RuntimeOptions::default()
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("threads"), "got: {err}");
    }

    #[test]
    fn network_accounting_matches_sent_updates() {
        use mobigrid_wireless::{AccessNetwork, Gateway, GatewayKind};
        let net = AccessNetwork::new(vec![Gateway::new(
            0,
            GatewayKind::BaseStation,
            Point::new(500.0, 250.0),
            10_000.0,
        )]);
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1)])
            .policy(IdealPolicy::new())
            .network(net)
            .build()
            .unwrap();
        sim.run(50);
        let meter = sim.network().unwrap().meter();
        assert_eq!(meter.messages(), 100);
        assert_eq!(meter.bytes(), 100 * LocationUpdate::WIRE_SIZE as u64);
    }

    /// Satellite regression for the RMSE phase's direct dense-slot reads:
    /// a rand-free workload whose broker error is computable in closed
    /// form, pinned tick by tick. One walker at 2 m/s and one parked node
    /// under a general DF with factor 4: after the first tick the global
    /// DTH settles at `4.0 * mean(2.0, 0.0) = 4.0 m`, permanently above
    /// the walker's 2 m/tick displacement, so nothing transmits again and
    /// the raw broker error grows by exactly 2 m per tick.
    #[test]
    fn rmse_phase_matches_closed_form_on_deterministic_workload() {
        use crate::GeneralDistanceFilter;
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1)])
            .policy(GeneralDistanceFilter::new(4.0, 0))
            .build()
            .unwrap();

        let first = sim.step();
        assert_eq!(first.sent, 2, "first observations always transmit");
        assert_eq!(first.rmse_without_le, 0.0);
        assert_eq!(first.rmse_with_le, 0.0);

        for tick in 2..=20u32 {
            let s = sim.step();
            assert_eq!(s.sent, 0, "tick {tick}: DTH must filter both nodes");
            // Walker error: transmitted at x=2, now at x=2*tick; parked
            // node error stays zero. Mirror the accumulator's operation
            // order exactly (square, mean over 2 nodes, root).
            let d = 2.0 * f64::from(tick - 1);
            let expected = (d * d / 2.0).sqrt();
            assert_eq!(
                s.rmse_without_le, expected,
                "tick {tick}: raw RMSE must read the last transmitted slot"
            );
            assert!(
                s.rmse_with_le.is_finite() && s.rmse_with_le >= 0.0,
                "tick {tick}: estimated RMSE must be a valid distance"
            );
        }
    }

    fn wide_net() -> mobigrid_wireless::AccessNetwork {
        use mobigrid_wireless::{AccessNetwork, Gateway, GatewayKind};
        AccessNetwork::new(vec![Gateway::new(
            0,
            GatewayKind::BaseStation,
            Point::new(500.0, 250.0),
            10_000.0,
        )])
    }

    #[test]
    fn faults_require_a_network() {
        let err = SimBuilder::new()
            .nodes(vec![walker(0, 2.0)])
            .policy(IdealPolicy::new())
            .faults(FaultPlan::lossless(), 9)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("network"), "got: {err}");
    }

    #[test]
    fn lossless_channel_is_invisible() {
        let build = |fault: bool| {
            let b = SimBuilder::new()
                .nodes(vec![walker(0, 2.0), walker(1, 3.0), parked(2)])
                .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
                .network(wide_net());
            if fault { b.faults(FaultPlan::lossless(), 1234) } else { b }
                .build()
                .unwrap()
        };
        let plain = build(false).run(120);
        let channeled = build(true).run(120);
        assert_eq!(plain, channeled, "a lossless channel changed the results");
        for s in &plain {
            assert_eq!((s.retries, s.lost, s.late, s.stale_nodes), (0, 0, 0, 0));
        }
    }

    #[test]
    fn drops_degrade_and_retries_fire() {
        use mobigrid_wireless::RetryPolicy;
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::lossless()
        };
        let nodes = vec![
            walker(0, 2.0).with_retry_policy(RetryPolicy::default()),
            parked(1).with_retry_policy(RetryPolicy::default()),
        ];
        let mut sim = SimBuilder::new()
            .nodes(nodes)
            .policy(IdealPolicy::new())
            .network(wide_net())
            .faults(plan, 7)
            .build()
            .unwrap();
        let stats = sim.run(30);

        let total_sent: u64 = stats.iter().map(|s| u64::from(s.sent)).sum();
        let total_lost: u64 = stats.iter().map(|s| u64::from(s.lost)).sum();
        let total_retries: u64 = stats.iter().map(|s| u64::from(s.retries)).sum();
        // Every frame that reached the air was lost.
        assert_eq!(total_sent, total_lost);
        // The ideal policy sends every tick, so retransmissions stack on
        // top of the per-tick sends.
        assert!(total_retries > 0, "retry policy never fired");
        assert_eq!(
            sim.network().unwrap().meter().messages(),
            total_sent,
            "the meter must count every frame on the air, lost or not"
        );
        // Both nodes have been silent the whole run: permanently stale.
        assert_eq!(stats.last().unwrap().stale_nodes, 2);
        assert_eq!(sim.broker_with_le().received_count(), 0);
        assert_eq!(
            sim.broker_with_le().lost_count(),
            sim.broker_without_le().lost_count()
        );
        assert_eq!(sim.fault_channel().unwrap().stats().dropped, total_sent);
    }

    #[test]
    fn deferred_frames_arrive_late() {
        let plan = FaultPlan {
            delay_rate: 1.0,
            max_delay_ticks: 3,
            ..FaultPlan::lossless()
        };
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1)])
            .policy(IdealPolicy::new())
            .network(wide_net())
            .faults(plan, 21)
            .build()
            .unwrap();
        let stats = sim.run(40);
        let total_lost: u64 = stats.iter().map(|s| u64::from(s.lost)).sum();
        let total_late: u64 = stats.iter().map(|s| u64::from(s.late)).sum();
        assert!(total_late > 0, "no deferred frame ever came due");
        // Every loss was a deferral; all but the still-in-flight tail
        // arrived late.
        let in_flight = sim.fault_channel().unwrap().in_flight() as u64;
        assert_eq!(total_late + in_flight, total_lost);
        // Late frames carry older timestamps; the broker accepts the ones
        // still in order and rejects the rest — it never goes backwards.
        assert!(sim.broker_with_le().received_count() > 0);
    }

    #[test]
    fn duplicates_are_rejected_not_double_counted() {
        let plan = FaultPlan {
            duplicate_rate: 1.0,
            ..FaultPlan::lossless()
        };
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0)])
            .policy(IdealPolicy::new())
            .network(wide_net())
            .faults(plan, 3)
            .build()
            .unwrap();
        let stats = sim.run(20);
        let total_sent: u64 = stats.iter().map(|s| u64::from(s.sent)).sum();
        assert_eq!(total_sent, 20, "duplicates must not inflate sent");
        // Each tick delivered one original (accepted) and one copy
        // (rejected by the broker's dedup).
        assert_eq!(sim.broker_with_le().received_count(), 20);
        assert_eq!(sim.broker_with_le().rejected_count(), 20);
        assert_eq!(sim.fault_channel().unwrap().stats().duplicated, 20);
    }

    /// The fault stream must be as scheduling-blind as the rest of the
    /// pipeline: a faulty 150-node run produces bit-identical tick
    /// statistics on one worker thread and on four.
    #[test]
    fn thread_count_does_not_change_faulty_tick_stats() {
        use mobigrid_wireless::RetryPolicy;
        let plan = FaultPlan {
            drop_rate: 0.15,
            corrupt_rate: 0.05,
            delay_rate: 0.1,
            max_delay_ticks: 4,
            duplicate_rate: 0.05,
            flaps: Vec::new(),
        };
        let build = |threads: usize| {
            let nodes: Vec<MobileNode> = (0..150u32)
                .map(|i| {
                    let n = if i % 4 == 3 {
                        parked(i)
                    } else {
                        walker(i, 1.0 + f64::from(i % 7))
                    };
                    n.with_retry_policy(RetryPolicy::default())
                })
                .collect();
            SimBuilder::new()
                .nodes(nodes)
                .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
                .network(wide_net())
                .faults(plan.clone(), 99)
                .threads(threads)
                .build()
                .unwrap()
        };
        let a = build(1).run(100);
        let b = build(4).run(100);
        assert_eq!(a, b, "thread count leaked into the fault stream");
        let faults: u64 = a
            .iter()
            .map(|s| u64::from(s.lost) + u64::from(s.late) + u64::from(s.retries))
            .sum();
        assert!(faults > 0, "the fault plan injected nothing");
    }

    /// A recorded run must mirror [`TickStats`] exactly, and the recorded
    /// telemetry — counters, histograms, events — must be bit-identical at
    /// every thread count, same as the stats themselves.
    #[test]
    fn recorded_telemetry_matches_tick_stats_and_thread_count() {
        use mobigrid_telemetry::MemoryRecorder;
        let build = |threads: usize| {
            let nodes: Vec<MobileNode> = (0..150u32)
                .map(|i| {
                    if i % 4 == 3 {
                        parked(i)
                    } else {
                        walker(i, 1.0 + f64::from(i % 7))
                    }
                })
                .collect();
            SimBuilder::new()
                .nodes(nodes)
                .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
                .network(wide_net())
                .threads(threads)
                .build()
                .unwrap()
        };
        let mut exports = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut sim = build(threads);
            let mut rec = MemoryRecorder::new();
            let stats = sim.run_recorded(60, &mut rec);
            let sent: u64 = stats.iter().map(|s| u64::from(s.sent)).sum();
            let observed: u64 = stats.iter().map(|s| u64::from(s.observed)).sum();
            assert_eq!(rec.counter("sim.ticks"), 60);
            assert_eq!(rec.counter("sim.sent"), sent);
            assert_eq!(rec.counter("sim.observed"), observed);
            assert_eq!(
                rec.counter("sim.road.sent") + rec.counter("sim.building.sent"),
                sent
            );
            let hist = rec.histogram("sim.err_with_le").expect("histogram recorded");
            assert_eq!(hist.count(), observed, "one error sample per observation");
            assert!(rec.events().count() > 0, "filter decisions must be recorded");
            exports.push(rec.to_jsonl());
        }
        assert_eq!(exports[0], exports[1], "2 threads changed the telemetry");
        assert_eq!(exports[0], exports[2], "4 threads changed the telemetry");
    }

    /// The online invariant battery must stay silent across every
    /// configuration the pipeline supports: no network, a clean network,
    /// and a faulty channel with retries, deferrals and duplicates.
    #[test]
    fn invariant_monitors_stay_clean_across_configurations() {
        use mobigrid_wireless::RetryPolicy;
        // No network.
        let mut plain = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), walker(1, 5.0), parked(2)])
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
            .build()
            .unwrap();
        plain.run(200);
        assert_eq!(plain.invariant_violations(), &[], "no-network run");

        // Clean network.
        let mut clean = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1)])
            .policy(IdealPolicy::new())
            .network(wide_net())
            .build()
            .unwrap();
        clean.run(200);
        assert_eq!(clean.invariant_violations(), &[], "clean-network run");

        // Every fault class at once, with retries.
        let plan = FaultPlan {
            drop_rate: 0.2,
            corrupt_rate: 0.05,
            delay_rate: 0.15,
            max_delay_ticks: 4,
            duplicate_rate: 0.1,
            flaps: Vec::new(),
        };
        let nodes: Vec<MobileNode> = (0..70u32)
            .map(|i| {
                let n = if i % 3 == 2 {
                    parked(i)
                } else {
                    walker(i, 1.0 + f64::from(i % 5))
                };
                n.with_retry_policy(RetryPolicy::default())
            })
            .collect();
        let mut faulty = SimBuilder::new()
            .nodes(nodes)
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
            .network(wide_net())
            .faults(plan, 42)
            .threads(2)
            .build()
            .unwrap();
        let stats = faulty.run(150);
        let faults: u64 = stats
            .iter()
            .map(|s| u64::from(s.lost) + u64::from(s.late) + u64::from(s.retries))
            .sum();
        assert!(faults > 0, "the fault plan injected nothing");
        assert_eq!(faulty.invariant_violations(), &[], "faulty run");
    }

    /// A recorded tick must link every update's lifecycle through its
    /// stable `(node, generation-tick)` identity: generated → decision →
    /// channel fate → broker apply → error sample.
    #[test]
    fn flight_recorder_links_the_causal_chain() {
        use mobigrid_telemetry::MemoryRecorder;
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1)])
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
            .network(wide_net())
            .build()
            .unwrap();
        let mut rec = MemoryRecorder::with_capacity(4096, 65_536);
        sim.run_recorded(5, &mut rec);

        for node in 0..2u32 {
            for tick in 1..=5u32 {
                let mut generated = 0;
                let mut decisions = 0;
                let mut sent = false;
                let mut channel = 0;
                let mut applies = 0;
                let mut errors = 0;
                for e in rec.events() {
                    match e.kind {
                        EventKind::LuGenerated { node: n, seq, .. } if n == node && seq == tick => {
                            generated += 1;
                        }
                        EventKind::LuDecision { node: n, seq, sent: s, .. }
                            if n == node && seq == tick =>
                        {
                            decisions += 1;
                            sent = s;
                        }
                        EventKind::LuChannel { node: n, seq, .. } if n == node && seq == tick => {
                            channel += 1;
                        }
                        EventKind::LuApply { node: n, seq, .. } if n == node && seq == tick => {
                            applies += 1;
                        }
                        EventKind::LuError { node: n, seq, .. } if n == node && seq == tick => {
                            errors += 1;
                        }
                        _ => {}
                    }
                }
                assert_eq!(generated, 1, "node {node} tick {tick}: one generation");
                assert_eq!(decisions, 1, "node {node} tick {tick}: one decision");
                assert_eq!(
                    channel,
                    usize::from(sent),
                    "node {node} tick {tick}: sent updates get a channel fate"
                );
                assert_eq!(applies, 1, "node {node} tick {tick}: one broker apply");
                assert_eq!(errors, 1, "node {node} tick {tick}: one error sample");
            }
        }
        // The adaptive policy classifies, so classification events exist.
        assert!(
            rec.events()
                .any(|e| matches!(e.kind, EventKind::LuClassified { .. })),
            "ADF must emit classification events"
        );
        // Transmitted wire seqs advance by one per frame on the air.
        let mut seqs = Vec::new();
        for e in rec.events() {
            if let EventKind::LuChannel { node: 0, wire_seq, .. } = e.kind {
                seqs.push(wire_seq);
            }
        }
        for w in seqs.windows(2) {
            assert_eq!(w[1], w[0] + 1, "wire seqs must be gapless: {seqs:?}");
        }
    }

    /// The sharded executor must be invisible in the results: a 150-node
    /// population (three shards) produces bit-identical tick statistics on
    /// one worker thread and on four.
    #[test]
    fn thread_count_does_not_change_tick_stats() {
        let build = |threads: usize| {
            let nodes: Vec<MobileNode> = (0..150u32)
                .map(|i| {
                    if i % 4 == 3 {
                        parked(i)
                    } else {
                        walker(i, 1.0 + f64::from(i % 7))
                    }
                })
                .collect();
            SimBuilder::new()
                .nodes(nodes)
                .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
                .threads(threads)
                .build()
                .unwrap()
        };
        let mut serial = build(1);
        let mut parallel = build(4);
        assert_eq!(serial.threads(), 1);
        assert_eq!(parallel.threads(), 4);
        let a = serial.run(100);
        let b = parallel.run(100);
        assert_eq!(a, b, "thread count leaked into the simulation results");
    }
}
