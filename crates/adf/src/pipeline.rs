use mobigrid_campus::RegionKind;
use mobigrid_sim::stats::Rmse;
use mobigrid_wireless::{AccessNetwork, LocationUpdate};

use crate::{Decision, EstimatorKind, FilterPolicy, GridBroker, MobileNode, RegionTally};

/// Everything the experiments need from one simulation tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickStats {
    /// Simulation time at the end of the tick, in seconds.
    pub time_s: f64,
    /// Location updates transmitted this tick (the Figure-4 series).
    pub sent: u32,
    /// Location updates observed (transmitted + filtered) this tick.
    pub observed: u32,
    /// Per-region-kind tallies for this tick (Figure 6).
    pub region: RegionTally,
    /// RMSE of the broker *with* the location estimator (Figure 7).
    pub rmse_with_le: f64,
    /// RMSE of the broker *without* the estimator (Figure 7).
    pub rmse_without_le: f64,
    /// Road-only RMSE with the estimator (Figure 9).
    pub road_rmse_with_le: f64,
    /// Road-only RMSE without the estimator (Figure 8).
    pub road_rmse_without_le: f64,
    /// Building-only RMSE with the estimator (Figure 9).
    pub building_rmse_with_le: f64,
    /// Building-only RMSE without the estimator (Figure 8).
    pub building_rmse_without_le: f64,
}

/// Builder for [`MobileGridSim`].
///
/// # Examples
///
/// See [`MobileGridSim`].
pub struct SimBuilder {
    nodes: Vec<MobileNode>,
    policy: Option<Box<dyn FilterPolicy + Send>>,
    estimator: EstimatorKind,
    network: Option<AccessNetwork>,
    dt: f64,
}

impl Default for SimBuilder {
    fn default() -> Self {
        SimBuilder {
            nodes: Vec::new(),
            policy: None,
            estimator: EstimatorKind::Brown { alpha: 0.5 },
            network: None,
            dt: 1.0,
        }
    }
}

impl SimBuilder {
    /// Starts an empty builder (1 s ticks, Brown α = 0.5 estimator).
    #[must_use]
    pub fn new() -> Self {
        SimBuilder::default()
    }

    /// Sets the node population. Node ids must be the dense range `0..n`.
    #[must_use]
    pub fn nodes(mut self, nodes: Vec<MobileNode>) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the filter policy under test.
    #[must_use]
    pub fn policy(mut self, policy: impl FilterPolicy + Send + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Sets the "with LE" broker's estimator (the "without LE" broker always
    /// runs [`EstimatorKind::WithoutLe`]).
    #[must_use]
    pub fn estimator(mut self, kind: EstimatorKind) -> Self {
        self.estimator = kind;
        self
    }

    /// Attaches an access network for traffic accounting. Updates sent from
    /// outside any gateway's coverage are counted as dropped and do not
    /// reach the brokers.
    #[must_use]
    pub fn network(mut self, network: AccessNetwork) -> Self {
        self.network = Some(network);
        self
    }

    /// Overrides the tick length in seconds (default 1.0, as in the paper).
    #[must_use]
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Assembles the simulation.
    ///
    /// # Errors
    ///
    /// Reports missing policy, empty/non-dense node population, invalid
    /// estimator parameters or a non-positive tick length.
    pub fn build(self) -> Result<MobileGridSim, String> {
        let policy = self.policy.ok_or("a filter policy is required")?;
        if self.nodes.is_empty() {
            return Err("at least one node is required".to_string());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id().index() != i {
                return Err(format!(
                    "node ids must be dense 0..n: found {} at position {i}",
                    n.id()
                ));
            }
        }
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(format!("dt must be positive, got {}", self.dt));
        }
        let mut broker_le = GridBroker::new(self.estimator)?;
        let mut broker_raw = GridBroker::new(EstimatorKind::WithoutLe)?;
        for node in &self.nodes {
            if let Some(anchor) = node.home_anchor() {
                broker_le.set_home_anchor(node.id(), anchor);
                broker_raw.set_home_anchor(node.id(), anchor);
            }
        }
        let seqs = vec![0u32; self.nodes.len()];
        Ok(MobileGridSim {
            nodes: self.nodes,
            policy,
            broker_le,
            broker_raw,
            network: self.network,
            dt: self.dt,
            tick: 0,
            seqs,
            cumulative: RegionTally::new(),
        })
    }
}

/// The full evaluation pipeline: nodes → filter policy → (optional) access
/// network → twin brokers (with and without the location estimator).
///
/// Each [`MobileGridSim::step`] advances every node one tick, filters the
/// resulting location updates, feeds both brokers identically, and measures
/// each broker's location error against ground truth — producing exactly the
/// quantities plotted in the paper's Figures 4–9.
///
/// # Examples
///
/// ```
/// use mobigrid_adf::{IdealPolicy, MobileNode, SimBuilder};
/// use mobigrid_campus::{RegionId, RegionKind};
/// use mobigrid_geo::Point;
/// use mobigrid_mobility::{MobilityPattern, NodeType, StopModel};
/// use mobigrid_wireless::MnId;
/// use rand::SeedableRng;
///
/// let node = MobileNode::new(
///     MnId::new(0),
///     RegionId::from_index(0),
///     RegionKind::Building,
///     NodeType::Human,
///     MobilityPattern::Stop,
///     Box::new(StopModel::new(Point::new(1.0, 1.0))),
///     rand::rngs::StdRng::seed_from_u64(0),
/// );
/// let mut sim = SimBuilder::new()
///     .nodes(vec![node])
///     .policy(IdealPolicy::new())
///     .build()
///     .unwrap();
/// let stats = sim.step();
/// assert_eq!(stats.sent, 1);
/// assert_eq!(stats.rmse_without_le, 0.0); // ideal policy: no error
/// ```
pub struct MobileGridSim {
    nodes: Vec<MobileNode>,
    policy: Box<dyn FilterPolicy + Send>,
    broker_le: GridBroker,
    broker_raw: GridBroker,
    network: Option<AccessNetwork>,
    dt: f64,
    tick: u64,
    seqs: Vec<u32>,
    cumulative: RegionTally,
}

impl std::fmt::Debug for MobileGridSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobileGridSim")
            .field("nodes", &self.nodes.len())
            .field("policy", &self.policy.name())
            .field("tick", &self.tick)
            .finish()
    }
}

impl MobileGridSim {
    /// Starts building a simulation.
    #[must_use]
    pub fn builder() -> SimBuilder {
        SimBuilder::new()
    }

    /// The node population.
    #[must_use]
    pub fn nodes(&self) -> &[MobileNode] {
        &self.nodes
    }

    /// The filter policy under test.
    #[must_use]
    pub fn policy(&self) -> &(dyn FilterPolicy + Send) {
        self.policy.as_ref()
    }

    /// The broker running the location estimator.
    #[must_use]
    pub fn broker_with_le(&self) -> &GridBroker {
        &self.broker_le
    }

    /// The broker without estimation (last-received only).
    #[must_use]
    pub fn broker_without_le(&self) -> &GridBroker {
        &self.broker_raw
    }

    /// The access network, when attached.
    #[must_use]
    pub fn network(&self) -> Option<&AccessNetwork> {
        self.network.as_ref()
    }

    /// Ticks executed so far.
    #[must_use]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Cumulative per-kind tallies since the start of the run.
    #[must_use]
    pub fn cumulative_tally(&self) -> RegionTally {
        self.cumulative
    }

    /// Executes one tick and returns its statistics.
    pub fn step(&mut self) -> TickStats {
        self.tick += 1;
        let time_s = self.tick as f64 * self.dt;

        // 1. Advance ground truth.
        let observations: Vec<(mobigrid_wireless::MnId, mobigrid_geo::Point)> = self
            .nodes
            .iter_mut()
            .map(|n| {
                let p = n.step(time_s, self.dt);
                (n.id(), p)
            })
            .collect();

        // 2. Filter.
        let decisions = self.policy.process_tick(time_s, &observations);
        debug_assert_eq!(decisions.len(), observations.len());

        // 3. Deliver or estimate; tally per region kind.
        let mut tick_tally = RegionTally::new();
        let mut sent = 0u32;
        for ((node, (id, pos)), decision) in self.nodes.iter().zip(&observations).zip(&decisions) {
            debug_assert_eq!(node.id(), *id);
            match decision {
                Decision::Sent => {
                    let seq = &mut self.seqs[id.index()];
                    let lu = LocationUpdate::new(*id, time_s, *pos, *seq);
                    *seq = seq.wrapping_add(1);
                    let delivered = match &mut self.network {
                        Some(net) => net.transmit(&lu).is_ok(),
                        None => true,
                    };
                    if delivered {
                        sent += 1;
                        tick_tally.record(node.region_kind(), true);
                        self.broker_le.receive(&lu);
                        self.broker_raw.receive(&lu);
                    } else {
                        // Out of coverage: the broker sees nothing and must
                        // estimate, same as a filtered update.
                        tick_tally.record(node.region_kind(), false);
                        self.broker_le.note_filtered(*id, time_s);
                        self.broker_raw.note_filtered(*id, time_s);
                    }
                }
                Decision::Filtered => {
                    tick_tally.record(node.region_kind(), false);
                    self.broker_le.note_filtered(*id, time_s);
                    self.broker_raw.note_filtered(*id, time_s);
                }
            }
        }
        self.cumulative.merge(&tick_tally);

        // 4. Measure location error against ground truth, per broker and
        //    per region kind — the paper's RMSE over all n nodes at time t.
        let mut all_le = Rmse::new();
        let mut all_raw = Rmse::new();
        let mut road_le = Rmse::new();
        let mut road_raw = Rmse::new();
        let mut bld_le = Rmse::new();
        let mut bld_raw = Rmse::new();
        for (node, (id, truth)) in self.nodes.iter().zip(&observations) {
            let err_le = self
                .broker_le
                .location(*id)
                .map_or(0.0, |r| r.position.distance_to(*truth));
            let err_raw = self
                .broker_raw
                .location(*id)
                .map_or(0.0, |r| r.position.distance_to(*truth));
            all_le.push(err_le);
            all_raw.push(err_raw);
            match node.region_kind() {
                RegionKind::Road => {
                    road_le.push(err_le);
                    road_raw.push(err_raw);
                }
                RegionKind::Building => {
                    bld_le.push(err_le);
                    bld_raw.push(err_raw);
                }
            }
        }

        TickStats {
            time_s,
            sent,
            observed: observations.len() as u32,
            region: tick_tally,
            rmse_with_le: all_le.value(),
            rmse_without_le: all_raw.value(),
            road_rmse_with_le: road_le.value(),
            road_rmse_without_le: road_raw.value(),
            building_rmse_with_le: bld_le.value(),
            building_rmse_without_le: bld_raw.value(),
        }
    }

    /// Runs `ticks` steps, collecting every tick's statistics.
    pub fn run(&mut self, ticks: u64) -> Vec<TickStats> {
        (0..ticks).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveDistanceFilter, AdfConfig, IdealPolicy};
    use mobigrid_campus::RegionId;
    use mobigrid_geo::{Point, Polyline};
    use mobigrid_mobility::{LoopMode, MobilityPattern, NodeType, PathFollower, StopModel};
    use mobigrid_wireless::MnId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn walker(id: u32, speed: f64) -> MobileNode {
        let y = f64::from(id) * 50.0;
        let path = Polyline::new(vec![Point::new(0.0, y), Point::new(1000.0, y)]).unwrap();
        MobileNode::new(
            MnId::new(id),
            RegionId::from_index(6), // a road
            RegionKind::Road,
            NodeType::Human,
            MobilityPattern::Linear,
            Box::new(PathFollower::new(path, speed, LoopMode::PingPong)),
            StdRng::seed_from_u64(u64::from(id)),
        )
    }

    fn parked(id: u32) -> MobileNode {
        MobileNode::new(
            MnId::new(id),
            RegionId::from_index(0),
            RegionKind::Building,
            NodeType::Human,
            MobilityPattern::Stop,
            Box::new(StopModel::new(Point::new(500.0, 500.0))),
            StdRng::seed_from_u64(u64::from(id)),
        )
    }

    #[test]
    fn ideal_policy_sends_every_node_every_tick() {
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1)])
            .policy(IdealPolicy::new())
            .build()
            .unwrap();
        for _ in 0..10 {
            let s = sim.step();
            assert_eq!(s.sent, 2);
            assert_eq!(s.observed, 2);
            // Broker is always current: zero error.
            assert_eq!(s.rmse_without_le, 0.0);
            assert_eq!(s.rmse_with_le, 0.0);
        }
        assert_eq!(sim.cumulative_tally().total_sent(), 20);
    }

    #[test]
    fn adf_reduces_traffic_and_le_reduces_error() {
        let nodes = vec![walker(0, 1.5), walker(1, 1.6), walker(2, 8.0), parked(3)];
        let mut sim = SimBuilder::new()
            .nodes(nodes)
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.25)).unwrap())
            .build()
            .unwrap();
        let stats = sim.run(300);

        let total_sent: u64 = stats.iter().map(|s| u64::from(s.sent)).sum();
        let total_obs: u64 = stats.iter().map(|s| u64::from(s.observed)).sum();
        assert!(total_sent < total_obs, "no reduction at all");
        assert!(
            (total_sent as f64) < 0.9 * total_obs as f64,
            "reduction too weak: {total_sent}/{total_obs}"
        );

        // Post-warmup, LE error should beat the stale-last-position error
        // on average (the walkers move predictably).
        let tail = &stats[30..];
        let mean_le: f64 = tail.iter().map(|s| s.rmse_with_le).sum::<f64>() / tail.len() as f64;
        let mean_raw: f64 = tail.iter().map(|s| s.rmse_without_le).sum::<f64>() / tail.len() as f64;
        assert!(
            mean_le < mean_raw,
            "LE did not help: with={mean_le} without={mean_raw}"
        );
    }

    #[test]
    fn accounting_conserves_observations() {
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1), walker(2, 5.0)])
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).unwrap())
            .build()
            .unwrap();
        let stats = sim.run(100);
        for s in &stats {
            assert_eq!(
                s.region.total_observed(),
                u64::from(s.observed),
                "per-kind tallies must cover every observation"
            );
        }
        let tally = sim.cumulative_tally();
        assert_eq!(tally.total_observed(), 300);
        let total_sent: u64 = stats.iter().map(|s| u64::from(s.sent)).sum();
        assert_eq!(tally.total_sent(), total_sent);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        assert!(SimBuilder::new().build().is_err()); // no policy
        assert!(SimBuilder::new()
            .policy(IdealPolicy::new())
            .build()
            .is_err()); // no nodes
                        // Non-dense ids.
        let err = SimBuilder::new()
            .nodes(vec![walker(5, 1.0)])
            .policy(IdealPolicy::new())
            .build()
            .unwrap_err();
        assert!(err.contains("dense"));
        // Bad dt.
        let err = SimBuilder::new()
            .nodes(vec![walker(0, 1.0)])
            .policy(IdealPolicy::new())
            .dt(0.0)
            .build()
            .unwrap_err();
        assert!(err.contains("dt"));
    }

    #[test]
    fn network_accounting_matches_sent_updates() {
        use mobigrid_wireless::{AccessNetwork, Gateway, GatewayKind};
        let net = AccessNetwork::new(vec![Gateway::new(
            0,
            GatewayKind::BaseStation,
            Point::new(500.0, 250.0),
            10_000.0,
        )]);
        let mut sim = SimBuilder::new()
            .nodes(vec![walker(0, 2.0), parked(1)])
            .policy(IdealPolicy::new())
            .network(net)
            .build()
            .unwrap();
        sim.run(50);
        let meter = sim.network().unwrap().meter();
        assert_eq!(meter.messages(), 100);
        assert_eq!(meter.bytes(), 100 * LocationUpdate::WIRE_SIZE as u64);
    }
}
