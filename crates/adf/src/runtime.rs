//! Typed runtime options for the simulation and experiment layers, and
//! the consolidated simulation error type.
//!
//! [`RuntimeOptions`] replaces the loose knob list that used to grow on
//! `SimBuilder` and `ExperimentConfig` (`threads`, `campaign_threads`,
//! fault plan/seed pairs, retry policies) with one validated struct:
//! everything that changes *how* a simulation executes — but, by the
//! determinism contract, never *what* it computes — lives here.
//! [`RuntimeOptions::validate`] runs at build time and rejects impossible
//! settings (`threads == 0`, fault rates outside `[0, 1]`, inconsistent
//! retry policies) before any simulation state exists.

use std::error::Error;
use std::fmt;

use mobigrid_wireless::{FaultPlan, RetryPolicy, WirelessError};

/// A fault plan plus the dedicated seed for its hash stream (independent
/// of the workload seed, so the same mobility replays under every plan).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The fault mixture to inject.
    pub plan: FaultPlan,
    /// Seed of the channel's `SplitMix64` fate stream.
    pub seed: u64,
}

/// Execution options shared by `SimBuilder` and the experiment configs.
///
/// `Default` matches the historical behavior exactly: one tick worker
/// thread, one campaign worker, no fault injection, no default retry
/// policy.
///
/// # Examples
///
/// ```
/// use mobigrid_adf::RuntimeOptions;
///
/// let opts = RuntimeOptions {
///     threads: 4,
///     ..RuntimeOptions::default()
/// };
/// assert!(opts.validate().is_ok());
/// assert!(RuntimeOptions { threads: 0, ..RuntimeOptions::default() }
///     .validate()
///     .is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeOptions {
    /// Worker threads for the parallel tick phases (≥ 1). Results are
    /// bit-identical for every value.
    pub threads: usize,
    /// Worker threads for running whole campaign runs (the ideal baseline
    /// plus one run per DTH factor) concurrently (≥ 1). Results are
    /// bit-identical for every value.
    pub campaign_threads: usize,
    /// Wrap the access network in a deterministic fault channel.
    pub faults: Option<FaultSpec>,
    /// Default retry policy applied to every node that does not carry its
    /// own (`MobileNode::with_retry_policy` still wins per node).
    pub retry: Option<RetryPolicy>,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            threads: 1,
            campaign_threads: 1,
            faults: None,
            retry: None,
        }
    }
}

impl RuntimeOptions {
    /// Checks every option for consistency.
    ///
    /// # Errors
    ///
    /// Rejects `threads == 0` or `campaign_threads == 0`, fault rates
    /// outside `[0, 1]` (or otherwise invalid plans), and invalid retry
    /// policies.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.threads == 0 {
            return Err(SimError::Config(
                "threads must be at least 1 (got 0)".to_string(),
            ));
        }
        if self.campaign_threads == 0 {
            return Err(SimError::Config(
                "campaign_threads must be at least 1 (got 0)".to_string(),
            ));
        }
        if let Some(spec) = &self.faults {
            spec.plan.validate()?;
        }
        if let Some(retry) = &self.retry {
            retry.validate()?;
        }
        Ok(())
    }
}

/// Everything that can go wrong assembling or configuring a simulation.
///
/// One consolidated surface instead of bare `String`s: configuration
/// mistakes stay descriptive, wireless-layer failures keep their typed
/// [`WirelessError`] (reachable through [`Error::source`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A structural configuration mistake (missing policy, non-dense node
    /// ids, bad tick length, zero thread budget, …).
    Config(String),
    /// The wireless layer rejected part of the configuration (fault
    /// rates, retry backoff, outage windows, …).
    Wireless(WirelessError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(msg) => f.write_str(msg),
            SimError::Wireless(e) => write!(f, "wireless configuration rejected: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(_) => None,
            SimError::Wireless(e) => Some(e),
        }
    }
}

impl From<WirelessError> for SimError {
    fn from(e: WirelessError) -> Self {
        SimError::Wireless(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_historical_behavior() {
        let d = RuntimeOptions::default();
        assert_eq!((d.threads, d.campaign_threads), (1, 1));
        assert!(d.faults.is_none() && d.retry.is_none());
        assert!(d.validate().is_ok());
    }

    #[test]
    fn zero_thread_budgets_are_rejected() {
        for (threads, campaign_threads) in [(0, 1), (1, 0)] {
            let opts = RuntimeOptions {
                threads,
                campaign_threads,
                ..RuntimeOptions::default()
            };
            let err = opts.validate().unwrap_err();
            assert!(err.to_string().contains("at least 1"), "{err}");
        }
    }

    #[test]
    fn invalid_fault_rates_are_rejected_with_a_typed_source() {
        let opts = RuntimeOptions {
            faults: Some(FaultSpec {
                plan: FaultPlan {
                    drop_rate: 1.5,
                    ..FaultPlan::lossless()
                },
                seed: 7,
            }),
            ..RuntimeOptions::default()
        };
        let err = opts.validate().unwrap_err();
        assert!(matches!(err, SimError::Wireless(_)));
        assert!(Error::source(&err).is_some(), "source must expose the wireless error");
    }

    #[test]
    fn display_is_human_readable() {
        let e = SimError::Config("threads must be at least 1 (got 0)".into());
        assert!(e.to_string().contains("threads"));
    }
}
