//! Property-based tests for the simulation kernel.

use mobigrid_sim::stats::{Rmse, Welford};
use mobigrid_sim::{EventQueue, SeedStream, SimTime, TickDriver};
use proptest::prelude::*;

proptest! {
    #[test]
    fn queue_pops_sorted_by_time_then_fifo(times in prop::collection::vec(0u64..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(*t), i);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, e.event));
        }
        // Times are non-decreasing.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            // Among equal times, insertion order is preserved.
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        prop_assert_eq!(popped.len(), times.len());
    }

    #[test]
    fn simtime_roundtrip_is_lossless_to_microseconds(micros in 0u64..10_000_000_000) {
        let t = SimTime::from_micros(micros);
        let back = SimTime::from_secs_f64(t.as_secs_f64());
        // f64 has 53 bits of mantissa; within this range the round trip is exact.
        prop_assert_eq!(back, t);
    }

    #[test]
    fn seed_stream_is_deterministic_and_spread(master in any::<u64>(), idx in 0u64..10_000) {
        let s = SeedStream::new(master);
        prop_assert_eq!(s.seed_for(idx), SeedStream::new(master).seed_for(idx));
        prop_assert_ne!(s.seed_for(idx), s.seed_for(idx + 1));
    }

    #[test]
    fn tick_driver_covers_time_exactly(dt_ms in 1u64..5000, total in 0u64..500) {
        let driver = TickDriver::new(SimTime::from_millis(dt_ms), total);
        let ticks: Vec<_> = driver.clone().collect();
        prop_assert_eq!(ticks.len() as u64, total);
        if let Some(last) = ticks.last() {
            prop_assert_eq!(last.time, driver.end_time());
        }
        // Ticks are contiguous: each ends dt after the previous.
        for w in ticks.windows(2) {
            prop_assert_eq!(w[1].time - w[0].time, SimTime::from_millis(dt_ms));
        }
    }

    #[test]
    fn welford_matches_naive_computation(xs in prop::collection::vec(-1e3..1e3f64, 1..100)) {
        let w: Welford = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6);
        prop_assert!((w.population_variance() - var).abs() < 1e-6);
    }

    #[test]
    fn welford_merge_is_order_independent(
        xs in prop::collection::vec(-1e3..1e3f64, 1..50),
        ys in prop::collection::vec(-1e3..1e3f64, 1..50),
    ) {
        let a: Welford = xs.iter().copied().collect();
        let b: Welford = ys.iter().copied().collect();
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.population_variance() - ba.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn rmse_is_scale_equivariant(xs in prop::collection::vec(0.0..100.0f64, 1..50), k in 0.1..10.0f64) {
        let mut base = Rmse::new();
        let mut scaled = Rmse::new();
        for x in &xs {
            base.push(*x);
            scaled.push(*x * k);
        }
        prop_assert!((scaled.value() - base.value() * k).abs() < 1e-6 * scaled.value().max(1.0));
    }

    /// Splitting a stream of errors into two partial accumulators and
    /// merging them preserves the observation count exactly and the RMSE
    /// up to float re-association.
    #[test]
    fn rmse_partial_merge_matches_sequential_push(
        xs in prop::collection::vec(0.0..1e3f64, 0..120),
        split in 0usize..120,
    ) {
        let mut whole = Rmse::new();
        for x in &xs {
            whole.push(*x);
        }
        let cut = split.min(xs.len());
        let mut left = Rmse::new();
        let mut right = Rmse::new();
        for x in &xs[..cut] {
            left.push(*x);
        }
        for x in &xs[cut..] {
            right.push(*x);
        }
        let mut merged = left;
        merged.merge(&right);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert!((merged.value() - whole.value()).abs() < 1e-9 * whole.value().max(1.0));
    }

    /// A left-to-right fold of per-shard partials is bit-reproducible:
    /// running the same shard-ordered reduction twice gives identical
    /// floats. This is the exact contract the parallel tick engine uses
    /// to stay deterministic across thread counts.
    #[test]
    fn rmse_shard_ordered_fold_is_bit_reproducible(
        xs in prop::collection::vec(0.0..1e3f64, 1..200),
        shard in 1usize..64,
    ) {
        let fold = || {
            let mut total = Rmse::new();
            for chunk in xs.chunks(shard) {
                let mut part = Rmse::new();
                for x in chunk {
                    part.push(*x);
                }
                total.merge(&part);
            }
            total
        };
        let (a, b) = (fold(), fold());
        prop_assert_eq!(a.count(), b.count());
        // Bit-identical, not merely close.
        prop_assert_eq!(a.value().to_bits(), b.value().to_bits());

        // Merging counts is exact u64 addition regardless of shard size.
        prop_assert_eq!(a.count(), xs.len() as u64);
    }
}
