//! Deterministic sharded parallel execution.
//!
//! [`ShardPool`] runs one closure per *shard* — an owned unit of work,
//! typically a bundle of mutable sub-slices produced by `chunks_mut` — across
//! a bounded set of scoped worker threads, and hands the results back **in
//! shard order**. Shard structure must be a pure function of problem size,
//! never of the thread count; combined with an order-preserving reduction
//! this makes results bit-identical whether the pool runs on one thread or
//! sixteen. Threads only decide *where* a shard executes, not *what* it
//! computes or in which order its output is consumed.
//!
//! # Examples
//!
//! ```
//! use mobigrid_sim::par::ShardPool;
//!
//! let mut data = vec![1u64; 100];
//! let pool = ShardPool::new(4);
//! let shards: Vec<&mut [u64]> = data.chunks_mut(32).collect();
//! let sums = pool.run(shards, |_, shard| {
//!     shard.iter_mut().for_each(|x| *x += 1);
//!     shard.iter().sum::<u64>()
//! });
//! // Results arrive in shard order regardless of scheduling.
//! assert_eq!(sums, vec![64, 64, 64, 8]);
//! ```

/// A bounded executor for shard-parallel work with deterministic,
/// shard-ordered results.
///
/// With `threads == 1` (or a single shard) everything runs inline on the
/// caller's thread — no spawning, no overhead, and trivially the same
/// results as the parallel path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPool {
    threads: usize,
}

impl Default for ShardPool {
    fn default() -> Self {
        ShardPool { threads: 1 }
    }
}

impl ShardPool {
    /// Creates a pool that uses up to `threads` worker threads per parallel
    /// region. `0` is treated as `1`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ShardPool {
            threads: threads.max(1),
        }
    }

    /// The configured thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f(shard_index, shard)` for every shard and returns the
    /// results in shard order.
    ///
    /// Shards are striped round-robin across `min(threads, shards)` scoped
    /// workers; each worker processes its stripe in ascending shard order.
    /// Because `f` receives the shard index, and results are re-assembled by
    /// index, the output is independent of which worker ran which shard.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any shard closure.
    pub fn run<T, R, F>(&self, shards: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(shards.len());
        self.run_into(shards, &mut out, f);
        out
    }

    /// Like [`ShardPool::run`], but takes the shards as an exact-size
    /// iterator and writes the results into `out` (cleared first, shard
    /// order), reusing `out`'s existing capacity.
    ///
    /// This is the steady-state building block: with `threads == 1` the
    /// shards run inline on the caller's thread and — once `out` has grown
    /// to its high-water capacity — the call performs **no heap
    /// allocations**. With more threads the call allocates transient stripe
    /// and result scaffolding (thread spawning dwarfs that cost anyway);
    /// results are still bit-identical to the inline path.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any shard closure.
    pub fn run_into<I, R, F>(&self, shards: I, out: &mut Vec<R>, f: F)
    where
        I: IntoIterator,
        I::IntoIter: ExactSizeIterator,
        I::Item: Send,
        R: Send,
        F: Fn(usize, I::Item) -> R + Sync,
    {
        out.clear();
        let shards = shards.into_iter();
        let n = shards.len();
        if self.threads == 1 || n <= 1 {
            out.extend(shards.enumerate().map(|(i, s)| f(i, s)));
            return;
        }

        let workers = self.threads.min(n);
        let mut stripes: Vec<Vec<(usize, I::Item)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, shard) in shards.enumerate() {
            stripes[i % workers].push((i, shard));
        }

        let f = &f;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = stripes
                .into_iter()
                .map(|stripe| {
                    scope.spawn(move |_| {
                        stripe
                            .into_iter()
                            .map(|(i, shard)| (i, f(i, shard)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for handle in handles {
                for (i, r) in handle.join().expect("shard worker panicked") {
                    slots[i] = Some(r);
                }
            }
            out.extend(
                slots
                    .into_iter()
                    .map(|r| r.expect("every shard produces exactly one result")),
            );
        })
        .expect("shard scope panicked");
    }

    /// Executes `f(shard_index, shard)` for every shard, discarding results.
    ///
    /// For phases whose output is written *in place* through mutable slices
    /// carried inside the shard values. The unit results accumulate in a
    /// zero-sized `Vec<()>`, which never touches the heap, so with
    /// `threads == 1` this is completely allocation-free.
    pub fn for_each<I, F>(&self, shards: I, f: F)
    where
        I: IntoIterator,
        I::IntoIter: ExactSizeIterator,
        I::Item: Send,
        F: Fn(usize, I::Item) + Sync,
    {
        let mut unit: Vec<()> = Vec::new();
        self.run_into(shards, &mut unit, f);
    }
}

/// Splits `len` items into contiguous shards of `shard_size` (the last shard
/// may be shorter) and returns the shard count. Shard geometry depends only
/// on `len` and `shard_size`, never on thread count — the cornerstone of the
/// determinism contract.
#[must_use]
pub fn shard_count(len: usize, shard_size: usize) -> usize {
    assert!(shard_size > 0, "shard size must be positive");
    len.div_ceil(shard_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = ShardPool::new(1).run(items.clone(), |i, x| x * 3 + i as u64);
        for threads in [2, 3, 4, 8] {
            let par = ShardPool::new(threads).run(items.clone(), |i, x| x * 3 + i as u64);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn results_are_in_shard_order() {
        let out = ShardPool::new(4).run((0..100usize).collect(), |i, x| {
            assert_eq!(i, x);
            i
        });
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mutable_chunks_round_trip() {
        let mut data = vec![0u32; 1000];
        let pool = ShardPool::new(4);
        let shards: Vec<(usize, &mut [u32])> = data.chunks_mut(64).enumerate().collect();
        pool.run(shards, |_, (base, chunk)| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = (base * 64 + off) as u32;
            }
        });
        let expect: Vec<u32> = (0..1000).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ShardPool::new(0).threads(), 1);
    }

    #[test]
    fn run_into_reuses_the_output_buffer() {
        let pool = ShardPool::new(1);
        let mut out: Vec<usize> = Vec::new();
        pool.run_into(0..10usize, &mut out, |i, x| x + i);
        assert_eq!(out, (0..10).map(|x| 2 * x).collect::<Vec<_>>());
        let cap = out.capacity();
        let ptr = out.as_ptr();
        pool.run_into(0..10usize, &mut out, |_, x| x);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(out.capacity(), cap, "capacity must be retained");
        assert_eq!(out.as_ptr(), ptr, "buffer must not be reallocated");
    }

    #[test]
    fn run_into_matches_run_across_thread_counts() {
        let items: Vec<u64> = (0..37).collect();
        let reference = ShardPool::new(1).run(items.clone(), |i, x| x * 3 + i as u64);
        for threads in [1, 2, 4, 8] {
            let mut out = Vec::new();
            ShardPool::new(threads).run_into(items.clone(), &mut out, |i, x| x * 3 + i as u64);
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn for_each_writes_through_disjoint_slices() {
        for threads in [1, 4] {
            let mut data = vec![0u32; 300];
            let pool = ShardPool::new(threads);
            pool.for_each(data.chunks_mut(64).enumerate(), |_, (base, chunk)| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = (base * 64 + off) as u32;
                }
            });
            let expect: Vec<u32> = (0..300).collect();
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn shard_count_is_ceiling_division() {
        assert_eq!(shard_count(0, 64), 0);
        assert_eq!(shard_count(1, 64), 1);
        assert_eq!(shard_count(64, 64), 1);
        assert_eq!(shard_count(65, 64), 2);
        assert_eq!(shard_count(140, 64), 3);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = ShardPool::new(4).run(Vec::<u8>::new(), |_, x| x);
        assert!(out.is_empty());
    }
}
