//! Discrete-event simulation kernel for the mobigrid workspace.
//!
//! The paper evaluates the adaptive distance filter inside an HLA-based
//! distributed simulation. This crate provides the simulation *kernel* that
//! both the HLA run-time infrastructure and the experiment harness are built
//! on:
//!
//! * [`SimTime`] — an exact, totally-ordered simulation clock,
//! * [`EventQueue`] — a deterministic pending-event set with FIFO
//!   tie-breaking and O(log n) scheduling,
//! * [`Engine`] / [`Model`] — an event-dispatch loop over a user model,
//! * [`TickDriver`] — the fixed-step (1 s tick) driver the campus
//!   experiments use,
//! * [`SeedStream`] — reproducible per-entity random seeds, and
//!   [`SplitMix64`] — the canonical single-word generator those seeds drive,
//! * [`par::ShardPool`] — deterministic sharded parallel execution with
//!   shard-ordered reduction (results are bit-identical across thread
//!   counts),
//! * [`stats`] — streaming statistics (Welford mean/variance, RMSE
//!   accumulators, time series) shared by the experiment harness.
//!
//! # Examples
//!
//! ```
//! use mobigrid_sim::{Engine, Model, Context, SimTime};
//!
//! struct Counter { fired: u32 }
//!
//! impl Model for Counter {
//!     type Event = &'static str;
//!     fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event) {
//!         self.fired += 1;
//!         if event == "again" && self.fired < 3 {
//!             ctx.schedule_in(SimTime::from_secs(1), "again");
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.schedule(SimTime::ZERO, "again");
//! engine.run();
//! assert_eq!(engine.model().fired, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod par;
mod queue;
mod rng;
pub mod stats;
mod stepper;
mod time;

pub use engine::{Context, Engine, Model};
pub use queue::{EventQueue, ScheduledEvent};
pub use rng::{SeedStream, SplitMix64};
pub use stepper::{Tick, TickDriver};
pub use time::SimTime;
