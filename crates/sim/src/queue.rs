use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A pending event with its activation time and a tie-breaking sequence
/// number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence number; earlier-scheduled events fire first among
    /// equal times, making execution order fully deterministic.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

/// Internal heap entry ordered so that the `BinaryHeap` (a max-heap) pops the
/// earliest `(time, seq)` first.
#[derive(Debug)]
struct HeapEntry<E>(ScheduledEvent<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: earliest time (then lowest seq) is the "greatest" entry.
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

/// A deterministic pending-event set.
///
/// Events pop in non-decreasing time order; events scheduled for the same
/// instant pop in the order they were scheduled (FIFO). This determinism is
/// what makes whole-experiment runs exactly reproducible from a seed.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
///
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`; returns its sequence number.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap
            .push(HeapEntry(ScheduledEvent { time, seq, event }));
        seq
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|h| h.0)
    }

    /// The activation time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|h| h.0.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), "a");
        q.push(SimTime::from_secs(4), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_secs(4));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn sequence_numbers_are_unique_and_increasing() {
        let mut q = EventQueue::new();
        let s1 = q.push(SimTime::ZERO, ());
        let s2 = q.push(SimTime::ZERO, ());
        assert!(s2 > s1);
    }
}
