use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the simulation clock.
///
/// Time is stored as an integer number of **microseconds** so that events
/// scheduled at "the same second" compare exactly equal — floating-point
/// clocks make event ordering platform-dependent, which would break the
/// reproducibility guarantees the experiment harness relies on.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::SimTime;
///
/// let t = SimTime::from_secs(3) + SimTime::from_millis(500);
/// assert_eq!(t.as_secs_f64(), 3.5);
/// assert!(t > SimTime::from_secs(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    micros: u64,
}

impl SimTime {
    /// The start of simulation time.
    pub const ZERO: SimTime = SimTime { micros: 0 };

    /// The largest representable instant; useful as an "until forever" bound.
    pub const MAX: SimTime = SimTime { micros: u64::MAX };

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime {
            micros: secs * 1_000_000,
        }
    }

    /// Creates a time from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime {
            micros: millis * 1_000,
        }
    }

    /// Creates a time from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime { micros }
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative or non-finite values clamp to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime {
            micros: (secs * 1e6).round() as u64,
        }
    }

    /// This instant expressed in fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// This instant expressed in whole microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.micros / 1_000_000
    }

    /// Saturating subtraction: never panics, floors at [`SimTime::ZERO`].
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        match self.micros.checked_add(rhs.micros) {
            Some(m) => Some(SimTime { micros: m }),
            None => None,
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime {
            micros: self
                .micros
                .checked_add(rhs.micros)
                .expect("simulation time overflow"),
        }
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics when `rhs` is later than `self`; use
    /// [`SimTime::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            micros: self
                .micros
                .checked_sub(rhs.micros)
                .expect("simulation time underflow"),
        }
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(12.345678);
        assert_eq!(t.as_micros(), 12_345_678);
        assert!((t.as_secs_f64() - 12.345678).abs() < 1e-9);
        assert_eq!(t.as_secs(), 12);
    }

    #[test]
    fn equal_seconds_compare_equal() {
        assert_eq!(SimTime::from_secs(5), SimTime::from_secs_f64(5.0));
        assert_eq!(SimTime::from_millis(1500), SimTime::from_secs_f64(1.5));
    }

    #[test]
    fn ordering_is_total() {
        let mut times = [
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
            SimTime::from_secs(1),
        ];
        times.sort();
        assert_eq!(times[0], SimTime::ZERO);
        assert_eq!(times[3], SimTime::from_secs(3));
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::ZERO - SimTime::from_secs(1);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimTime::from_micros(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimTime::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }

    #[test]
    fn display_shows_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
