use crate::{EventQueue, SimTime};

/// A simulation model: owns the world state and reacts to events.
///
/// The engine pops events in deterministic time order and hands each one to
/// [`Model::handle`] together with a [`Context`] through which the model can
/// schedule follow-up events.
pub trait Model {
    /// The event payload type dispatched through the queue.
    type Event;

    /// Reacts to one event. `ctx.now()` is the event's activation time.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Event>, event: Self::Event);
}

/// Scheduling handle passed to [`Model::handle`].
#[derive(Debug)]
pub struct Context<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop: &'a mut bool,
}

impl<E> Context<'_, E> {
    /// The current simulation time (the activation time of the event being
    /// handled).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past would violate causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after a relative `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Requests that the engine stop after the current event completes.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// The event-dispatch loop: pops events in deterministic order and feeds them
/// to the model until the queue drains, a time bound is reached, or the model
/// requests a stop.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::{Context, Engine, Model, SimTime};
///
/// struct Ping(Vec<u64>);
///
/// impl Model for Ping {
///     type Event = ();
///     fn handle(&mut self, ctx: &mut Context<'_, ()>, _event: ()) {
///         self.0.push(ctx.now().as_secs());
///     }
/// }
///
/// let mut engine = Engine::new(Ping(Vec::new()));
/// for s in [5, 1, 3] {
///     engine.schedule(SimTime::from_secs(s), ());
/// }
/// engine.run();
/// assert_eq!(engine.model().0, vec![1, 3, 5]);
/// ```
#[derive(Debug)]
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
}

impl<M: Model> Engine<M> {
    /// Creates an engine around `model` with an empty event queue at time
    /// zero.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Schedules an initial event from outside the model.
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        self.queue.push(at, event);
    }

    /// Current simulation time: the activation time of the most recently
    /// processed event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the model.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine and returns the model.
    #[must_use]
    pub fn into_model(self) -> M {
        self.model
    }

    /// Processes a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(scheduled) = self.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.time >= self.now, "event queue went backwards");
        self.now = scheduled.time;
        self.processed += 1;
        let mut stop = false;
        let mut ctx = Context {
            now: self.now,
            queue: &mut self.queue,
            stop: &mut stop,
        };
        self.model.handle(&mut ctx, scheduled.event);
        !stop
    }

    /// Runs until the queue drains or the model calls [`Context::stop`].
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until simulation time would exceed `until` (events at exactly
    /// `until` are processed), the queue drains, or the model stops.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= until => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(u64, &'static str)>,
        stop_at: Option<&'static str>,
    }

    impl Model for Recorder {
        type Event = &'static str;

        fn handle(&mut self, ctx: &mut Context<'_, &'static str>, event: &'static str) {
            self.seen.push((ctx.now().as_secs(), event));
            if event == "spawn" {
                ctx.schedule_in(SimTime::from_secs(2), "child");
            }
            if Some(event) == self.stop_at {
                ctx.stop();
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            stop_at: None,
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut e = Engine::new(recorder());
        e.schedule(SimTime::from_secs(3), "c");
        e.schedule(SimTime::from_secs(1), "a");
        e.schedule(SimTime::from_secs(2), "b");
        e.run();
        let names: Vec<_> = e.model().seen.iter().map(|s| s.1).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert_eq!(e.processed(), 3);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = Engine::new(recorder());
        e.schedule(SimTime::from_secs(1), "spawn");
        e.run();
        assert_eq!(e.model().seen, vec![(1, "spawn"), (3, "child")]);
    }

    #[test]
    fn stop_halts_processing() {
        let mut e = Engine::new(Recorder {
            seen: Vec::new(),
            stop_at: Some("halt"),
        });
        e.schedule(SimTime::from_secs(1), "halt");
        e.schedule(SimTime::from_secs(2), "never");
        e.run();
        assert_eq!(e.model().seen.len(), 1);
    }

    #[test]
    fn run_until_is_inclusive() {
        let mut e = Engine::new(recorder());
        e.schedule(SimTime::from_secs(1), "in");
        e.schedule(SimTime::from_secs(5), "at");
        e.schedule(SimTime::from_secs(6), "out");
        e.run_until(SimTime::from_secs(5));
        let names: Vec<_> = e.model().seen.iter().map(|s| s.1).collect();
        assert_eq!(names, vec!["in", "at"]);
        assert_eq!(e.now(), SimTime::from_secs(5));
    }

    #[test]
    fn now_tracks_last_event_time() {
        let mut e = Engine::new(recorder());
        assert_eq!(e.now(), SimTime::ZERO);
        e.schedule(SimTime::from_secs(9), "x");
        e.run();
        assert_eq!(e.now(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, ctx: &mut Context<'_, ()>, _ev: ()) {
                ctx.schedule(SimTime::ZERO, ());
            }
        }
        let mut e = Engine::new(Bad);
        e.schedule(SimTime::from_secs(1), ());
        e.run();
    }

    #[test]
    fn into_model_returns_state() {
        let mut e = Engine::new(recorder());
        e.schedule(SimTime::ZERO, "only");
        e.run();
        let m = e.into_model();
        assert_eq!(m.seen.len(), 1);
    }
}
