use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// SplitMix64 golden-gamma increment (also the seed-expansion gamma used by
/// `SeedableRng::seed_from_u64`).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Advances a SplitMix64 state and returns the next output word.
///
/// This is the repo-canonical generator documented in
/// `vendor/stubs/README.md`: the standard SplitMix64 finaliser over a state
/// that advances by the golden-gamma constant.
#[inline]
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace-canonical SplitMix64 generator with its entire state in one
/// `u64` — cheap to store inline in a dense column, `Copy`, and bit-for-bit
/// compatible with the random streams the golden traces were recorded
/// against.
///
/// # Seed compatibility
///
/// All committed golden traces were produced through the vendored `rand`
/// stub's `StdRng`, whose generator is this same SplitMix64 but whose
/// *seeding path* goes through `SeedableRng::seed_from_u64` (32-byte seed
/// expansion, then an XOR/rotate fold). [`SplitMix64::from_stdrng_seed`]
/// replicates that path exactly, so a `SplitMix64` seeded from the same
/// `u64` emits the identical sequence — the compat shim that keeps golden
/// traces replaying bit-exact after the per-node `StdRng` was replaced by a
/// plain state column.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::SplitMix64;
/// use rand::{rngs::StdRng, RngCore, SeedableRng};
///
/// let mut column = SplitMix64::from_stdrng_seed(42);
/// let mut legacy = StdRng::seed_from_u64(42);
/// assert_eq!(column.next_u64(), legacy.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose internal state is exactly `state` (no seeding
    /// transformation). Use [`SplitMix64::from_stdrng_seed`] for streams
    /// that must match `StdRng::seed_from_u64`.
    #[must_use]
    pub const fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The current internal state, for externalising the generator into a
    /// dense column and resuming later via [`SplitMix64::from_state`].
    #[must_use]
    pub const fn state(self) -> u64 {
        self.state
    }

    /// Seeds exactly like the vendored stub's `StdRng::seed_from_u64(seed)`:
    /// four SplitMix64 outputs form a 32-byte seed, which is folded into the
    /// initial state with XOR + `rotate_left(17)` per 8-byte word.
    ///
    /// This is the golden-trace seed-compat shim; see the type-level docs.
    #[must_use]
    pub fn from_stdrng_seed(seed: u64) -> Self {
        let mut expand = seed;
        let mut state = 0u64;
        for _ in 0..4 {
            // Each 8-byte seed chunk is one splitmix output, little-endian;
            // XOR-folding the LE bytes as a u64 is the word itself.
            state ^= splitmix_next(&mut expand);
            state = state.rotate_left(17);
        }
        SplitMix64 { state }
    }

    /// The next raw 64-bit output (also available through [`RngCore`]).
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        splitmix_next(&mut self.state)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_raw().to_le_bytes();
            for (b, s) in chunk.iter_mut().zip(v) {
                *b = s;
            }
        }
    }
}

/// Derives reproducible, statistically independent seeds for simulation
/// entities from one master seed.
///
/// Every mobile node, mobility model and workload generator in an experiment
/// gets its own RNG. Deriving those RNGs from `(master_seed, entity_index)`
/// via a SplitMix64 mix means (a) the whole experiment reproduces exactly from
/// a single seed and (b) adding an entity does not perturb the random streams
/// of existing entities.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::SeedStream;
///
/// let stream = SeedStream::new(42);
/// let a1 = stream.seed_for(7);
/// let a2 = SeedStream::new(42).seed_for(7);
/// assert_eq!(a1, a2); // reproducible
/// assert_ne!(a1, stream.seed_for(8)); // independent per entity
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `master_seed`.
    #[must_use]
    pub const fn new(master_seed: u64) -> Self {
        SeedStream {
            master: master_seed,
        }
    }

    /// The master seed this stream was created with.
    #[must_use]
    pub const fn master(self) -> u64 {
        self.master
    }

    /// The derived seed for entity `index`.
    #[must_use]
    pub fn seed_for(self, index: u64) -> u64 {
        // SplitMix64 finaliser over the combined key. The golden-gamma
        // constant decorrelates consecutive indices.
        // index + 1 so that (master = 0, index = 0) does not feed the
        // finaliser its fixed point at zero.
        let mut z = self
            .master
            .wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A ready-to-use [`StdRng`] for entity `index`.
    #[must_use]
    pub fn rng_for(self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(index))
    }

    /// A ready-to-use [`SplitMix64`] for entity `index`, emitting the same
    /// stream as [`SeedStream::rng_for`] (see
    /// [`SplitMix64::from_stdrng_seed`]).
    #[must_use]
    pub fn splitmix_for(self, index: u64) -> SplitMix64 {
        SplitMix64::from_stdrng_seed(self.seed_for(index))
    }

    /// A child stream for a namespaced family of entities (e.g. one stream
    /// per region, each of which seeds its own nodes).
    #[must_use]
    pub fn substream(self, index: u64) -> SeedStream {
        SeedStream {
            master: self.seed_for(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(
            SeedStream::new(1).seed_for(5),
            SeedStream::new(1).seed_for(5)
        );
    }

    #[test]
    fn different_indices_differ() {
        let s = SeedStream::new(99);
        let seeds: Vec<u64> = (0..100).map(|i| s.seed_for(i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedStream::new(1).seed_for(0),
            SeedStream::new(2).seed_for(0)
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = SeedStream::new(7).rng_for(3);
        let mut b = SeedStream::new(7).rng_for(3);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn substreams_are_namespaced() {
        let root = SeedStream::new(7);
        let sub_a = root.substream(0);
        let sub_b = root.substream(1);
        assert_ne!(sub_a.seed_for(0), sub_b.seed_for(0));
        // And differ from the root's own entity seeds.
        assert_ne!(sub_a.seed_for(0), root.seed_for(0));
    }

    #[test]
    fn zero_master_still_mixes() {
        let s = SeedStream::new(0);
        assert_ne!(s.seed_for(0), 0);
        assert_ne!(s.seed_for(0), s.seed_for(1));
    }

    /// The golden-trace seed-compat contract: for any seed, `SplitMix64`
    /// seeded via `from_stdrng_seed` must emit the bit-identical stream to
    /// the vendored stub's `StdRng::seed_from_u64` across the whole RngCore
    /// surface (u64, u32 and byte outputs all draw from one shared stream).
    #[test]
    fn splitmix_matches_stdrng_stream() {
        use rand::RngCore;
        for seed in [0u64, 1, 42, 0x5EED_5EED_5EED_5EED, u64::MAX] {
            let mut a = SplitMix64::from_stdrng_seed(seed);
            let mut b = StdRng::seed_from_u64(seed);
            for i in 0..64 {
                match i % 3 {
                    0 => assert_eq!(a.next_u64(), b.next_u64(), "seed={seed} draw={i}"),
                    1 => assert_eq!(a.next_u32(), b.next_u32(), "seed={seed} draw={i}"),
                    _ => {
                        let (mut xa, mut xb) = ([0u8; 13], [0u8; 13]);
                        a.fill_bytes(&mut xa);
                        b.fill_bytes(&mut xb);
                        assert_eq!(xa, xb, "seed={seed} draw={i}");
                    }
                }
            }
        }
    }

    #[test]
    fn splitmix_state_round_trips() {
        let mut a = SplitMix64::from_stdrng_seed(7);
        let _ = a.next_raw();
        let saved = a.state();
        let mut b = SplitMix64::from_state(saved);
        assert_eq!(a.next_raw(), b.next_raw());
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn splitmix_for_matches_rng_for() {
        use rand::RngCore;
        let stream = SeedStream::new(99);
        let mut a = stream.splitmix_for(12);
        let mut b = stream.rng_for(12);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
