use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives reproducible, statistically independent seeds for simulation
/// entities from one master seed.
///
/// Every mobile node, mobility model and workload generator in an experiment
/// gets its own RNG. Deriving those RNGs from `(master_seed, entity_index)`
/// via a SplitMix64 mix means (a) the whole experiment reproduces exactly from
/// a single seed and (b) adding an entity does not perturb the random streams
/// of existing entities.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::SeedStream;
///
/// let stream = SeedStream::new(42);
/// let a1 = stream.seed_for(7);
/// let a2 = SeedStream::new(42).seed_for(7);
/// assert_eq!(a1, a2); // reproducible
/// assert_ne!(a1, stream.seed_for(8)); // independent per entity
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `master_seed`.
    #[must_use]
    pub const fn new(master_seed: u64) -> Self {
        SeedStream {
            master: master_seed,
        }
    }

    /// The master seed this stream was created with.
    #[must_use]
    pub const fn master(self) -> u64 {
        self.master
    }

    /// The derived seed for entity `index`.
    #[must_use]
    pub fn seed_for(self, index: u64) -> u64 {
        // SplitMix64 finaliser over the combined key. The golden-gamma
        // constant decorrelates consecutive indices.
        // index + 1 so that (master = 0, index = 0) does not feed the
        // finaliser its fixed point at zero.
        let mut z = self
            .master
            .wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A ready-to-use [`StdRng`] for entity `index`.
    #[must_use]
    pub fn rng_for(self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for(index))
    }

    /// A child stream for a namespaced family of entities (e.g. one stream
    /// per region, each of which seeds its own nodes).
    #[must_use]
    pub fn substream(self, index: u64) -> SeedStream {
        SeedStream {
            master: self.seed_for(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(
            SeedStream::new(1).seed_for(5),
            SeedStream::new(1).seed_for(5)
        );
    }

    #[test]
    fn different_indices_differ() {
        let s = SeedStream::new(99);
        let seeds: Vec<u64> = (0..100).map(|i| s.seed_for(i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedStream::new(1).seed_for(0),
            SeedStream::new(2).seed_for(0)
        );
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let mut a = SeedStream::new(7).rng_for(3);
        let mut b = SeedStream::new(7).rng_for(3);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn substreams_are_namespaced() {
        let root = SeedStream::new(7);
        let sub_a = root.substream(0);
        let sub_b = root.substream(1);
        assert_ne!(sub_a.seed_for(0), sub_b.seed_for(0));
        // And differ from the root's own entity seeds.
        assert_ne!(sub_a.seed_for(0), root.seed_for(0));
    }

    #[test]
    fn zero_master_still_mixes() {
        let s = SeedStream::new(0);
        assert_ne!(s.seed_for(0), 0);
        assert_ne!(s.seed_for(0), s.seed_for(1));
    }
}
