//! Streaming statistics shared by the experiment harness.
//!
//! The paper reports averages (LUs per second), accumulations (total LUs over
//! 1800 s) and root-mean-square errors (location error). These accumulators
//! compute all three in one pass without storing samples, plus a
//! [`TimeSeries`] recorder for the per-second figure data.

use crate::SimTime;

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for long runs, O(1) memory.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divide by n); zero when empty.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by n−1); zero with fewer than two samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

/// Accumulates squared errors and reports the root-mean-square error — the
/// paper's location-error metric `sqrt(Σ(RLᵢ − ELᵢ)² / n)`.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::stats::Rmse;
///
/// let mut r = Rmse::new();
/// r.push(3.0); // an error of 3 m
/// r.push(4.0);
/// assert!((r.value() - (12.5f64).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Rmse {
    sum_sq: f64,
    count: u64,
}

impl Rmse {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Rmse::default()
    }

    /// Adds one error observation (sign is irrelevant).
    pub fn push(&mut self, error: f64) {
        self.sum_sq += error * error;
        self.count += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The RMSE; zero when empty.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq / self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Rmse) {
        self.sum_sq += other.sum_sq;
        self.count += other.count;
    }
}

/// A recorded `(time, value)` series for figure output.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::stats::TimeSeries;
/// use mobigrid_sim::SimTime;
///
/// let mut s = TimeSeries::new("lu_per_sec");
/// s.push(SimTime::from_secs(1), 135.0);
/// s.push(SimTime::from_secs(2), 134.0);
/// assert_eq!(s.len(), 2);
/// assert!((s.mean() - 134.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series labelled `name`.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples should be pushed in time order; this is
    /// asserted in debug builds.
    pub fn push(&mut self, time: SimTime, value: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|(t, _)| *t <= time),
            "time series samples must be pushed in order"
        );
        self.samples.push((time, value));
    }

    /// The recorded samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the sample values; zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Sum of the sample values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.samples.iter().map(|(_, v)| v).sum()
    }

    /// Final sample value, if any.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.samples.last().map(|(_, v)| *v)
    }

    /// The running-total series: sample i holds the sum of values 0..=i.
    /// Used to turn a per-second LU series into the paper's accumulated-LU
    /// figure.
    #[must_use]
    pub fn accumulated(&self) -> TimeSeries {
        let mut total = 0.0;
        let mut out = TimeSeries::new(format!("{}_accumulated", self.name));
        for (t, v) in &self.samples {
            total += v;
            out.push(*t, total);
        }
        out
    }

    /// Averages samples into windows of `window` seconds for smoother plots.
    #[must_use]
    pub fn windowed_mean(&self, window: u64) -> TimeSeries {
        assert!(window > 0, "window must be positive");
        let mut out = TimeSeries::new(format!("{}_w{}", self.name, window));
        let mut acc = 0.0;
        let mut n = 0u64;
        let mut bucket_end: Option<u64> = None;
        for (t, v) in &self.samples {
            let bucket = (t.as_secs() / window + 1) * window;
            match bucket_end {
                Some(end) if bucket != end => {
                    out.push(SimTime::from_secs(end), acc / n as f64);
                    acc = *v;
                    n = 1;
                    bucket_end = Some(bucket);
                }
                Some(_) => {
                    acc += v;
                    n += 1;
                }
                None => {
                    acc = *v;
                    n = 1;
                    bucket_end = Some(bucket);
                }
            }
        }
        if let Some(end) = bucket_end {
            out.push(SimTime::from_secs(end), acc / n as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_mean_and_variance() {
        let w: Welford = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(w.count(), 5);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.population_variance(), 2.0);
        assert_eq!(w.sample_variance(), 2.5);
        assert_eq!(w.min(), Some(1.0));
        assert_eq!(w.max(), Some(5.0));
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut both = Welford::new();
        for i in 0..50 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            both.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert!((a.mean() - both.mean()).abs() < 1e-9);
        assert!((a.population_variance() - both.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a: Welford = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn rmse_of_known_errors() {
        let mut r = Rmse::new();
        r.push(1.0);
        r.push(-1.0);
        assert_eq!(r.value(), 1.0);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn rmse_empty_is_zero() {
        assert_eq!(Rmse::new().value(), 0.0);
    }

    #[test]
    fn rmse_merge() {
        let mut a = Rmse::new();
        a.push(3.0);
        let mut b = Rmse::new();
        b.push(4.0);
        a.merge(&b);
        assert!((a.value() - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn time_series_accumulated() {
        let mut s = TimeSeries::new("x");
        for (i, v) in [1.0, 2.0, 3.0].iter().enumerate() {
            s.push(SimTime::from_secs(i as u64 + 1), *v);
        }
        let acc = s.accumulated();
        let vals: Vec<f64> = acc.samples().iter().map(|(_, v)| *v).collect();
        assert_eq!(vals, vec![1.0, 3.0, 6.0]);
        assert_eq!(acc.last_value(), Some(6.0));
    }

    #[test]
    fn time_series_windowed_mean() {
        let mut s = TimeSeries::new("x");
        for i in 0..6u64 {
            s.push(SimTime::from_secs(i), (i % 3) as f64);
        }
        // seconds 0,1,2 -> bucket ending 3 ; seconds 3,4,5 -> bucket ending 6
        let w = s.windowed_mean(3);
        assert_eq!(w.len(), 2);
        assert!((w.samples()[0].1 - 1.0).abs() < 1e-12);
        assert!((w.samples()[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_series_mean_and_sum() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(1), 10.0);
        s.push(SimTime::from_secs(2), 20.0);
        assert_eq!(s.sum(), 30.0);
        assert_eq!(s.mean(), 15.0);
    }
}

/// A fixed-width-bin histogram over `[0, bin_width × bins)`, with an
/// overflow bin.
///
/// Used by the experiment harness for inter-update-interval distributions:
/// how long nodes of each mobility pattern stay silent under the filter.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::stats::Histogram;
///
/// let mut h = Histogram::new(1.0, 10);
/// for x in [0.5, 1.5, 1.7, 100.0] {
///     h.record(x);
/// }
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(1), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram of `bins` bins, each `bin_width` wide.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive width or zero bins.
    #[must_use]
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin width must be positive"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation. Negative values clamp into the first bin.
    pub fn record(&mut self, value: f64) {
        let idx = (value.max(0.0) / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += value.max(0.0);
    }

    /// Count in bin `idx` (covering `[idx·w, (idx+1)·w)`).
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    #[must_use]
    pub fn bin_count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Number of bins (excluding overflow).
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The bin width.
    #[must_use]
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Observations beyond the last bin.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded values (clamped at zero), zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper edge of the bin where
    /// the cumulative count crosses `q·total`. Overflow resolves to
    /// positive infinity. `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i + 1) as f64 * self.bin_width);
            }
        }
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::Histogram;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(2.0, 5);
        for x in [0.0, 1.9, 2.0, 9.9, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn quantiles_walk_the_cdf() {
        let mut h = Histogram::new(1.0, 10);
        for i in 0..10 {
            h.record(f64::from(i) + 0.5);
        }
        assert_eq!(h.quantile(0.1), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn quantile_overflow_is_infinite() {
        let mut h = Histogram::new(1.0, 2);
        h.record(100.0);
        assert_eq!(h.quantile(0.5), Some(f64::INFINITY));
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn negative_values_clamp_to_first_bin() {
        let mut h = Histogram::new(1.0, 4);
        h.record(-5.0);
        assert_eq!(h.bin_count(0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = Histogram::new(0.0, 4);
    }
}
