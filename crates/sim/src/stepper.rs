use crate::SimTime;

/// One step of a fixed-interval simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick {
    /// Zero-based tick index.
    pub index: u64,
    /// Simulation time at the *end* of this tick (the first tick ends at one
    /// interval).
    pub time: SimTime,
    /// Length of the tick.
    pub dt: SimTime,
}

impl Tick {
    /// The tick length in fractional seconds — the `dt` used by mobility
    /// integrators.
    #[must_use]
    pub fn dt_secs(&self) -> f64 {
        self.dt.as_secs_f64()
    }
}

/// Iterator over the fixed ticks of a time-stepped experiment.
///
/// The paper's evaluation advances the world once per second for 1800
/// seconds; `TickDriver::new(SimTime::from_secs(1), 1800)` reproduces exactly
/// that schedule.
///
/// # Examples
///
/// ```
/// use mobigrid_sim::{SimTime, TickDriver};
///
/// let ticks: Vec<_> = TickDriver::new(SimTime::from_secs(1), 3).collect();
/// assert_eq!(ticks.len(), 3);
/// assert_eq!(ticks[0].time, SimTime::from_secs(1));
/// assert_eq!(ticks[2].time, SimTime::from_secs(3));
/// ```
#[derive(Debug, Clone)]
pub struct TickDriver {
    dt: SimTime,
    total: u64,
    next: u64,
}

impl TickDriver {
    /// Creates a driver producing `total` ticks of length `dt`.
    ///
    /// # Panics
    ///
    /// Panics when `dt` is zero — a zero-length tick would never advance
    /// time.
    #[must_use]
    pub fn new(dt: SimTime, total: u64) -> Self {
        assert!(dt > SimTime::ZERO, "tick length must be positive");
        TickDriver { dt, total, next: 0 }
    }

    /// Total number of ticks this driver produces.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The simulation time at which the final tick ends.
    #[must_use]
    pub fn end_time(&self) -> SimTime {
        SimTime::from_micros(self.dt.as_micros() * self.total)
    }
}

impl Iterator for TickDriver {
    type Item = Tick;

    fn next(&mut self) -> Option<Tick> {
        if self.next >= self.total {
            return None;
        }
        let index = self.next;
        self.next += 1;
        Some(Tick {
            index,
            time: SimTime::from_micros(self.dt.as_micros() * (index + 1)),
            dt: self.dt,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TickDriver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_exact_count() {
        assert_eq!(TickDriver::new(SimTime::from_secs(1), 1800).count(), 1800);
    }

    #[test]
    fn tick_times_are_multiples_of_dt() {
        let ticks: Vec<_> = TickDriver::new(SimTime::from_millis(500), 4).collect();
        assert_eq!(ticks[0].time, SimTime::from_millis(500));
        assert_eq!(ticks[3].time, SimTime::from_secs(2));
        assert!(ticks.iter().all(|t| (t.dt_secs() - 0.5).abs() < 1e-12));
    }

    #[test]
    fn indices_are_sequential() {
        let idx: Vec<u64> = TickDriver::new(SimTime::from_secs(1), 5)
            .map(|t| t.index)
            .collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn end_time_matches_last_tick() {
        let d = TickDriver::new(SimTime::from_secs(2), 10);
        let end = d.end_time();
        assert_eq!(d.last().unwrap().time, end);
    }

    #[test]
    fn exact_size_iterator() {
        let mut d = TickDriver::new(SimTime::from_secs(1), 3);
        assert_eq!(d.len(), 3);
        d.next();
        assert_eq!(d.len(), 2);
    }

    #[test]
    #[should_panic(expected = "tick length must be positive")]
    fn zero_dt_panics() {
        let _ = TickDriver::new(SimTime::ZERO, 1);
    }
}
