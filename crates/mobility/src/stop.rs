use rand::RngCore;

use mobigrid_geo::Point;

use crate::{MobilityModel, MobilityPattern};

/// Stop State (SS): the node never moves.
///
/// Thirty of the paper's 140 nodes are in this state (five per building) —
/// students parked in the library for hours. Under an ideal update policy
/// even these nodes report every second; the distance filter removes
/// essentially all of that traffic.
///
/// # Examples
///
/// ```
/// use mobigrid_mobility::{MobilityModel, StopModel};
/// use mobigrid_geo::Point;
/// use rand::SeedableRng;
///
/// let mut m = StopModel::new(Point::new(3.0, 4.0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(m.step(1.0, &mut rng), Point::new(3.0, 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopModel {
    position: Point,
}

impl StopModel {
    /// Creates a stationary node at `position`.
    #[must_use]
    pub const fn new(position: Point) -> Self {
        StopModel { position }
    }
}

impl MobilityModel for StopModel {
    fn step(&mut self, _dt: f64, _rng: &mut dyn RngCore) -> Point {
        self.position
    }

    fn position(&self) -> Point {
        self.position
    }

    fn pattern(&self) -> MobilityPattern {
        MobilityPattern::Stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn never_moves() {
        let start = Point::new(-2.0, 9.0);
        let mut m = StopModel::new(start);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(m.step(1.0, &mut rng), start);
        }
        assert_eq!(m.position(), start);
    }

    #[test]
    fn reports_stop_pattern_and_never_finishes() {
        let m = StopModel::new(Point::ORIGIN);
        assert_eq!(m.pattern(), MobilityPattern::Stop);
        assert!(!m.is_finished());
    }
}
