use rand::{Rng, RngCore};

use mobigrid_geo::{Point, Rect};

use crate::{MobilityModel, MobilityPattern};

/// Linear Movement State indoors: straight hallway legs between random
/// targets inside a building footprint.
///
/// This realises the paper's observation (9) — "in the building, Tom moves
/// toward a destination with continuous velocity, but some changes in
/// direction occur in accordance with the structure of the hallway". The
/// node picks a uniform random target in the rectangle, walks straight to it
/// at constant speed, then picks the next target. Velocity is constant and
/// direction changes are sparse, so the ADF classifier sees this as LMS —
/// unlike [`RandomWalk`](crate::RandomWalk), which turns every second.
///
/// Table 1 assigns this pattern to 30 nodes (five per building) at
/// ≤ 1.5 m/s.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mobigrid_geo::GeoError> {
/// use mobigrid_mobility::{IndoorWalker, MobilityModel};
/// use mobigrid_geo::{Point, Rect};
/// use rand::SeedableRng;
///
/// let hall = Rect::new(Point::new(0.0, 0.0), Point::new(60.0, 40.0))?;
/// let mut w = IndoorWalker::new(hall, Point::new(30.0, 20.0), 1.5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// for _ in 0..300 {
///     assert!(hall.contains(w.step(1.0, &mut rng)));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IndoorWalker {
    bounds: Rect,
    position: Point,
    target: Option<Point>,
    speed: f64,
    /// When set, the walking speed is redrawn from this range at the start
    /// of each leg.
    speed_range: Option<(f64, f64)>,
}

impl IndoorWalker {
    /// Creates a walker in `bounds`, starting at `start` (clamped inside),
    /// walking at `speed` m/s.
    ///
    /// # Panics
    ///
    /// Panics when `speed` is negative or non-finite.
    #[must_use]
    pub fn new(bounds: Rect, start: Point, speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed >= 0.0,
            "speed must be non-negative"
        );
        IndoorWalker {
            bounds,
            position: bounds.clamp_point(start),
            target: None,
            speed,
            speed_range: None,
        }
    }

    /// Creates a walker whose pace varies: each hallway leg draws a fresh
    /// speed from `speed_range` (m/s). People do not cross a building at a
    /// perfectly constant pace, and the Table-1 specification gives indoor
    /// linear movers a range (≤ 1.5 m/s) rather than one value.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, non-positive or non-finite.
    #[must_use]
    pub fn with_speed_range(bounds: Rect, start: Point, speed_range: (f64, f64)) -> Self {
        let (lo, hi) = speed_range;
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo,
            "speed range must be positive and ordered"
        );
        IndoorWalker {
            bounds,
            position: bounds.clamp_point(start),
            target: None,
            speed: (lo + hi) / 2.0,
            speed_range: Some(speed_range),
        }
    }

    /// The building footprint the walker stays inside.
    #[must_use]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The walking speed in m/s.
    #[must_use]
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// The current leg's destination, if one is active.
    #[must_use]
    pub fn target(&self) -> Option<Point> {
        self.target
    }

    fn pick_target(&mut self, rng: &mut dyn RngCore) -> Point {
        let u: f64 = rng.gen();
        let v: f64 = rng.gen();
        self.bounds.point_at_uv(u, v)
    }
}

impl MobilityModel for IndoorWalker {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> Point {
        if dt <= 0.0 || self.speed == 0.0 {
            return self.position;
        }
        let mut remaining = self.speed * dt;
        while remaining > 0.0 {
            let target = match self.target {
                Some(t) => t,
                None => {
                    let t = self.pick_target(rng);
                    self.target = Some(t);
                    if let Some((lo, hi)) = self.speed_range {
                        self.speed = rng.gen_range(lo..=hi);
                    }
                    t
                }
            };
            let to_target = self.position.distance_to(target);
            if remaining < to_target {
                let t = remaining / to_target;
                self.position = self.position.lerp(target, t);
                remaining = 0.0;
            } else {
                self.position = target;
                remaining -= to_target;
                self.target = None;
                if to_target == 0.0 {
                    // Degenerate target (picked our own position): resample
                    // next loop, but avoid spinning when bounds collapse to
                    // a point.
                    if self.bounds.area() == 0.0 {
                        break;
                    }
                }
            }
        }
        self.position
    }

    fn position(&self) -> Point {
        self.position
    }

    fn pattern(&self) -> MobilityPattern {
        MobilityPattern::Linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hall() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(60.0, 40.0)).unwrap()
    }

    #[test]
    fn stays_inside_the_building() {
        let mut w = IndoorWalker::new(hall(), Point::new(30.0, 20.0), 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            assert!(hall().contains(w.step(1.0, &mut rng)));
        }
    }

    #[test]
    fn moves_at_constant_speed_between_targets() {
        let mut w = IndoorWalker::new(hall(), Point::new(30.0, 20.0), 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut prev = w.position();
        for _ in 0..500 {
            let p = w.step(1.0, &mut rng);
            // Displacement is at most speed*dt (less only when a leg ends
            // exactly at the target... it still continues to the next leg,
            // so displacement can drop below the cap only via turning).
            assert!(prev.distance_to(p) <= 1.5 + 1e-9);
            prev = p;
        }
    }

    #[test]
    fn direction_changes_are_sparse() {
        // Count direction changes > 30 degrees per step; hallway walking
        // should turn far less often than once per step.
        let mut w = IndoorWalker::new(hall(), Point::new(30.0, 20.0), 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = w.position();
        let mut prev_heading: Option<mobigrid_geo::Heading> = None;
        let mut turns = 0;
        let steps = 600;
        for _ in 0..steps {
            let p = w.step(1.0, &mut rng);
            if let Some(h) = (p - prev).heading() {
                if let Some(ph) = prev_heading {
                    if ph.angle_to(h) > 30f64.to_radians() {
                        turns += 1;
                    }
                }
                prev_heading = Some(h);
            }
            prev = p;
        }
        assert!(turns < steps / 5, "turned {turns} times in {steps} steps");
    }

    #[test]
    fn zero_speed_is_stationary() {
        let mut w = IndoorWalker::new(hall(), Point::new(5.0, 5.0), 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(w.step(10.0, &mut rng), Point::new(5.0, 5.0));
    }

    #[test]
    fn degenerate_bounds_do_not_hang() {
        let point_rect = Rect::new(Point::new(3.0, 3.0), Point::new(3.0, 3.0)).unwrap();
        let mut w = IndoorWalker::new(point_rect, Point::new(3.0, 3.0), 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(w.step(10.0, &mut rng), Point::new(3.0, 3.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut w = IndoorWalker::new(hall(), Point::new(30.0, 20.0), 1.5);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| w.step(1.0, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(8), run(8));
    }

    #[test]
    fn classified_as_linear() {
        let w = IndoorWalker::new(hall(), Point::ORIGIN, 1.0);
        assert_eq!(w.pattern(), MobilityPattern::Linear);
    }
}
