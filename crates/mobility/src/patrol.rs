use rand::{Rng, RngCore};

use mobigrid_geo::{Point, Polyline};

use crate::{LoopMode, MobilityModel, MobilityPattern, PathFollower};

/// A road patroller: ping-pong travel along a road, resampling its speed
/// from a range at every end-to-end traversal.
///
/// Table 1 specifies road nodes by a *velocity range* (humans 1–4 m/s,
/// vehicles 4–10 m/s): a pedestrian sometimes strolls and sometimes jogs, a
/// vehicle's pace varies with traffic. `RoadPatroller` realises that by
/// holding speed constant within one traversal — so the motion still reads
/// as Linear Movement to the classifier — and drawing a fresh speed from the
/// range at each turnaround.
///
/// # Examples
///
/// ```
/// use mobigrid_mobility::{MobilityModel, RoadPatroller};
/// use mobigrid_geo::{Point, Polyline};
/// use rand::SeedableRng;
///
/// let road = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)]).unwrap();
/// let mut p = RoadPatroller::new(road.clone(), (1.0, 4.0), 0.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// for _ in 0..200 {
///     let pos = p.step(1.0, &mut rng);
///     assert!(road.distance_to_point(pos) < 1e-6);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RoadPatroller {
    follower: PathFollower,
    speed_range: (f64, f64),
    seen_traversals: u64,
}

impl RoadPatroller {
    /// Creates a patroller on `road` with speeds drawn from `speed_range`
    /// (m/s), starting `start_offset` metres along the road.
    ///
    /// The initial speed is the range midpoint; the first resample happens
    /// at the first turnaround.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, negative or non-finite.
    #[must_use]
    pub fn new(road: Polyline, speed_range: (f64, f64), start_offset: f64) -> Self {
        let (lo, hi) = speed_range;
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo,
            "speed range must be positive and ordered"
        );
        let mut follower = PathFollower::new(road, (lo + hi) / 2.0, LoopMode::PingPong);
        if start_offset > 0.0 {
            // Walk the follower to its starting offset without randomness.
            let mut no_rng = rand::rngs::mock::StepRng::new(0, 0);
            follower.step(start_offset / follower.speed(), &mut no_rng);
        }
        // Walking to the start offset may already have counted traversals
        // (for offsets beyond one road length); they must not trigger an
        // immediate resample.
        let seen_traversals = follower.completed_traversals();
        RoadPatroller {
            follower,
            speed_range,
            seen_traversals,
        }
    }

    /// The speed range the patroller samples from.
    #[must_use]
    pub fn speed_range(&self) -> (f64, f64) {
        self.speed_range
    }

    /// The current traversal's speed in m/s.
    #[must_use]
    pub fn current_speed(&self) -> f64 {
        self.follower.speed()
    }
}

impl MobilityModel for RoadPatroller {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> Point {
        let before = self.follower.completed_traversals();
        let pos = self.follower.step(dt, rng);
        let after = self.follower.completed_traversals();
        if after > before && after > self.seen_traversals {
            self.seen_traversals = after;
            let (lo, hi) = self.speed_range;
            self.follower.set_speed(rng.gen_range(lo..=hi));
        }
        pos
    }

    fn position(&self) -> Point {
        self.follower.position()
    }

    fn pattern(&self) -> MobilityPattern {
        MobilityPattern::Linear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn road() -> Polyline {
        Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]).unwrap()
    }

    #[test]
    fn starts_at_offset_with_midpoint_speed() {
        let p = RoadPatroller::new(road(), (2.0, 6.0), 30.0);
        assert_eq!(p.position(), Point::new(30.0, 0.0));
        assert_eq!(p.current_speed(), 4.0);
    }

    #[test]
    fn resamples_speed_at_turnarounds() {
        let mut p = RoadPatroller::new(road(), (1.0, 4.0), 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let initial = p.current_speed();
        let mut changed = false;
        for _ in 0..200 {
            p.step(1.0, &mut rng);
            if (p.current_speed() - initial).abs() > 1e-9 {
                changed = true;
                break;
            }
        }
        assert!(changed, "speed never resampled across turnarounds");
        let (lo, hi) = p.speed_range();
        assert!(p.current_speed() >= lo && p.current_speed() <= hi);
    }

    #[test]
    fn stays_on_the_road_forever() {
        let r = road();
        let mut p = RoadPatroller::new(r.clone(), (4.0, 10.0), 50.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let pos = p.step(1.0, &mut rng);
            assert!(r.distance_to_point(pos) < 1e-6);
        }
        assert!(!p.is_finished());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = RoadPatroller::new(road(), (1.0, 4.0), 10.0);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| p.step(1.0, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    #[should_panic(expected = "positive and ordered")]
    fn empty_range_panics() {
        let _ = RoadPatroller::new(road(), (4.0, 2.0), 0.0);
    }

    #[test]
    fn reports_linear_pattern() {
        let p = RoadPatroller::new(road(), (1.0, 2.0), 0.0);
        assert_eq!(p.pattern(), MobilityPattern::Linear);
    }
}
