use std::fmt;

use serde::{Deserialize, Serialize};

/// The paper's three mobility patterns (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MobilityPattern {
    /// Stop State (SS): no movement — studying in the library.
    Stop,
    /// Random Movement State (RMS): slow, direction-changing movement —
    /// a coffee break, moving between lab benches.
    Random,
    /// Linear Movement State (LMS): purposeful movement toward a
    /// destination — walking a road, driving, crossing a hallway.
    Linear,
}

impl MobilityPattern {
    /// The paper's abbreviation for the pattern.
    #[must_use]
    pub fn abbreviation(self) -> &'static str {
        match self {
            MobilityPattern::Stop => "SS",
            MobilityPattern::Random => "RMS",
            MobilityPattern::Linear => "LMS",
        }
    }
}

impl fmt::Display for MobilityPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// Whether a node is carried by a pedestrian or a vehicle — the distinction
/// Table 1 uses to assign road nodes their velocity range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// A walking or running person (1–4 m/s on roads).
    Human,
    /// A vehicle-mounted node (4–10 m/s on roads).
    Vehicle,
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeType::Human => write!(f, "human"),
            NodeType::Vehicle => write!(f, "vehicle"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(MobilityPattern::Stop.to_string(), "SS");
        assert_eq!(MobilityPattern::Random.to_string(), "RMS");
        assert_eq!(MobilityPattern::Linear.to_string(), "LMS");
    }

    #[test]
    fn node_types_display() {
        assert_eq!(NodeType::Human.to_string(), "human");
        assert_eq!(NodeType::Vehicle.to_string(), "vehicle");
    }
}
