use rand::{Rng, RngCore};

use mobigrid_geo::{Heading, Point, Rect, Vec2};

use crate::{MobilityModel, MobilityPattern};

/// The Gauss–Markov mobility model, bounded to a rectangle.
///
/// Speed and heading evolve as mean-reverting AR(1) processes:
///
/// ```text
/// vₜ = α·vₜ₋₁ + (1 − α)·v̄ + √(1 − α²)·σᵥ·w
/// θₜ = α·θₜ₋₁ + (1 − α)·θ̄ + √(1 − α²)·σθ·w
/// ```
///
/// The memory parameter `α ∈ [0, 1]` spans the whole spectrum the paper's
/// classifier must cope with: `α → 0` is memoryless random walk (RMS-like),
/// `α → 1` is nearly straight-line motion (LMS-like). That makes this model
/// the natural stress test for the Figure-2 classifier beyond the paper's
/// three idealised generators, and a drop-in alternative workload for the
/// benches.
///
/// Steps that would leave `bounds` reflect off the walls (the mean heading
/// flips with them, so the process does not fight the boundary).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mobigrid_geo::GeoError> {
/// use mobigrid_mobility::{GaussMarkov, MobilityModel};
/// use mobigrid_geo::{Point, Rect};
/// use rand::SeedableRng;
///
/// let area = Rect::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0))?;
/// let mut gm = GaussMarkov::new(area, area.center(), 0.85, 1.5, 0.5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// for _ in 0..500 {
///     assert!(area.contains(gm.step(1.0, &mut rng)));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussMarkov {
    bounds: Rect,
    position: Point,
    alpha: f64,
    mean_speed: f64,
    speed_sigma: f64,
    heading_sigma: f64,
    speed: f64,
    heading: f64,
    mean_heading: f64,
}

impl GaussMarkov {
    /// Default heading noise in radians.
    pub const DEFAULT_HEADING_SIGMA: f64 = 0.6;

    /// Creates a walker in `bounds` starting at `start` (clamped inside),
    /// with memory `alpha ∈ [0, 1]`, mean speed `mean_speed` m/s and speed
    /// noise `speed_sigma`.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `[0, 1]` or the speed parameters are
    /// negative/non-finite.
    #[must_use]
    pub fn new(bounds: Rect, start: Point, alpha: f64, mean_speed: f64, speed_sigma: f64) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1]"
        );
        assert!(
            mean_speed.is_finite() && mean_speed >= 0.0,
            "mean speed must be non-negative"
        );
        assert!(
            speed_sigma.is_finite() && speed_sigma >= 0.0,
            "speed sigma must be non-negative"
        );
        GaussMarkov {
            bounds,
            position: bounds.clamp_point(start),
            alpha,
            mean_speed,
            speed_sigma,
            heading_sigma: Self::DEFAULT_HEADING_SIGMA,
            speed: mean_speed,
            heading: 0.0,
            mean_heading: 0.0,
        }
    }

    /// Overrides the heading noise (radians per step).
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is negative or non-finite.
    #[must_use]
    pub fn with_heading_sigma(mut self, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "heading sigma must be non-negative"
        );
        self.heading_sigma = sigma;
        self
    }

    /// The memory parameter α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The current instantaneous speed in m/s.
    #[must_use]
    pub fn current_speed(&self) -> f64 {
        self.speed
    }

    /// A cheap standard-normal-ish sample: the sum of three uniforms on
    /// `[-1, 1]` (variance 1) — smooth enough for a mobility model without
    /// pulling in a distribution crate.
    fn noise(rng: &mut dyn RngCore) -> f64 {
        (0..3).map(|_| rng.gen_range(-1.0..=1.0)).sum()
    }
}

impl MobilityModel for GaussMarkov {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> Point {
        if dt <= 0.0 {
            return self.position;
        }
        let a = self.alpha;
        let shock = (1.0 - a * a).sqrt();
        self.speed = (a * self.speed
            + (1.0 - a) * self.mean_speed
            + shock * self.speed_sigma * Self::noise(rng))
        .max(0.0);
        self.heading = a * self.heading
            + (1.0 - a) * self.mean_heading
            + shock * self.heading_sigma * Self::noise(rng);

        let delta = Vec2::from_polar(self.speed * dt, Heading::from_radians(self.heading));
        let mut next = self.position + delta;
        // Reflect off the walls, flipping the process's heading state so the
        // mean reversion pulls away from the boundary rather than into it.
        if next.x < self.bounds.min().x || next.x > self.bounds.max().x {
            self.heading = std::f64::consts::PI - self.heading;
            self.mean_heading = std::f64::consts::PI - self.mean_heading;
            next.x = next.x.clamp(self.bounds.min().x, self.bounds.max().x);
        }
        if next.y < self.bounds.min().y || next.y > self.bounds.max().y {
            self.heading = -self.heading;
            self.mean_heading = -self.mean_heading;
            next.y = next.y.clamp(self.bounds.min().y, self.bounds.max().y);
        }
        self.position = next;
        self.position
    }

    fn position(&self) -> Point {
        self.position
    }

    fn pattern(&self) -> MobilityPattern {
        // High-memory Gauss–Markov motion is destination-like; low-memory is
        // random milling. 0.9 is the conventional boundary in the literature.
        if self.alpha >= 0.9 {
            MobilityPattern::Linear
        } else {
            MobilityPattern::Random
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn area() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(300.0, 200.0)).unwrap()
    }

    #[test]
    fn stays_in_bounds() {
        let mut gm = GaussMarkov::new(area(), area().center(), 0.8, 2.0, 0.7);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..3000 {
            assert!(area().contains(gm.step(1.0, &mut rng)));
        }
    }

    #[test]
    fn mean_speed_is_respected() {
        let mut gm = GaussMarkov::new(area(), area().center(), 0.7, 2.0, 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0.0;
        let mut prev = gm.position();
        let n = 2000;
        for _ in 0..n {
            let p = gm.step(1.0, &mut rng);
            total += prev.distance_to(p);
            prev = p;
        }
        let mean = total / f64::from(n);
        assert!(
            (mean - 2.0).abs() < 0.5,
            "observed mean speed {mean}, expected ~2"
        );
    }

    #[test]
    fn high_memory_turns_less_per_step_than_low_memory() {
        // Tortuosity metric: the mean per-step heading change. High α damps
        // the innovation noise (√(1−α²) shocks), so consecutive steps point
        // nearly the same way; low α re-rolls the heading every step.
        let run = |alpha: f64| {
            let mut gm =
                GaussMarkov::new(area(), area().center(), alpha, 1.5, 0.2).with_heading_sigma(0.5);
            let mut rng = StdRng::seed_from_u64(7);
            let mut prev_pos = gm.position();
            let mut prev_heading: Option<mobigrid_geo::Heading> = None;
            let mut total_turn = 0.0;
            let mut turns = 0u32;
            for _ in 0..400 {
                let p = gm.step(1.0, &mut rng);
                if let Some(h) = (p - prev_pos).heading() {
                    if let Some(ph) = prev_heading {
                        total_turn += ph.angle_to(h);
                        turns += 1;
                    }
                    prev_heading = Some(h);
                }
                prev_pos = p;
            }
            total_turn / f64::from(turns.max(1))
        };
        let straight = run(0.98);
        let jittery = run(0.1);
        assert!(
            jittery > straight * 2.0,
            "mean turn straight={straight} jittery={jittery}"
        );
    }

    #[test]
    fn pattern_follows_memory() {
        let gm_fast = GaussMarkov::new(area(), Point::ORIGIN, 0.95, 2.0, 0.5);
        let gm_slow = GaussMarkov::new(area(), Point::ORIGIN, 0.3, 1.0, 0.5);
        assert_eq!(gm_fast.pattern(), MobilityPattern::Linear);
        assert_eq!(gm_slow.pattern(), MobilityPattern::Random);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut gm = GaussMarkov::new(area(), area().center(), 0.8, 2.0, 0.5);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| gm.step(1.0, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }

    #[test]
    fn zero_dt_is_noop() {
        let mut gm = GaussMarkov::new(area(), area().center(), 0.8, 2.0, 0.5);
        let mut rng = StdRng::seed_from_u64(6);
        let before = gm.position();
        assert_eq!(gm.step(0.0, &mut rng), before);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn invalid_alpha_panics() {
        let _ = GaussMarkov::new(area(), Point::ORIGIN, 1.5, 1.0, 0.1);
    }
}
