use rand::{Rng, RngCore};

use mobigrid_geo::{Heading, Point, Rect, Vec2};

use crate::{MobilityModel, MobilityPattern};

/// Random Movement State (RMS): slow, frequently turning movement inside a
/// footprint.
///
/// Models a student on a coffee break or moving between lab benches: each
/// step the node resamples its speed from `[0, max_speed]` and perturbs its
/// heading by a uniformly random turn up to ±`max_turn` radians. The walk is
/// confined to `bounds` — a step that would leave the rectangle reflects off
/// the wall.
///
/// Table 1 assigns this pattern to 30 nodes (five per building) with
/// `max_speed = 1 m/s`.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), mobigrid_geo::GeoError> {
/// use mobigrid_mobility::{MobilityModel, RandomWalk};
/// use mobigrid_geo::{Point, Rect};
/// use rand::SeedableRng;
///
/// let lab = Rect::new(Point::new(0.0, 0.0), Point::new(30.0, 20.0))?;
/// let mut walk = RandomWalk::new(lab, Point::new(15.0, 10.0), 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// for _ in 0..600 {
///     let p = walk.step(1.0, &mut rng);
///     assert!(lab.contains(p));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RandomWalk {
    bounds: Rect,
    position: Point,
    heading: Heading,
    max_speed: f64,
    max_turn: f64,
}

impl RandomWalk {
    /// Default maximum per-step heading change: ±90°.
    pub const DEFAULT_MAX_TURN: f64 = std::f64::consts::FRAC_PI_2;

    /// Creates a walk confined to `bounds`, starting at `start` (clamped
    /// into the bounds), with speeds in `[0, max_speed]` m/s.
    ///
    /// # Panics
    ///
    /// Panics when `max_speed` is negative or non-finite.
    #[must_use]
    pub fn new(bounds: Rect, start: Point, max_speed: f64) -> Self {
        assert!(
            max_speed.is_finite() && max_speed >= 0.0,
            "max speed must be non-negative"
        );
        RandomWalk {
            bounds,
            position: bounds.clamp_point(start),
            heading: Heading::EAST,
            max_speed,
            max_turn: Self::DEFAULT_MAX_TURN,
        }
    }

    /// Overrides the maximum per-step heading change in radians.
    ///
    /// # Panics
    ///
    /// Panics when `max_turn` is negative or non-finite.
    #[must_use]
    pub fn with_max_turn(mut self, max_turn: f64) -> Self {
        assert!(
            max_turn.is_finite() && max_turn >= 0.0,
            "max turn must be non-negative"
        );
        self.max_turn = max_turn;
        self
    }

    /// The confining rectangle.
    #[must_use]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The configured speed ceiling in m/s.
    #[must_use]
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// Reflects `p` into the bounds, flipping the heading component that hit
    /// a wall.
    fn reflect(&mut self, p: Point) -> Point {
        let mut v = Vec2::from_polar(1.0, self.heading);
        let mut q = p;
        if q.x < self.bounds.min().x || q.x > self.bounds.max().x {
            v.dx = -v.dx;
            q.x = q.x.clamp(self.bounds.min().x, self.bounds.max().x);
        }
        if q.y < self.bounds.min().y || q.y > self.bounds.max().y {
            v.dy = -v.dy;
            q.y = q.y.clamp(self.bounds.min().y, self.bounds.max().y);
        }
        if let Some(h) = v.heading() {
            self.heading = h;
        }
        q
    }
}

impl MobilityModel for RandomWalk {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> Point {
        if dt <= 0.0 {
            return self.position;
        }
        let turn = if self.max_turn > 0.0 {
            rng.gen_range(-self.max_turn..=self.max_turn)
        } else {
            0.0
        };
        self.heading = self.heading.rotated(turn);
        let speed = if self.max_speed > 0.0 {
            rng.gen_range(0.0..=self.max_speed)
        } else {
            0.0
        };
        let proposed = self.position + Vec2::from_polar(speed * dt, self.heading);
        self.position = self.reflect(proposed);
        self.position
    }

    fn position(&self) -> Point {
        self.position
    }

    fn pattern(&self) -> MobilityPattern {
        MobilityPattern::Random
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lab() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(30.0, 20.0)).unwrap()
    }

    #[test]
    fn stays_within_bounds() {
        let mut w = RandomWalk::new(lab(), Point::new(15.0, 10.0), 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let p = w.step(1.0, &mut rng);
            assert!(lab().contains(p), "escaped to {p}");
        }
    }

    #[test]
    fn start_outside_bounds_is_clamped() {
        let w = RandomWalk::new(lab(), Point::new(-10.0, 50.0), 1.0);
        assert_eq!(w.position(), Point::new(0.0, 20.0));
    }

    #[test]
    fn per_step_displacement_respects_speed_cap() {
        let mut w = RandomWalk::new(lab(), Point::new(15.0, 10.0), 0.7);
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev = w.position();
        for _ in 0..500 {
            let p = w.step(1.0, &mut rng);
            assert!(prev.distance_to(p) <= 0.7 + 1e-9);
            prev = p;
        }
    }

    #[test]
    fn zero_speed_is_stationary() {
        let mut w = RandomWalk::new(lab(), Point::new(5.0, 5.0), 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(w.step(1.0, &mut rng), Point::new(5.0, 5.0));
        }
    }

    #[test]
    fn non_positive_dt_is_noop() {
        let mut w = RandomWalk::new(lab(), Point::new(5.0, 5.0), 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let before = w.position();
        assert_eq!(w.step(0.0, &mut rng), before);
        assert_eq!(w.step(-1.0, &mut rng), before);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = |seed: u64| {
            let mut w = RandomWalk::new(lab(), Point::new(15.0, 10.0), 1.0);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| w.step(1.0, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn actually_moves_around() {
        let mut w = RandomWalk::new(lab(), Point::new(15.0, 10.0), 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let start = w.position();
        let mut max_dist: f64 = 0.0;
        for _ in 0..600 {
            let p = w.step(1.0, &mut rng);
            max_dist = max_dist.max(start.distance_to(p));
        }
        assert!(max_dist > 3.0, "walk barely moved: {max_dist}");
    }

    #[test]
    fn reports_random_pattern() {
        let w = RandomWalk::new(lab(), Point::ORIGIN, 1.0);
        assert_eq!(w.pattern(), MobilityPattern::Random);
        assert!(!w.is_finished());
    }
}
