//! Mobility models for mobile-grid nodes.
//!
//! Section 3.1 of the paper reduces the movements of campus users to three
//! patterns: **Stop State** (SS — sitting in a library), **Random Movement
//! State** (RMS — milling around a lab or coffee corner) and **Linear
//! Movement State** (LMS — walking or driving toward a destination). This
//! crate implements generators for each, plus the machinery to compose them
//! into daily schedules and to record/replay position traces:
//!
//! * [`StopModel`] — SS: a fixed position,
//! * [`RandomWalk`] — RMS: bounded jittery movement inside a footprint,
//! * [`PathFollower`] — LMS: arc-length travel along a route, with
//!   ping-pong patrolling for road nodes,
//! * [`IndoorWalker`] — LMS indoors: straight hallway legs between random
//!   targets,
//! * [`Schedule`] — phases composed into a day (Tom's §3.1 scenario),
//! * [`Trace`] / [`TraceReplay`] — recording and deterministic replay.
//!
//! All models implement [`MobilityModel`] and advance with an explicit
//! `dt`-second step and caller-supplied RNG, so whole populations evolve
//! deterministically from one master seed.
//!
//! # Examples
//!
//! ```
//! use mobigrid_mobility::{MobilityModel, PathFollower, LoopMode};
//! use mobigrid_geo::{Point, Polyline};
//! use rand::SeedableRng;
//!
//! let road = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]).unwrap();
//! let mut walker = PathFollower::new(road, 2.0, LoopMode::Once);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for _ in 0..10 {
//!     walker.step(1.0, &mut rng);
//! }
//! assert_eq!(walker.position(), Point::new(20.0, 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod gauss_markov;
mod indoor;
mod linear;
mod model;
mod patrol;
mod pattern;
mod random_walk;
mod schedule;
mod stop;
mod trace;

pub use engine::{MobilityEngine, MobilityKind};
pub use gauss_markov::GaussMarkov;
pub use indoor::IndoorWalker;
pub use linear::{LoopMode, PathFollower};
pub use model::{MobilityModel, PositionSample};
pub use patrol::RoadPatroller;
pub use pattern::{MobilityPattern, NodeType};
pub use random_walk::RandomWalk;
pub use schedule::{Phase, Schedule};
pub use stop::StopModel;
pub use trace::{Trace, TraceReplay};
