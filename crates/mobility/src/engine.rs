use rand::RngCore;

use mobigrid_geo::Point;

use crate::{
    GaussMarkov, IndoorWalker, MobilityModel, MobilityPattern, PathFollower, RandomWalk,
    RoadPatroller, Schedule, StopModel, TraceReplay,
};

/// Compact discriminant of a [`MobilityEngine`] variant.
///
/// Stored as a dense column by the simulation's SoA node store so tick
/// kernels can branch on one byte instead of chasing a vtable pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MobilityKind {
    /// [`StopModel`] — a fixed position (SS).
    Stop,
    /// [`RandomWalk`] — bounded jitter inside a footprint (RMS).
    RandomWalk,
    /// [`IndoorWalker`] — straight hallway legs between targets (indoor LMS).
    IndoorWalk,
    /// [`RoadPatroller`] — ping-pong patrolling along a road spine (LMS).
    RoadPatrol,
    /// [`PathFollower`] — arc-length travel along a route (LMS).
    Path,
    /// [`GaussMarkov`] — temporally correlated velocity process.
    GaussMarkov,
    /// [`Schedule`] — phases composed into a day.
    Schedule,
    /// [`TraceReplay`] — deterministic replay of a recorded trace.
    TraceReplay,
    /// An out-of-tree boxed [`MobilityModel`] (the escape hatch).
    Custom,
}

/// Every in-tree mobility model as one enum, dispatched by `match` instead
/// of a `Box<dyn MobilityModel>` vtable.
///
/// The simulation stores one engine per node in a dense column; enum
/// dispatch keeps the movement kernel branch-predictable and free of heap
/// pointer chasing for all in-tree models. [`MobilityEngine::Custom`] keeps
/// the model surface pluggable: anything implementing [`MobilityModel`]
/// still works, it just pays the old boxed-dispatch cost.
///
/// # Examples
///
/// ```
/// use mobigrid_mobility::{MobilityEngine, MobilityKind, MobilityModel, StopModel};
/// use mobigrid_geo::Point;
/// use rand::SeedableRng;
///
/// let mut engine = MobilityEngine::from(StopModel::new(Point::new(1.0, 2.0)));
/// assert_eq!(engine.kind(), MobilityKind::Stop);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// assert_eq!(engine.step(1.0, &mut rng), Point::new(1.0, 2.0));
/// ```
pub enum MobilityEngine {
    /// A parked node.
    Stop(StopModel),
    /// A bounded random walker.
    RandomWalk(RandomWalk),
    /// An indoor hallway walker.
    IndoorWalk(IndoorWalker),
    /// A road patroller.
    RoadPatrol(RoadPatroller),
    /// A route follower.
    Path(PathFollower),
    /// A Gauss–Markov process.
    GaussMarkov(GaussMarkov),
    /// A phase schedule.
    Schedule(Schedule),
    /// A trace replayer.
    TraceReplay(TraceReplay),
    /// Any other model, boxed (legacy dynamic dispatch).
    Custom(Box<dyn MobilityModel + Send>),
}

impl MobilityEngine {
    /// Wraps an out-of-tree model in the boxed escape-hatch variant.
    pub fn custom(model: impl MobilityModel + Send + 'static) -> Self {
        MobilityEngine::Custom(Box::new(model))
    }

    /// This engine's variant discriminant.
    #[must_use]
    pub fn kind(&self) -> MobilityKind {
        match self {
            MobilityEngine::Stop(_) => MobilityKind::Stop,
            MobilityEngine::RandomWalk(_) => MobilityKind::RandomWalk,
            MobilityEngine::IndoorWalk(_) => MobilityKind::IndoorWalk,
            MobilityEngine::RoadPatrol(_) => MobilityKind::RoadPatrol,
            MobilityEngine::Path(_) => MobilityKind::Path,
            MobilityEngine::GaussMarkov(_) => MobilityKind::GaussMarkov,
            MobilityEngine::Schedule(_) => MobilityKind::Schedule,
            MobilityEngine::TraceReplay(_) => MobilityKind::TraceReplay,
            MobilityEngine::Custom(_) => MobilityKind::Custom,
        }
    }

    /// The wrapped model as a trait object (read-only).
    fn inner(&self) -> &dyn MobilityModel {
        match self {
            MobilityEngine::Stop(m) => m,
            MobilityEngine::RandomWalk(m) => m,
            MobilityEngine::IndoorWalk(m) => m,
            MobilityEngine::RoadPatrol(m) => m,
            MobilityEngine::Path(m) => m,
            MobilityEngine::GaussMarkov(m) => m,
            MobilityEngine::Schedule(m) => m,
            MobilityEngine::TraceReplay(m) => m,
            MobilityEngine::Custom(m) => m.as_ref(),
        }
    }
}

impl MobilityModel for MobilityEngine {
    #[inline]
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> Point {
        match self {
            MobilityEngine::Stop(m) => m.step(dt, rng),
            MobilityEngine::RandomWalk(m) => m.step(dt, rng),
            MobilityEngine::IndoorWalk(m) => m.step(dt, rng),
            MobilityEngine::RoadPatrol(m) => m.step(dt, rng),
            MobilityEngine::Path(m) => m.step(dt, rng),
            MobilityEngine::GaussMarkov(m) => m.step(dt, rng),
            MobilityEngine::Schedule(m) => m.step(dt, rng),
            MobilityEngine::TraceReplay(m) => m.step(dt, rng),
            MobilityEngine::Custom(m) => m.step(dt, rng),
        }
    }

    fn position(&self) -> Point {
        self.inner().position()
    }

    fn pattern(&self) -> MobilityPattern {
        self.inner().pattern()
    }

    fn is_finished(&self) -> bool {
        self.inner().is_finished()
    }
}

impl std::fmt::Debug for MobilityEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MobilityEngine")
            .field("kind", &self.kind())
            .field("pattern", &self.pattern())
            .field("position", &self.position())
            .finish()
    }
}

impl From<StopModel> for MobilityEngine {
    fn from(m: StopModel) -> Self {
        MobilityEngine::Stop(m)
    }
}
impl From<RandomWalk> for MobilityEngine {
    fn from(m: RandomWalk) -> Self {
        MobilityEngine::RandomWalk(m)
    }
}
impl From<IndoorWalker> for MobilityEngine {
    fn from(m: IndoorWalker) -> Self {
        MobilityEngine::IndoorWalk(m)
    }
}
impl From<RoadPatroller> for MobilityEngine {
    fn from(m: RoadPatroller) -> Self {
        MobilityEngine::RoadPatrol(m)
    }
}
impl From<PathFollower> for MobilityEngine {
    fn from(m: PathFollower) -> Self {
        MobilityEngine::Path(m)
    }
}
impl From<GaussMarkov> for MobilityEngine {
    fn from(m: GaussMarkov) -> Self {
        MobilityEngine::GaussMarkov(m)
    }
}
impl From<Schedule> for MobilityEngine {
    fn from(m: Schedule) -> Self {
        MobilityEngine::Schedule(m)
    }
}
impl From<TraceReplay> for MobilityEngine {
    fn from(m: TraceReplay) -> Self {
        MobilityEngine::TraceReplay(m)
    }
}
impl From<Box<dyn MobilityModel + Send>> for MobilityEngine {
    fn from(m: Box<dyn MobilityModel + Send>) -> Self {
        MobilityEngine::Custom(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigrid_geo::Rect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bounds() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(50.0, 50.0)).unwrap()
    }

    #[test]
    fn kind_tracks_variant() {
        let e = MobilityEngine::from(StopModel::new(Point::new(0.0, 0.0)));
        assert_eq!(e.kind(), MobilityKind::Stop);
        let e = MobilityEngine::from(RandomWalk::new(bounds(), Point::new(5.0, 5.0), 1.0));
        assert_eq!(e.kind(), MobilityKind::RandomWalk);
        let e = MobilityEngine::custom(StopModel::new(Point::new(0.0, 0.0)));
        assert_eq!(e.kind(), MobilityKind::Custom);
    }

    /// Enum dispatch is a pure reorganisation: stepping an engine with a
    /// given RNG stream yields bit-identical positions to stepping the bare
    /// model with an identically seeded RNG.
    #[test]
    fn enum_dispatch_matches_direct_dispatch() {
        let start = Point::new(10.0, 10.0);
        let mut direct = RandomWalk::new(bounds(), start, 1.5);
        let mut engine = MobilityEngine::from(RandomWalk::new(bounds(), start, 1.5));
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(direct.step(1.0, &mut rng_a), engine.step(1.0, &mut rng_b));
        }
        assert_eq!(direct.position(), engine.position());
        assert_eq!(direct.pattern(), engine.pattern());
    }

    #[test]
    fn custom_box_round_trips_through_from() {
        let boxed: Box<dyn MobilityModel + Send> = Box::new(StopModel::new(Point::new(3.0, 4.0)));
        let mut e = MobilityEngine::from(boxed);
        assert_eq!(e.kind(), MobilityKind::Custom);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(e.step(1.0, &mut rng), Point::new(3.0, 4.0));
        assert!(!e.is_finished());
    }

    #[test]
    fn debug_is_informative() {
        let e = MobilityEngine::from(StopModel::new(Point::new(1.0, 2.0)));
        let s = format!("{e:?}");
        assert!(s.contains("Stop"), "{s}");
    }
}
