use rand::RngCore;

use mobigrid_geo::Point;

use crate::{MobilityModel, MobilityPattern, StopModel};

/// One leg of a [`Schedule`]: a mobility model plus an optional time limit.
///
/// A phase ends when its model reports
/// [`is_finished`](MobilityModel::is_finished) (a travel leg arriving), or
/// when its `duration` elapses (a timed stay), whichever comes first.
pub struct Phase {
    model: Box<dyn MobilityModel + Send>,
    duration: Option<f64>,
    label: String,
}

impl Phase {
    /// A phase that runs until its model finishes (e.g. a
    /// [`PathFollower`](crate::PathFollower) in `Once` mode reaching its
    /// destination).
    pub fn until_arrival(
        label: impl Into<String>,
        model: impl MobilityModel + Send + 'static,
    ) -> Self {
        Phase {
            model: Box::new(model),
            duration: None,
            label: label.into(),
        }
    }

    /// A phase that runs for a fixed `duration` seconds.
    ///
    /// # Panics
    ///
    /// Panics when `duration` is not strictly positive.
    pub fn timed(
        label: impl Into<String>,
        duration: f64,
        model: impl MobilityModel + Send + 'static,
    ) -> Self {
        assert!(
            duration.is_finite() && duration > 0.0,
            "phase duration must be positive"
        );
        Phase {
            model: Box::new(model),
            duration: Some(duration),
            label: label.into(),
        }
    }

    /// The phase's human-readable label (e.g. `"study in library"`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phase")
            .field("label", &self.label)
            .field("duration", &self.duration)
            .field("pattern", &self.model.pattern())
            .finish()
    }
}

/// A day in the life of a mobile node: an ordered sequence of [`Phase`]s.
///
/// This composes the primitive models into the paper's §3.1 scenario —
/// "walk to the library, study for an hour, walk to class, …". When the last
/// phase completes the node parks at its final position.
///
/// # Examples
///
/// ```
/// use mobigrid_mobility::{LoopMode, MobilityModel, PathFollower, Phase, Schedule, StopModel};
/// use mobigrid_geo::{Point, Polyline};
/// use rand::SeedableRng;
///
/// let walk = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)]).unwrap();
/// let mut day = Schedule::new(vec![
///     Phase::until_arrival("walk to desk", PathFollower::new(walk, 2.0, LoopMode::Once)),
///     Phase::timed("study", 10.0, StopModel::new(Point::new(6.0, 0.0))),
/// ]);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// for _ in 0..3 {
///     day.step(1.0, &mut rng); // arrives after 3 s
/// }
/// assert_eq!(day.current_phase_index(), 1);
/// ```
#[derive(Debug)]
pub struct Schedule {
    phases: Vec<Phase>,
    current: usize,
    elapsed_in_phase: f64,
    /// Park-at-the-end model once every phase completes.
    parked: Option<StopModel>,
}

impl Schedule {
    /// Creates a schedule from its phases, starting in the first.
    ///
    /// # Panics
    ///
    /// Panics on an empty phase list.
    #[must_use]
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "schedule needs at least one phase");
        Schedule {
            phases,
            current: 0,
            elapsed_in_phase: 0.0,
            parked: None,
        }
    }

    /// Index of the phase currently executing (or the last phase once the
    /// schedule has completed).
    #[must_use]
    pub fn current_phase_index(&self) -> usize {
        self.current.min(self.phases.len() - 1)
    }

    /// Label of the phase currently executing.
    #[must_use]
    pub fn current_phase_label(&self) -> &str {
        self.phases[self.current_phase_index()].label()
    }

    /// Total number of phases.
    #[must_use]
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }

    fn phase_done(&self) -> bool {
        let phase = &self.phases[self.current];
        if phase.model.is_finished() {
            return true;
        }
        match phase.duration {
            Some(d) => self.elapsed_in_phase >= d,
            None => false,
        }
    }

    fn advance_phase(&mut self) {
        let pos = self.phases[self.current].model.position();
        if self.current + 1 < self.phases.len() {
            self.current += 1;
            self.elapsed_in_phase = 0.0;
        } else {
            self.parked = Some(StopModel::new(pos));
        }
    }
}

impl MobilityModel for Schedule {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> Point {
        if dt <= 0.0 {
            return self.position();
        }
        if let Some(parked) = &mut self.parked {
            return parked.step(dt, rng);
        }
        // A single step may span a phase boundary; hand the full dt to the
        // active phase (phase granularity is 1 tick, like the paper's 1 s
        // sampling), then roll over if it completed.
        let pos = self.phases[self.current].model.step(dt, rng);
        self.elapsed_in_phase += dt;
        if self.phase_done() {
            self.advance_phase();
        }
        pos
    }

    fn position(&self) -> Point {
        if let Some(parked) = &self.parked {
            return parked.position();
        }
        self.phases[self.current].model.position()
    }

    fn pattern(&self) -> MobilityPattern {
        if self.parked.is_some() {
            return MobilityPattern::Stop;
        }
        self.phases[self.current].model.pattern()
    }

    fn is_finished(&self) -> bool {
        self.parked.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoopMode, PathFollower, RandomWalk};
    use mobigrid_geo::{Polyline, Rect};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn walk_to(x: f64, speed: f64) -> PathFollower {
        let p = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(x, 0.0)]).unwrap();
        PathFollower::new(p, speed, LoopMode::Once)
    }

    #[test]
    fn runs_phases_in_order() {
        let mut s = Schedule::new(vec![
            Phase::until_arrival("walk", walk_to(4.0, 2.0)),
            Phase::timed("rest", 3.0, StopModel::new(Point::new(4.0, 0.0))),
        ]);
        let mut r = rng();
        assert_eq!(s.current_phase_label(), "walk");
        s.step(1.0, &mut r);
        assert_eq!(s.current_phase_index(), 0);
        s.step(1.0, &mut r); // arrives at 4.0
        assert_eq!(s.current_phase_index(), 1);
        assert_eq!(s.current_phase_label(), "rest");
        assert_eq!(s.pattern(), MobilityPattern::Stop);
    }

    #[test]
    fn completes_and_parks() {
        let mut s = Schedule::new(vec![Phase::timed(
            "brief stop",
            2.0,
            StopModel::new(Point::new(1.0, 1.0)),
        )]);
        let mut r = rng();
        s.step(1.0, &mut r);
        assert!(!s.is_finished());
        s.step(1.0, &mut r);
        assert!(s.is_finished());
        // Parked forever at the final position.
        for _ in 0..5 {
            assert_eq!(s.step(1.0, &mut r), Point::new(1.0, 1.0));
        }
        assert_eq!(s.pattern(), MobilityPattern::Stop);
    }

    #[test]
    fn timed_random_phase_then_walk() {
        let lab = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let mut s = Schedule::new(vec![
            Phase::timed(
                "coffee",
                5.0,
                RandomWalk::new(lab, Point::new(5.0, 5.0), 1.0),
            ),
            Phase::until_arrival("leave", walk_to(8.0, 4.0)),
        ]);
        let mut r = rng();
        for _ in 0..5 {
            assert_eq!(s.pattern(), MobilityPattern::Random);
            s.step(1.0, &mut r);
        }
        assert_eq!(s.pattern(), MobilityPattern::Linear);
    }

    #[test]
    fn pattern_reflects_current_phase() {
        let mut s = Schedule::new(vec![
            Phase::until_arrival("walk", walk_to(2.0, 2.0)),
            Phase::timed("sit", 1.0, StopModel::new(Point::new(2.0, 0.0))),
        ]);
        assert_eq!(s.pattern(), MobilityPattern::Linear);
        let mut r = rng();
        s.step(1.0, &mut r);
        assert_eq!(s.pattern(), MobilityPattern::Stop);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_schedule_panics() {
        let _ = Schedule::new(vec![]);
    }

    #[test]
    fn phase_count_and_labels() {
        let s = Schedule::new(vec![
            Phase::until_arrival("a", walk_to(1.0, 1.0)),
            Phase::until_arrival("b", walk_to(2.0, 1.0)),
        ]);
        assert_eq!(s.phase_count(), 2);
        assert_eq!(s.current_phase_label(), "a");
    }
}
