use rand::RngCore;

use mobigrid_geo::{Point, Polyline};

use crate::{MobilityModel, MobilityPattern};

/// What a [`PathFollower`] does on reaching the end of its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Stop at the destination; [`MobilityModel::is_finished`] becomes true.
    Once,
    /// Turn around and walk the path in the opposite direction, forever —
    /// how road nodes patrol their road in the Table-1 workload.
    PingPong,
}

/// Linear Movement State (LMS): constant-speed travel along a route.
///
/// The node advances `speed · dt` metres of arc length per step. Roads nodes
/// use [`LoopMode::PingPong`] to stay on their road for the whole
/// experiment; scenario legs (Tom walking gate B → library) use
/// [`LoopMode::Once`] and report finished on arrival.
///
/// # Examples
///
/// ```
/// use mobigrid_mobility::{LoopMode, MobilityModel, PathFollower};
/// use mobigrid_geo::{Point, Polyline};
/// use rand::SeedableRng;
///
/// let path = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]).unwrap();
/// let mut m = PathFollower::new(path, 4.0, LoopMode::Once);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// m.step(1.0, &mut rng);
/// assert_eq!(m.position(), Point::new(4.0, 0.0));
/// m.step(2.0, &mut rng); // overshoots; clamped at the destination
/// assert!(m.is_finished());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PathFollower {
    path: Polyline,
    speed: f64,
    mode: LoopMode,
    /// Arc-length progress along the current traversal direction.
    progress: f64,
    /// False while travelling start→end, true while travelling end→start.
    reversed: bool,
    finished: bool,
    traversals: u64,
}

impl PathFollower {
    /// Creates a follower at the start of `path` moving at `speed` m/s.
    ///
    /// # Panics
    ///
    /// Panics when `speed` is negative or non-finite.
    #[must_use]
    pub fn new(path: Polyline, speed: f64, mode: LoopMode) -> Self {
        assert!(
            speed.is_finite() && speed >= 0.0,
            "speed must be non-negative"
        );
        PathFollower {
            path,
            speed,
            mode,
            progress: 0.0,
            reversed: false,
            finished: false,
            traversals: 0,
        }
    }

    /// Number of end-to-end traversals completed so far (each ping-pong
    /// reversal counts one). Lets callers resample per-traversal parameters
    /// such as speed.
    #[must_use]
    pub fn completed_traversals(&self) -> u64 {
        self.traversals
    }

    /// The route being followed.
    #[must_use]
    pub fn path(&self) -> &Polyline {
        &self.path
    }

    /// The travel speed in m/s.
    #[must_use]
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Changes the travel speed (e.g. a vehicle resampling per traversal).
    ///
    /// # Panics
    ///
    /// Panics when `speed` is negative or non-finite.
    pub fn set_speed(&mut self, speed: f64) {
        assert!(
            speed.is_finite() && speed >= 0.0,
            "speed must be non-negative"
        );
        self.speed = speed;
    }

    /// Arc-length progress from the start of the current traversal.
    #[must_use]
    pub fn progress(&self) -> f64 {
        self.progress
    }

    fn current_position(&self) -> Point {
        let s = if self.reversed {
            self.path.length() - self.progress
        } else {
            self.progress
        };
        self.path.point_at_distance(s)
    }
}

impl MobilityModel for PathFollower {
    fn step(&mut self, dt: f64, _rng: &mut dyn RngCore) -> Point {
        if dt <= 0.0 || self.finished {
            return self.current_position();
        }
        let total = self.path.length();
        let mut remaining = self.speed * dt;
        while remaining > 0.0 {
            let to_end = total - self.progress;
            if remaining < to_end {
                self.progress += remaining;
                remaining = 0.0;
            } else {
                remaining -= to_end;
                self.progress = total;
                self.traversals += 1;
                match self.mode {
                    LoopMode::Once => {
                        self.finished = true;
                        break;
                    }
                    LoopMode::PingPong => {
                        // Turn around and spend the remainder going back.
                        self.reversed = !self.reversed;
                        self.progress = 0.0;
                        if total == 0.0 {
                            break; // degenerate path: avoid spinning forever
                        }
                    }
                }
            }
        }
        self.current_position()
    }

    fn position(&self) -> Point {
        self.current_position()
    }

    fn pattern(&self) -> MobilityPattern {
        MobilityPattern::Linear
    }

    fn is_finished(&self) -> bool {
        self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn ell() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
        ])
        .unwrap()
    }

    #[test]
    fn advances_by_speed_times_dt() {
        let mut m = PathFollower::new(ell(), 3.0, LoopMode::Once);
        let mut r = rng();
        assert_eq!(m.step(1.0, &mut r), Point::new(3.0, 0.0));
        assert_eq!(m.step(1.0, &mut r), Point::new(6.0, 0.0));
    }

    #[test]
    fn crosses_leg_boundaries_smoothly() {
        let mut m = PathFollower::new(ell(), 4.0, LoopMode::Once);
        let mut r = rng();
        m.step(3.0, &mut r); // 12 m along a 15 m path: 2 m up the second leg
        assert_eq!(m.position(), Point::new(10.0, 2.0));
    }

    #[test]
    fn once_mode_finishes_and_clamps() {
        let mut m = PathFollower::new(ell(), 10.0, LoopMode::Once);
        let mut r = rng();
        m.step(5.0, &mut r);
        assert!(m.is_finished());
        assert_eq!(m.position(), Point::new(10.0, 5.0));
        // Further steps do nothing.
        assert_eq!(m.step(1.0, &mut r), Point::new(10.0, 5.0));
    }

    #[test]
    fn ping_pong_bounces_between_endpoints() {
        let path = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]).unwrap();
        let mut m = PathFollower::new(path, 1.0, LoopMode::PingPong);
        let mut r = rng();
        for _ in 0..10 {
            m.step(1.0, &mut r);
        }
        assert_eq!(m.position(), Point::new(10.0, 0.0));
        for _ in 0..4 {
            m.step(1.0, &mut r);
        }
        assert_eq!(m.position(), Point::new(6.0, 0.0));
        assert!(!m.is_finished());
    }

    #[test]
    fn ping_pong_handles_overshoot_across_turnaround() {
        let path = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]).unwrap();
        let mut m = PathFollower::new(path, 4.0, LoopMode::PingPong);
        let mut r = rng();
        m.step(3.0, &mut r); // 12 m: reaches end (10) and walks 2 m back
        assert_eq!(m.position(), Point::new(8.0, 0.0));
    }

    #[test]
    fn zero_speed_never_moves() {
        let mut m = PathFollower::new(ell(), 0.0, LoopMode::PingPong);
        let mut r = rng();
        for _ in 0..5 {
            assert_eq!(m.step(1.0, &mut r), Point::new(0.0, 0.0));
        }
    }

    #[test]
    fn set_speed_takes_effect() {
        let mut m = PathFollower::new(ell(), 1.0, LoopMode::Once);
        let mut r = rng();
        m.step(1.0, &mut r);
        m.set_speed(5.0);
        assert_eq!(m.step(1.0, &mut r), Point::new(6.0, 0.0));
    }

    #[test]
    fn reports_linear_pattern() {
        let m = PathFollower::new(ell(), 1.0, LoopMode::Once);
        assert_eq!(m.pattern(), MobilityPattern::Linear);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_speed_panics() {
        let _ = PathFollower::new(ell(), -1.0, LoopMode::Once);
    }
}
