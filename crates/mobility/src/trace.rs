use std::fmt::Write as _;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use mobigrid_geo::Point;

use crate::{MobilityModel, MobilityPattern, PositionSample};

/// A recorded movement history: timestamped positions in time order.
///
/// Traces serve three purposes in the workspace: ground truth for location-
/// error measurement (the broker's estimate is compared against the trace),
/// deterministic replay via [`TraceReplay`], and workload export as CSV for
/// external plotting.
///
/// # Examples
///
/// ```
/// use mobigrid_mobility::Trace;
/// use mobigrid_geo::Point;
///
/// let mut t = Trace::new();
/// t.record(0.0, Point::new(0.0, 0.0));
/// t.record(1.0, Point::new(3.0, 4.0));
/// assert_eq!(t.total_distance(), 5.0);
/// assert_eq!(t.average_speed(), 5.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    samples: Vec<PositionSample>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics when `time_s` precedes the previous sample's time.
    pub fn record(&mut self, time_s: f64, position: Point) {
        if let Some(last) = self.samples.last() {
            assert!(
                time_s >= last.time_s,
                "trace samples must be recorded in time order"
            );
        }
        self.samples.push(PositionSample::new(time_s, position));
    }

    /// The recorded samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[PositionSample] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time span covered, in seconds (zero for fewer than two samples).
    #[must_use]
    pub fn duration(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.time_s - a.time_s,
            _ => 0.0,
        }
    }

    /// Total path length walked, in metres.
    #[must_use]
    pub fn total_distance(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| w[0].position.distance_to(w[1].position))
            .sum()
    }

    /// Mean speed over the trace in m/s (zero when duration is zero).
    #[must_use]
    pub fn average_speed(&self) -> f64 {
        let d = self.duration();
        if d == 0.0 {
            0.0
        } else {
            self.total_distance() / d
        }
    }

    /// The position at `time_s`, linearly interpolated between samples and
    /// clamped to the endpoints; `None` for an empty trace.
    #[must_use]
    pub fn position_at(&self, time_s: f64) -> Option<Point> {
        let first = self.samples.first()?;
        if time_s <= first.time_s {
            return Some(first.position);
        }
        let last = self.samples.last()?;
        if time_s >= last.time_s {
            return Some(last.position);
        }
        // Binary search the bracketing pair.
        let idx = self.samples.partition_point(|s| s.time_s <= time_s);
        let a = &self.samples[idx - 1];
        let b = &self.samples[idx];
        let span = b.time_s - a.time_s;
        if span == 0.0 {
            return Some(b.position);
        }
        let t = (time_s - a.time_s) / span;
        Some(a.position.lerp(b.position, t))
    }

    /// Serialises the trace as `time,x,y` CSV with a header row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,x,y\n");
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{:.3},{:.3},{:.3}",
                s.time_s, s.position.x, s.position.y
            );
        }
        out
    }
}

impl Extend<PositionSample> for Trace {
    fn extend<T: IntoIterator<Item = PositionSample>>(&mut self, iter: T) {
        for s in iter {
            self.record(s.time_s, s.position);
        }
    }
}

impl FromIterator<PositionSample> for Trace {
    fn from_iter<T: IntoIterator<Item = PositionSample>>(iter: T) -> Self {
        let mut t = Trace::new();
        t.extend(iter);
        t
    }
}

/// Replays a recorded [`Trace`] as a mobility model.
///
/// Useful for ablations that must hold the workload fixed while varying the
/// filter: record one population run, then replay it bit-identically under
/// every configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReplay {
    trace: Trace,
    clock_s: f64,
    pattern: MobilityPattern,
}

impl TraceReplay {
    /// Creates a replay of `trace`, reporting `pattern` as its mobility
    /// pattern.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    #[must_use]
    pub fn new(trace: Trace, pattern: MobilityPattern) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        TraceReplay {
            trace,
            clock_s: 0.0,
            pattern,
        }
    }

    /// Elapsed replay time in seconds.
    #[must_use]
    pub fn clock(&self) -> f64 {
        self.clock_s
    }
}

impl MobilityModel for TraceReplay {
    fn step(&mut self, dt: f64, _rng: &mut dyn RngCore) -> Point {
        if dt > 0.0 {
            self.clock_s += dt;
        }
        self.position()
    }

    fn position(&self) -> Point {
        self.trace
            .position_at(self.clock_s)
            .expect("replay trace is non-empty")
    }

    fn pattern(&self) -> MobilityPattern {
        self.pattern
    }

    fn is_finished(&self) -> bool {
        self.clock_s >= self.trace.duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.record(0.0, Point::new(0.0, 0.0));
        t.record(1.0, Point::new(2.0, 0.0));
        t.record(3.0, Point::new(2.0, 4.0));
        t
    }

    #[test]
    fn distance_duration_speed() {
        let t = sample_trace();
        assert_eq!(t.total_distance(), 6.0);
        assert_eq!(t.duration(), 3.0);
        assert_eq!(t.average_speed(), 2.0);
    }

    #[test]
    fn position_at_interpolates() {
        let t = sample_trace();
        assert_eq!(t.position_at(0.5), Some(Point::new(1.0, 0.0)));
        assert_eq!(t.position_at(2.0), Some(Point::new(2.0, 2.0)));
    }

    #[test]
    fn position_at_clamps_to_ends() {
        let t = sample_trace();
        assert_eq!(t.position_at(-5.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(t.position_at(99.0), Some(Point::new(2.0, 4.0)));
    }

    #[test]
    fn empty_trace_has_no_position() {
        assert_eq!(Trace::new().position_at(0.0), None);
        assert_eq!(Trace::new().average_speed(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_recording_panics() {
        let mut t = Trace::new();
        t.record(2.0, Point::ORIGIN);
        t.record(1.0, Point::ORIGIN);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_trace().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "time_s,x,y");
        assert_eq!(lines[1], "0.000,0.000,0.000");
    }

    #[test]
    fn replay_follows_the_trace() {
        let mut r = TraceReplay::new(sample_trace(), MobilityPattern::Linear);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(r.position(), Point::new(0.0, 0.0));
        r.step(1.0, &mut rng);
        assert_eq!(r.position(), Point::new(2.0, 0.0));
        r.step(1.0, &mut rng);
        assert_eq!(r.position(), Point::new(2.0, 2.0));
        assert!(!r.is_finished());
        r.step(1.0, &mut rng);
        assert!(r.is_finished());
    }

    #[test]
    fn trace_collects_from_iterator() {
        let t: Trace = vec![
            PositionSample::new(0.0, Point::new(0.0, 0.0)),
            PositionSample::new(1.0, Point::new(1.0, 0.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 2);
    }
}
