use rand::RngCore;
use serde::{Deserialize, Serialize};

use mobigrid_geo::Point;

use crate::MobilityPattern;

/// A timestamped position, the unit of every trace and location update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PositionSample {
    /// Simulation time in seconds.
    pub time_s: f64,
    /// Where the node was at that time.
    pub position: Point,
}

impl PositionSample {
    /// Creates a sample.
    #[must_use]
    pub const fn new(time_s: f64, position: Point) -> Self {
        PositionSample { time_s, position }
    }
}

/// A mobility generator: owns a node's kinematic state and advances it in
/// discrete time steps.
///
/// Models take the RNG by `&mut dyn RngCore` so the trait stays
/// object-safe — schedules hold heterogeneous boxed phases — while the caller
/// keeps control of seeding (one deterministic stream per node).
pub trait MobilityModel {
    /// Advances the node by `dt` seconds and returns the new position.
    ///
    /// Implementations must treat `dt <= 0` as a no-op.
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> Point;

    /// The node's current position.
    fn position(&self) -> Point;

    /// The mobility pattern this model realises.
    fn pattern(&self) -> MobilityPattern;

    /// Whether the model has finished its motion (reached its destination).
    /// Perpetual models (stopping, wandering, patrolling) never finish.
    fn is_finished(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_round_trips_fields() {
        let s = PositionSample::new(3.5, Point::new(1.0, 2.0));
        assert_eq!(s.time_s, 3.5);
        assert_eq!(s.position, Point::new(1.0, 2.0));
    }

    #[test]
    fn trait_is_object_safe() {
        fn _assert(_: &dyn MobilityModel) {}
    }
}
