//! Property-based tests for the mobility models.

use mobigrid_geo::{Point, Polyline, Rect};
use mobigrid_mobility::{
    IndoorWalker, LoopMode, MobilityModel, PathFollower, RandomWalk, StopModel, Trace,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn random_walk_never_escapes_bounds(
        seed in any::<u64>(),
        w in 5.0..100.0f64,
        h in 5.0..100.0f64,
        speed in 0.0..5.0f64,
    ) {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(w, h)).unwrap();
        let mut walk = RandomWalk::new(bounds, bounds.center(), speed);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(bounds.contains(walk.step(1.0, &mut rng)));
        }
    }

    #[test]
    fn random_walk_step_length_bounded_by_speed(
        seed in any::<u64>(),
        speed in 0.1..5.0f64,
        dt in 0.1..3.0f64,
    ) {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0)).unwrap();
        let mut walk = RandomWalk::new(bounds, bounds.center(), speed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev = walk.position();
        for _ in 0..100 {
            let p = walk.step(dt, &mut rng);
            prop_assert!(prev.distance_to(p) <= speed * dt + 1e-9);
            prev = p;
        }
    }

    #[test]
    fn path_follower_distance_travelled_matches_speed(
        speed in 0.1..10.0f64,
        steps in 1usize..50,
    ) {
        let path = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1000.0, 0.0),
        ]).unwrap();
        let mut m = PathFollower::new(path, speed, LoopMode::Once);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..steps {
            m.step(1.0, &mut rng);
        }
        let expected = (speed * steps as f64).min(1000.0);
        prop_assert!((m.position().x - expected).abs() < 1e-6);
    }

    #[test]
    fn ping_pong_position_stays_on_path(
        speed in 0.1..20.0f64,
        steps in 1usize..200,
    ) {
        let path = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(50.0, 30.0),
        ]).unwrap();
        let mut m = PathFollower::new(path.clone(), speed, LoopMode::PingPong);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..steps {
            let p = m.step(1.0, &mut rng);
            prop_assert!(path.distance_to_point(p) < 1e-6);
        }
    }

    #[test]
    fn indoor_walker_never_escapes(
        seed in any::<u64>(),
        speed in 0.1..3.0f64,
    ) {
        let hall = Rect::new(Point::new(10.0, 10.0), Point::new(70.0, 50.0)).unwrap();
        let mut w = IndoorWalker::new(hall, hall.center(), speed);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..300 {
            prop_assert!(hall.contains(w.step(1.0, &mut rng)));
        }
    }

    #[test]
    fn stop_model_is_exactly_stationary(x in -1e4..1e4f64, y in -1e4..1e4f64, seed in any::<u64>()) {
        let p = Point::new(x, y);
        let mut m = StopModel::new(p);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert_eq!(m.step(1.0, &mut rng), p);
        }
    }

    #[test]
    fn trace_interpolation_brackets_samples(
        xs in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 2..30),
        q in 0.0..1.0f64,
    ) {
        let mut t = Trace::new();
        for (i, (x, y)) in xs.iter().enumerate() {
            t.record(i as f64, Point::new(*x, *y));
        }
        let query = q * t.duration();
        let p = t.position_at(query).unwrap();
        // Interpolated point lies within the bounding box of the samples.
        let bb = Rect::bounding(xs.iter().map(|&(x, y)| Point::new(x, y))).unwrap();
        prop_assert!(bb.inflated(1e-9).contains(p));
    }

    #[test]
    fn trace_average_speed_is_nonnegative_and_finite(
        xs in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 2..30),
    ) {
        let mut t = Trace::new();
        for (i, (x, y)) in xs.iter().enumerate() {
            t.record(i as f64, Point::new(*x, *y));
        }
        let v = t.average_speed();
        prop_assert!(v >= 0.0 && v.is_finite());
        // Average speed ≤ max instantaneous speed over 1 s steps.
        let max_step: f64 = t.samples().windows(2)
            .map(|w| w[0].position.distance_to(w[1].position))
            .fold(0.0, f64::max);
        prop_assert!(v <= max_step + 1e-9);
    }
}
