//! Proof that the steady-state tick path is allocation-free.
//!
//! A counting global allocator wraps [`std::alloc::System`] and tallies
//! every `alloc`/`alloc_zeroed`/`realloc` on a thread-local counter. After
//! warming a single-threaded 140-node ADF simulation past its one-time
//! setup (first-contact broker registrations, classifier-window fill,
//! initial clustering, high-water marks of the reused scratch buffers),
//! every further [`MobileGridSim::step`] must leave the counter untouched.
//!
//! Scope of the claim, as documented in `DESIGN.md` ("Tick memory model"):
//!
//! * **threads = 1** — with more worker threads the executor's transient
//!   spawn scaffolding allocates; the simulation state itself still does
//!   not.
//! * **between reclusterings** — the periodic BSAS recluster rebuilds the
//!   cluster set and legitimately allocates, so the measured window is
//!   placed strictly between recluster ticks.
//! * **synthetic mobility** — `PathFollower`/`StopModel` ground truth; the
//!   campus workload's occasional route re-planning allocates by design.
//!
//! This lives in its own integration-test binary because installing a
//! `#[global_allocator]` is process-wide and needs `unsafe`, which the
//! bench library itself forbids.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, MobileGridSim, MobileNode, SimBuilder};
use mobigrid_campus::{RegionId, RegionKind};
use mobigrid_geo::{Point, Polyline};
use mobigrid_mobility::{LoopMode, MobilityPattern, NodeType, PathFollower, StopModel};
use mobigrid_wireless::{AccessNetwork, Gateway, GatewayKind, MnId};

/// Counts allocations made by the current thread. Frees are deliberately
/// not counted: a steady-state tick must not *request* memory; returning
/// it would equally be a violation of "no heap traffic", but alloc-side
/// counting alone already catches every alloc/free pair.
struct CountingAllocator;

thread_local! {
    // `const` init keeps first access from allocating (lazy TLS would
    // recurse into the allocator under measurement).
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn allocation_count() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn walker(id: u32, speed: f64) -> MobileNode {
    let y = f64::from(id) * 10.0;
    let path = Polyline::new(vec![Point::new(0.0, y), Point::new(2000.0, y)])
        .expect("two distinct points");
    MobileNode::new(
        MnId::new(id),
        RegionId::from_index(6),
        RegionKind::Road,
        NodeType::Human,
        MobilityPattern::Linear,
        PathFollower::new(path, speed, LoopMode::PingPong),
        u64::from(id),
    )
}

fn parked(id: u32) -> MobileNode {
    MobileNode::new(
        MnId::new(id),
        RegionId::from_index(0),
        RegionKind::Building,
        NodeType::Human,
        MobilityPattern::Stop,
        StopModel::new(Point::new(500.0, f64::from(id) * 10.0)),
        u64::from(id),
    )
}

/// A 140-node single-threaded ADF simulation with an access network, like
/// the paper's evaluation but over allocation-free synthetic mobility.
/// The recluster interval is pushed past the measured window so the test
/// pins the *steady state* between reclusterings.
fn steady_state_sim() -> MobileGridSim {
    let nodes: Vec<MobileNode> = (0..140u32)
        .map(|i| {
            if i % 4 == 3 {
                parked(i)
            } else {
                walker(i, 0.5 + f64::from(i % 7))
            }
        })
        .collect();
    let adf = AdfConfig {
        recluster_interval: 10_000,
        ..AdfConfig::new(1.0)
    };
    let network = AccessNetwork::new(vec![Gateway::new(
        0,
        GatewayKind::BaseStation,
        Point::new(1000.0, 700.0),
        10_000.0,
    )]);
    SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(adf).expect("valid config"))
        .network(network)
        .threads(1)
        .build()
        .expect("valid simulation")
}

#[test]
fn post_warmup_ticks_do_not_allocate() {
    let mut sim = steady_state_sim();

    // Warmup: classifier windows fill, the initial clustering runs, every
    // node makes first contact with the brokers and the network, and the
    // scratch buffers reach their high-water capacity.
    for _ in 0..60 {
        sim.step();
    }

    let before = allocation_count();
    let mut sent = 0u64;
    for _ in 0..30 {
        sent += u64::from(sim.step().sent);
    }
    let allocations = allocation_count() - before;

    assert_eq!(
        allocations, 0,
        "steady-state ticks allocated {allocations} times"
    );
    // The window did real work: the filter let some updates through and
    // the network carried them.
    assert!(sent > 0, "measured window transmitted nothing");
    assert!(sim.network().expect("attached").meter().messages() > 0);
}

/// The telemetry hooks must not cost the tick path its zero-allocation
/// property: with the default no-op recorder explicitly installed,
/// [`MobileGridSim::step_recorded`] is the same allocation-free loop as
/// [`MobileGridSim::step`].
#[test]
fn post_warmup_recorded_ticks_with_noop_recorder_do_not_allocate() {
    use mobigrid_telemetry::NoopRecorder;
    let mut sim = steady_state_sim();
    let mut rec = NoopRecorder;
    for _ in 0..60 {
        sim.step_recorded(&mut rec);
    }

    let before = allocation_count();
    let mut sent = 0u64;
    for _ in 0..30 {
        sent += u64::from(sim.step_recorded(&mut rec).sent);
    }
    let allocations = allocation_count() - before;

    assert_eq!(
        allocations, 0,
        "steady-state recorded ticks allocated {allocations} times"
    );
    assert!(sent > 0, "measured window transmitted nothing");
}

/// The columnar (SoA) engine is what makes the steady state allocation-
/// free, and this pins it directly: a population big enough for several
/// full 64-node shards plus a ragged tail, mixing enum-dispatched engine
/// variants, must sweep its position/RNG/engine columns without a single
/// allocation — no boxing in the dispatch, no per-tick column growth, no
/// scratch reallocation at shard boundaries.
#[test]
fn columnar_shard_sweep_does_not_allocate() {
    use mobigrid_mobility::MobilityKind;

    // 203 nodes = 3 full shards + a 11-node ragged tail.
    let nodes: Vec<MobileNode> = (0..203u32)
        .map(|i| {
            if i % 3 == 0 {
                parked(i)
            } else {
                walker(i, 0.75 + f64::from(i % 5))
            }
        })
        .collect();
    let adf = AdfConfig {
        recluster_interval: 10_000,
        ..AdfConfig::new(1.0)
    };
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(adf).expect("valid config"))
        .threads(1)
        .build()
        .expect("valid simulation");

    // This is really the columnar engine: the enum-dispatched kind column
    // spans both variants and the shard count covers a ragged tail.
    let kinds = sim.columns().mobility_kinds();
    assert!(kinds.contains(&MobilityKind::Path));
    assert!(kinds.contains(&MobilityKind::Stop));
    assert_eq!(sim.columns().len(), 203);

    for _ in 0..60 {
        sim.step();
    }

    let before = allocation_count();
    for _ in 0..30 {
        sim.step();
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "columnar shard sweep allocated"
    );
}

#[test]
fn warmup_is_where_the_allocations_happen() {
    // Sanity check on the methodology: the same counter does see the
    // build and warmup phase allocate, so a zero reading above is a real
    // property of the steady state, not a broken counter.
    let before = allocation_count();
    let mut sim = steady_state_sim();
    sim.step();
    assert!(
        allocation_count() > before,
        "building and first-stepping the sim must allocate"
    );
}
