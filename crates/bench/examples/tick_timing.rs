//! Minimal steady-state tick timer for interleaved A/B comparisons.
//!
//! ```text
//! cargo run --release -p mobigrid-bench --example tick_timing -- \
//!     [blocks_x] [blocks_y] [threads] [warmup] [ticks] [reps]
//! ```
//!
//! Builds the grid-city ADF simulation, warms it past first-contact
//! registrations and scratch high-water marks, then times `ticks` steps
//! `reps` times and prints each reading plus the best ns/tick. The best-of
//! metric is what `BENCH_tick.json` records: on noisy shared containers
//! only best-of or interleaved readings are meaningful.

use std::time::Instant;

use mobigrid_bench::build_city_sim;

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let bx = *args.first().unwrap_or(&8) as usize;
    let by = *args.get(1).unwrap_or(&8) as usize;
    let threads = *args.get(2).unwrap_or(&1) as usize;
    let warmup = *args.get(3).unwrap_or(&60);
    let ticks = *args.get(4).unwrap_or(&200);
    let reps = *args.get(5).unwrap_or(&5);

    let mut sim = build_city_sim(11, (bx, by), threads);
    sim.run(warmup);

    let mut best = u128::MAX;
    for rep in 0..reps {
        let started = Instant::now();
        sim.run(ticks);
        let per_tick = started.elapsed().as_nanos() / u128::from(ticks.max(1));
        best = best.min(per_tick);
        println!("rep {rep}: {per_tick} ns/tick");
    }
    println!("best: {best} ns/tick ({bx}x{by} city, {threads} threads)");
}
