//! Micro-benchmarks of the algorithmic kernels on the simulation's hot
//! path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mobigrid_adf::{DistanceFilter, MobilityClassifier};
use mobigrid_bench::{build_adf_sim, build_adf_sim_threaded, build_city_sim};
use mobigrid_campus::Campus;
use mobigrid_cluster::Bsas;
use mobigrid_forecast::{BrownPositionEstimator, Forecaster, PositionEstimator};
use mobigrid_geo::{Point, Polyline};
use mobigrid_hla::{FedTime, ObjectModel, Rti};
use mobigrid_sim::{EventQueue, SimTime};

fn bench_bsas_clustering(c: &mut Criterion) {
    // 110 moving nodes' velocity features, the per-recluster workload.
    let features: Vec<Vec<f64>> = (0..110)
        .map(|i| vec![1.0 + f64::from(i % 10) * 0.9])
        .collect();
    c.bench_function("bsas_cluster_110_nodes", |b| {
        b.iter(|| black_box(Bsas::new(1.0).cluster(black_box(&features))));
    });
}

fn bench_brown_smoother(c: &mut Criterion) {
    c.bench_function("brown_observe_forecast", |b| {
        let mut brown = mobigrid_forecast::BrownDouble::new(0.5).expect("valid");
        let mut x = 0.0;
        b.iter(|| {
            x += 1.0;
            brown.observe(black_box(x));
            black_box(brown.forecast(1.0))
        });
    });
}

fn bench_position_estimator(c: &mut Criterion) {
    c.bench_function("brown_position_observe_estimate", |b| {
        let mut est = BrownPositionEstimator::new(0.5).expect("valid");
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            est.observe(t, Point::new(1.3 * t, 0.2 * t));
            black_box(est.estimate(t + 1.0))
        });
    });
}

fn bench_distance_filter(c: &mut Criterion) {
    c.bench_function("distance_filter_observe", |b| {
        let mut df = DistanceFilter::new(2.0);
        let mut x = 0.0;
        b.iter(|| {
            x += 1.7;
            black_box(df.observe(Point::new(x, 0.0)))
        });
    });
}

fn bench_classifier(c: &mut Criterion) {
    c.bench_function("classifier_observe_classify", |b| {
        let mut cl = MobilityClassifier::new(10, 2.0);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            cl.observe(t, Point::new(1.2 * t, (t * 0.3).sin()));
            black_box(cl.classify())
        });
    });
}

fn bench_polyline_walk(c: &mut Criterion) {
    let road = Polyline::new(
        (0..20)
            .map(|i| Point::new(f64::from(i) * 25.0, f64::from(i % 3) * 10.0))
            .collect(),
    )
    .expect("valid polyline");
    let total = road.length();
    c.bench_function("polyline_point_at_distance", |b| {
        let mut s = 0.0;
        b.iter(|| {
            s = (s + 13.7) % total;
            black_box(road.point_at_distance(black_box(s)))
        });
    });
}

fn bench_campus_routing(c: &mut Criterion) {
    let campus = Campus::inha_like();
    let from = campus.waypoint("gate_a").expect("exists");
    let to = campus.entrance("B4").expect("exists");
    c.bench_function("campus_dijkstra_route", |b| {
        b.iter(|| black_box(campus.route(black_box(from), black_box(to))));
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1000", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_micros((i * 7919) % 1000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum += e.event;
            }
            black_box(sum)
        });
    });
}

fn bench_hla_update_reflect(c: &mut Criterion) {
    let mut fom = ObjectModel::new();
    let class = fom.add_object_class("C");
    let attr = fom.add_attribute(class, "a").expect("fresh");
    let rti = Rti::new();
    rti.create_federation("bench", fom).expect("fresh");
    let tx = rti.join("bench", "tx").expect("exists");
    let rx = rti.join("bench", "rx").expect("exists");
    tx.publish_object_class(class).expect("declared");
    rx.subscribe_object_class(class, &[attr]).expect("declared");
    tx.enable_time_regulation(FedTime::ZERO).expect("first");
    let obj = tx.register_object(class).expect("published");
    rx.tick().expect("joined");

    c.bench_function("hla_update_reflect_roundtrip", |b| {
        b.iter(|| {
            tx.update_attributes(obj, vec![(attr, vec![1, 2, 3, 4])], None)
                .expect("owned");
            black_box(rx.tick().expect("joined"))
        });
    });
}

fn bench_full_sim_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("full_140_node_tick", |b| {
        let mut sim = build_adf_sim(11, 1.0);
        b.iter(|| black_box(sim.step()));
    });
    g.finish();
}

/// Steady-state tick: the same pipelines as `tick_throughput`, but warmed
/// past first-contact registrations, classifier-window fill and the scratch
/// buffers' high-water marks before measurement begins. Post-warmup the
/// single-threaded tick path performs zero heap allocations (pinned by
/// `tests/zero_alloc.rs`), so this group is the honest per-tick cost of a
/// long campaign — `BENCH_tick.json`'s `steady_state` series.
fn bench_steady_state_tick(c: &mut Criterion) {
    const WARMUP_TICKS: u64 = 60;
    let mut g = c.benchmark_group("steady_state");
    g.sample_size(20);
    g.bench_function("campus_140_node_tick_warm", |b| {
        let mut sim = build_adf_sim(11, 1.0);
        sim.run(WARMUP_TICKS);
        b.iter(|| black_box(sim.step()));
    });
    g.bench_function("city_1140_node_tick_warm", |b| {
        let mut sim = build_city_sim(11, (8, 8), 1);
        sim.run(WARMUP_TICKS);
        b.iter(|| black_box(sim.step()));
    });
    g.finish();
}

/// What the flight recorder costs per tick: the warmed campus pipeline
/// stepped through `step_recorded` with the zero-sized [`NoopRecorder`]
/// (the `step()` fast path — must match `steady_state`) and with a
/// [`MemoryRecorder`], whose bounded ring absorbs the full causal event
/// stream (~5 events per node per tick). The gap between the two series
/// is the price of `--telemetry`, recorded in `BENCH_telemetry.json`.
fn bench_recording_overhead(c: &mut Criterion) {
    use mobigrid_telemetry::{MemoryRecorder, NoopRecorder};
    const WARMUP_TICKS: u64 = 60;
    let mut g = c.benchmark_group("recording_overhead");
    g.sample_size(20);
    g.bench_function("campus_140_node_tick_noop", |b| {
        let mut sim = build_adf_sim(11, 1.0);
        sim.run(WARMUP_TICKS);
        let mut rec = NoopRecorder;
        b.iter(|| black_box(sim.step_recorded(&mut rec)));
    });
    g.bench_function("campus_140_node_tick_memory", |b| {
        let mut sim = build_adf_sim(11, 1.0);
        sim.run(WARMUP_TICKS);
        let mut rec = MemoryRecorder::new();
        b.iter(|| black_box(sim.step_recorded(&mut rec)));
    });
    g.finish();
}

/// The fault channel's per-transmission overhead: the same frame pushed
/// through a lossless plan (pure hash rolls, no fault taken) and through a
/// lossy mix (drops, CRC-checked corruption, deferral bookkeeping). This
/// bounds what `SimBuilder::faults` adds to every transmitted update.
fn bench_fault_channel(c: &mut Criterion) {
    use mobigrid_wireless::{
        AccessNetwork, FaultChannel, FaultPlan, Gateway, GatewayKind, LocationUpdate, MnId,
    };
    let mut g = c.benchmark_group("fault_channel");
    let plans = [
        ("lossless", FaultPlan::lossless()),
        (
            "lossy_mix",
            FaultPlan {
                drop_rate: 0.1,
                corrupt_rate: 0.05,
                delay_rate: 0.05,
                max_delay_ticks: 4,
                duplicate_rate: 0.05,
                flaps: Vec::new(),
            },
        ),
    ];
    for (name, plan) in plans {
        g.bench_function(BenchmarkId::new("transmit", name), |b| {
            let mut net = AccessNetwork::new(vec![Gateway::new(
                0,
                GatewayKind::BaseStation,
                Point::new(0.0, 0.0),
                1e6,
            )]);
            let mut ch = FaultChannel::new(plan.clone(), 7).expect("valid plan");
            let mut seq = 0u32;
            let mut scratch = Vec::new();
            b.iter(|| {
                seq = seq.wrapping_add(1);
                let lu = LocationUpdate::new(
                    MnId::new(1),
                    f64::from(seq),
                    Point::new(10.0, 20.0),
                    seq,
                );
                let event = ch.transmit(black_box(&mut net), black_box(&lu), 0, u64::from(seq));
                // Keep the in-flight queue bounded: drain due deferrals.
                ch.drain_due(u64::from(seq), &mut scratch);
                scratch.clear();
                black_box(event)
            });
        });
    }
    g.finish();
}

/// Tick throughput across the population × thread-count matrix: the paper's
/// 140-node campus and an 1140-node 8×8 grid city, each at 1–8 worker
/// threads. Results are bit-identical across the thread axis; only
/// wall-clock time changes. The single-thread rows are the baselines
/// recorded in `BENCH_tick.json`.
fn bench_tick_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("tick_throughput");
    g.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        g.bench_function(BenchmarkId::new("campus_140_nodes", threads), |b| {
            let mut sim = build_adf_sim_threaded(11, 1.0, threads);
            b.iter(|| black_box(sim.step()));
        });
        g.bench_function(BenchmarkId::new("city_1140_nodes", threads), |b| {
            let mut sim = build_city_sim(11, (8, 8), threads);
            b.iter(|| black_box(sim.step()));
        });
    }
    g.finish();
}

/// The columnar (SoA) engine across the scenario × thread matrix, plus
/// the `metro_100k` headline. Sims are built once and warmed before
/// measurement (the steady state is the allocation-free column sweep), so
/// this group is cheap enough to include the 100k-node city; its
/// single-thread ns/tick is the `metro_100k` row of `BENCH_tick.json`.
fn bench_soa_tick(c: &mut Criterion) {
    use mobigrid_experiments::scenarios;
    const WARMUP_TICKS: u64 = 30;
    let mut g = c.benchmark_group("soa_tick");
    g.sample_size(10);
    for name in ["campus_140", "city_1140"] {
        let s = scenarios::find(name).expect("registered scenario");
        for &threads in &[1usize, 2, 4] {
            let mut sim = s.build_sim(11, threads);
            sim.run(WARMUP_TICKS);
            g.bench_function(BenchmarkId::new(name, threads), |b| {
                b.iter(|| black_box(sim.step()));
            });
        }
    }
    let metro = scenarios::find("metro_100k").expect("registered scenario");
    let mut sim = metro.build_sim(11, 1);
    sim.run(5);
    g.bench_function(BenchmarkId::new("metro_100k", 1), |b| {
        b.iter(|| black_box(sim.step()));
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_bsas_clustering,
    bench_brown_smoother,
    bench_position_estimator,
    bench_distance_filter,
    bench_classifier,
    bench_polyline_walk,
    bench_campus_routing,
    bench_event_queue,
    bench_hla_update_reflect,
    bench_full_sim_tick,
    bench_steady_state_tick,
    bench_recording_overhead,
    bench_fault_channel,
    bench_tick_throughput,
    bench_soa_tick
);
criterion_main!(micro);
