//! Quality ablations over the design choices called out in `DESIGN.md`.
//!
//! This bench prints comparison tables rather than timings: each ablation
//! holds the workload fixed (same seed) and varies exactly one design
//! choice.
//!
//! ```text
//! cargo bench --bench ablations
//! ```

use mobigrid_adf::{
    AdaptiveDistanceFilter, AdfConfig, EstimatorKind, FilterPolicy, FilterReference,
};
use mobigrid_campus::Campus;
use mobigrid_experiments::campaign::{run_policy, PolicySpec, RunResult};
use mobigrid_experiments::config::ExperimentConfig;
use mobigrid_experiments::report::text_table;
use mobigrid_experiments::workload;

const TICKS: u64 = 400;

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        duration_ticks: TICKS,
        ..ExperimentConfig::default()
    }
}

fn summarise(run: &RunResult, ideal_sent: u64) -> (f64, f64, f64) {
    let reduction = 100.0 * (1.0 - run.total_sent() as f64 / ideal_sent as f64);
    let (with, without) = run.mean_rmse();
    (reduction, without, with)
}

/// Ablation 1 — adaptive per-cluster DTH vs one global DTH at equal factor.
fn ablation_adf_vs_general_df() {
    println!("== Ablation: ADF (per-cluster DTH) vs general DF (global DTH) ==");
    let cfg = cfg();
    let ideal = run_policy(&cfg, PolicySpec::Ideal).total_sent();
    let mut rows = Vec::new();
    for factor in [0.75, 1.0, 1.25] {
        for spec in [PolicySpec::GeneralDf(factor), PolicySpec::Adf(factor)] {
            let run = run_policy(&cfg, spec);
            let (red, rmse_raw, rmse_le) = summarise(&run, ideal);
            rows.push(vec![
                run.label.clone(),
                format!("{red:.1}%"),
                format!("{rmse_raw:.1}"),
                format!("{rmse_le:.1}"),
            ]);
        }
    }
    println!(
        "{}",
        text_table(
            &["policy", "traffic cut", "RMSE w/o LE", "RMSE w/ LE"],
            &rows
        )
    );
}

/// Ablation 2 — broker-side estimator choice at a fixed filter.
fn ablation_estimators() {
    println!("== Ablation: location estimator (ADF at 1.0 av) ==");
    let kinds: [(&str, EstimatorKind); 5] = [
        ("without LE", EstimatorKind::WithoutLe),
        ("dead reckoning", EstimatorKind::DeadReckoning),
        (
            "Brown speed+dir (paper)",
            EstimatorKind::Brown { alpha: 0.5 },
        ),
        (
            "Holt per axis",
            EstimatorKind::HoltAxes {
                alpha: 0.7,
                beta: 0.2,
            },
        ),
        (
            "Kalman const-velocity",
            EstimatorKind::KalmanCv {
                accel_sigma: 0.5,
                measurement_sigma: 0.5,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, kind) in kinds {
        let config = ExperimentConfig {
            estimator: kind,
            ..cfg()
        };
        let run = run_policy(&config, PolicySpec::Adf(1.0));
        let (with, without) = run.mean_rmse();
        rows.push(vec![
            name.to_string(),
            format!("{with:.2}"),
            format!("{:.1}%", 100.0 * with / without),
        ]);
    }
    println!(
        "{}",
        text_table(&["estimator", "RMSE (m)", "% of stale error"], &rows)
    );
}

/// Ablation 3 — sensitivity to the clustering similarity bound α.
fn ablation_alpha() {
    println!("== Ablation: sequential-clustering similarity bound α ==");
    let base = cfg();
    let ideal = run_policy(&base, PolicySpec::Ideal).total_sent();
    let mut rows = Vec::new();
    for alpha in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let config = ExperimentConfig {
            adf: AdfConfig { alpha, ..base.adf },
            ..base.clone()
        };
        let run = run_policy(&config, PolicySpec::Adf(1.0));
        let (red, rmse_raw, rmse_le) = summarise(&run, ideal);
        rows.push(vec![
            format!("{alpha}"),
            format!("{red:.1}%"),
            format!("{rmse_raw:.1}"),
            format!("{rmse_le:.1}"),
        ]);
    }
    println!(
        "{}",
        text_table(
            &["alpha (m/s)", "traffic cut", "RMSE w/o LE", "RMSE w/ LE"],
            &rows
        )
    );
}

/// Ablation 4 — classifier window length vs classification accuracy.
fn ablation_classifier_window() {
    println!("== Ablation: classifier window vs pattern-recovery accuracy ==");
    let campus = Campus::inha_like();
    let mut rows = Vec::new();
    for window in [4usize, 10, 20, 40] {
        let mut nodes = workload::generate_population(&campus, 42);
        let mut adf = AdaptiveDistanceFilter::new(AdfConfig {
            classifier_window: window,
            ..AdfConfig::new(1.0)
        })
        .expect("valid config");
        for t in 1..=120u64 {
            let obs: Vec<_> = nodes
                .iter_mut()
                .map(|n| {
                    let p = n.step(t as f64, 1.0);
                    (n.id(), p)
                })
                .collect();
            adf.decide_tick(t as f64, &obs);
        }
        let mut correct = 0usize;
        for n in &nodes {
            if adf.pattern_of(n.id()) == Some(n.declared_pattern()) {
                correct += 1;
            }
        }
        rows.push(vec![
            window.to_string(),
            format!("{correct}/{}", nodes.len()),
            format!("{:.1}%", 100.0 * correct as f64 / nodes.len() as f64),
        ]);
    }
    println!(
        "{}",
        text_table(&["window (ticks)", "recovered", "accuracy"], &rows)
    );
}

/// Ablation 5 — the paper's per-observation distance semantics vs the
/// dead-band (last-transmitted) variant.
fn ablation_filter_reference() {
    println!("== Ablation: distance reference semantics (ADF at 1.0 av) ==");
    let base = cfg();
    let ideal = run_policy(&base, PolicySpec::Ideal).total_sent();
    let mut rows = Vec::new();
    for (name, reference) in [
        (
            "previous observation (paper)",
            FilterReference::PreviousObservation,
        ),
        (
            "last transmitted (dead band)",
            FilterReference::LastTransmitted,
        ),
    ] {
        let config = ExperimentConfig {
            adf: AdfConfig {
                reference,
                ..base.adf
            },
            ..base.clone()
        };
        let run = run_policy(&config, PolicySpec::Adf(1.0));
        let (red, rmse_raw, rmse_le) = summarise(&run, ideal);
        rows.push(vec![
            name.to_string(),
            format!("{red:.1}%"),
            format!("{rmse_raw:.2}"),
            format!("{rmse_le:.2}"),
        ]);
    }
    println!(
        "{}",
        text_table(
            &["semantics", "traffic cut", "RMSE w/o LE", "RMSE w/ LE"],
            &rows
        )
    );
    println!("(the dead band bounds the stale error by the DTH, trading traffic for accuracy)\n");
}

/// Ablation 6 — the estimator's silence time constant τ.
fn ablation_silence_tau() {
    use mobigrid_forecast::{BrownPositionEstimator, PositionEstimator};
    use mobigrid_geo::Point;

    println!("== Ablation: estimator silence time constant τ ==");
    // One slow-traversal silence, reconstructed offline: a walker reports
    // at 3 m/s for 20 s, then moves at 1 m/s silently for 60 s.
    let mut rows = Vec::new();
    for tau in [5.0, 15.0, 30.0, 60.0] {
        let mut est = BrownPositionEstimator::new(0.5)
            .expect("valid alpha")
            .with_silence_tau(tau);
        for t in 0..20 {
            est.observe(f64::from(t), Point::new(3.0 * f64::from(t), 0.0));
        }
        let last_reported = Point::new(57.0, 0.0);
        let mut worst: f64 = 0.0;
        let mut total = 0.0;
        for s in 1..=60u32 {
            let truth = last_reported + mobigrid_geo::Vec2::new(f64::from(s), 0.0);
            let err = est
                .estimate(19.0 + f64::from(s))
                .expect("warmed up")
                .distance_to(truth);
            worst = worst.max(err);
            total += err;
        }
        rows.push(vec![
            format!("{tau:.0}s"),
            format!("{:.1}", total / 60.0),
            format!("{worst:.1}"),
        ]);
    }
    println!(
        "{}",
        text_table(&["tau", "mean error (m)", "worst error (m)"], &rows)
    );
    println!("(the best τ depends on how much slower silent nodes move: this single-slowdown");
    println!(" microbenchmark favours ~30 s, while the full campus workload — where silences");
    println!(" often end in reversals — is served better by the conservative 15 s default)\n");
}

fn main() {
    println!("mobigrid design ablations — {TICKS} simulated seconds each, seed 42\n");
    ablation_adf_vs_general_df();
    ablation_estimators();
    ablation_alpha();
    ablation_classifier_window();
    ablation_filter_reference();
    ablation_silence_tau();
}
