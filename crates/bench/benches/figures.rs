//! One Criterion benchmark per paper table/figure: times regenerating each
//! artefact from scratch (workload generation + simulation + aggregation)
//! at a reduced duration, and asserts the qualitative shape as a guard.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mobigrid_bench::bench_config;
use mobigrid_experiments::campaign::{run_campaign, run_policy, PolicySpec};
use mobigrid_experiments::{fig4, fig5, fig6, fig89, table1};

const TICKS: u64 = 120;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_spec", |b| {
        b.iter(|| {
            let t = table1::compute();
            assert_eq!(t.total(), 140);
            black_box(t.to_string())
        });
    });
}

fn bench_fig4_lu_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_lu_rate");
    g.sample_size(10);
    g.bench_function("ideal_vs_adf", |b| {
        b.iter(|| {
            let data = run_campaign(&bench_config(TICKS));
            let fig = fig4::compute(&data);
            assert!(fig.reduction_pct.last().expect("rows").1 > 0.0);
            black_box(fig)
        });
    });
    g.finish();
}

fn bench_fig5_accumulated(c: &mut Criterion) {
    let data = run_campaign(&bench_config(TICKS));
    c.bench_function("fig5_accumulated", |b| {
        b.iter(|| {
            let fig = fig5::compute(black_box(&data));
            assert!(fig.saved_vs_ideal.last().expect("rows").1 > 0);
            black_box(fig)
        });
    });
}

fn bench_fig6_by_region(c: &mut Criterion) {
    let data = run_campaign(&bench_config(TICKS));
    c.bench_function("fig6_by_region", |b| {
        b.iter(|| {
            let fig = fig6::compute(black_box(&data));
            assert_eq!(fig.rates.len(), 3);
            black_box(fig)
        });
    });
}

fn bench_fig7_rmse(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_rmse");
    g.sample_size(10);
    g.bench_function("with_and_without_le", |b| {
        b.iter(|| {
            let run = run_policy(&bench_config(TICKS), PolicySpec::Adf(1.0));
            let (with, without) = run.mean_rmse();
            assert!(with.is_finite() && without.is_finite());
            black_box((with, without))
        });
    });
    g.finish();
}

fn bench_fig8_fig9_rmse_by_region(c: &mut Criterion) {
    let data = run_campaign(&bench_config(TICKS));
    c.bench_function("fig8_fig9_rmse_by_region", |b| {
        b.iter(|| {
            let fig = fig89::compute(black_box(&data));
            assert_eq!(fig.without_le.len(), fig.with_le.len());
            black_box(fig)
        });
    });
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig4_lu_rate,
    bench_fig5_accumulated,
    bench_fig6_by_region,
    bench_fig7_rmse,
    bench_fig8_fig9_rmse_by_region
);
criterion_main!(figures);
