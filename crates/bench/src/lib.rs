//! Shared helpers for the benchmark harness.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one Criterion benchmark per paper table/figure, timing the
//!   regeneration of each from scratch,
//! * `ablations` — quality ablations over the design choices (`cargo bench
//!   --bench ablations` prints comparison tables),
//! * `micro` — micro-benchmarks of the hot algorithmic kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, MobileGridSim, SimBuilder};
use mobigrid_campus::Campus;
use mobigrid_experiments::config::ExperimentConfig;
use mobigrid_experiments::workload;

/// A short configuration used by the timing benches: full population, a few
/// simulated minutes.
#[must_use]
pub fn bench_config(ticks: u64) -> ExperimentConfig {
    ExperimentConfig {
        duration_ticks: ticks,
        ..ExperimentConfig::default()
    }
}

/// Builds a ready-to-run 140-node ADF simulation for micro/figure benches.
///
/// # Panics
///
/// Panics if the static configuration is invalid (it is not).
#[must_use]
pub fn build_adf_sim(seed: u64, factor: f64) -> MobileGridSim {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, seed);
    SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(factor)).expect("valid config"))
        .build()
        .expect("valid simulation")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        assert_eq!(bench_config(10).duration_ticks, 10);
        let mut sim = build_adf_sim(1, 1.0);
        let s = sim.step();
        assert_eq!(s.observed, 140);
    }
}
