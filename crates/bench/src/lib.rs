//! Shared helpers for the benchmark harness.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one Criterion benchmark per paper table/figure, timing the
//!   regeneration of each from scratch,
//! * `ablations` — quality ablations over the design choices (`cargo bench
//!   --bench ablations` prints comparison tables),
//! * `micro` — micro-benchmarks of the hot algorithmic kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, MobileGridSim, SimBuilder};
use mobigrid_campus::Campus;
use mobigrid_experiments::config::ExperimentConfig;
use mobigrid_experiments::workload;

/// A short configuration used by the timing benches: full population, a few
/// simulated minutes.
#[must_use]
pub fn bench_config(ticks: u64) -> ExperimentConfig {
    ExperimentConfig {
        duration_ticks: ticks,
        ..ExperimentConfig::default()
    }
}

/// Builds a ready-to-run 140-node ADF simulation for micro/figure benches.
///
/// # Panics
///
/// Panics if the static configuration is invalid (it is not).
#[must_use]
pub fn build_adf_sim(seed: u64, factor: f64) -> MobileGridSim {
    build_adf_sim_threaded(seed, factor, 1)
}

/// Like [`build_adf_sim`] but with an explicit worker-thread budget for the
/// parallel tick phases.
///
/// # Panics
///
/// Panics if the static configuration is invalid (it is not).
#[must_use]
pub fn build_adf_sim_threaded(seed: u64, factor: f64, threads: usize) -> MobileGridSim {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, seed);
    SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(factor)).expect("valid config"))
        .threads(threads)
        .build()
        .expect("valid simulation")
}

/// Builds an ADF simulation over a [`Campus::grid_city`] of `blocks` with
/// the Table-1 per-region densities — the scalability workload the
/// `tick_throughput` bench scales across thread counts. An 8×8 city holds
/// 1140 nodes.
///
/// # Panics
///
/// Panics if the static configuration is invalid (it is not).
#[must_use]
pub fn build_city_sim(seed: u64, blocks: (usize, usize), threads: usize) -> MobileGridSim {
    let city = Campus::grid_city(blocks.0, blocks.1);
    let nodes = workload::populate(&city, seed);
    SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid config"))
        .threads(threads)
        .build()
        .expect("valid simulation")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        assert_eq!(bench_config(10).duration_ticks, 10);
        let mut sim = build_adf_sim(1, 1.0);
        let s = sim.step();
        assert_eq!(s.observed, 140);
    }

    #[test]
    fn city_helper_reaches_bench_scale() {
        let mut sim = build_city_sim(1, (8, 8), 2);
        let s = sim.step();
        assert!(s.observed >= 1000, "observed {}", s.observed);
        assert_eq!(sim.threads(), 2);
    }
}
