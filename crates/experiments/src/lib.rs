//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§4).
//!
//! The evaluation runs 140 mobile nodes for 1800 seconds on the campus of
//! Figure 1, comparing the adaptive distance filter at three DTH sizes
//! (0.75 av, 1.0 av, 1.25 av) against the ideal (unfiltered) location-update
//! policy, and measuring both traffic (Figures 4–6) and location error with
//! and without the broker's estimator (Figures 7–9).
//!
//! * [`workload`] — the Table-1 population generator,
//! * [`config::ExperimentConfig`] — knobs with the paper's defaults,
//! * [`campaign`] — runs all policies once and shares the data,
//! * [`table1`], [`fig4`] … [`fig89`] — one module per table/figure, each
//!   with a `compute` function and a printable report.
//!
//! # Examples
//!
//! Regenerate a small version of Figure 4:
//!
//! ```
//! use mobigrid_experiments::{campaign, config::ExperimentConfig};
//!
//! let cfg = ExperimentConfig { duration_ticks: 60, ..ExperimentConfig::default() };
//! let data = campaign::run_campaign(&cfg);
//! let fig4 = mobigrid_experiments::fig4::compute(&data);
//! assert!(fig4.mean_lu_per_sec[0].1 > fig4.mean_lu_per_sec[3].1); // ideal > 1.25av
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod config;
pub mod experiment;

#[cfg(test)]
pub(crate) mod test_support {
    //! One shared medium-length campaign so every figure test exercises the
    //! same steady-state data without recomputing it.

    use std::sync::OnceLock;

    use crate::campaign::{run_campaign, CampaignData};
    use crate::config::ExperimentConfig;

    /// 600 ticks: long enough for the filter, clusters and estimators to
    /// reach steady state, short enough for test time.
    pub fn shared_campaign() -> &'static CampaignData {
        static DATA: OnceLock<CampaignData> = OnceLock::new();
        DATA.get_or_init(|| {
            run_campaign(&ExperimentConfig {
                duration_ticks: 600,
                ..ExperimentConfig::default()
            })
        })
    }
}
pub mod extensions;
pub mod fault_matrix;
pub mod federated;
pub mod intervals;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig89;
pub mod report;
pub mod robustness;
pub mod scalability;
pub mod scale;
pub mod scenarios;
pub mod table1;
pub mod trace;
pub mod workload;
