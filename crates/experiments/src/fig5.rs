//! Figure 5 — the number of accumulated LUs over the run.
//!
//! Paper's result: the ideal policy accumulates ~243k LUs over 1800 s; the
//! ADF saves roughly 75k / 130k / 187k of them at DTH 0.75 av / 1.0 av /
//! 1.25 av. We reproduce the shape: linear-ish growth with slope ordered
//! ideal > 0.75 av > 1.0 av > 1.25 av.

use std::fmt;

use crate::campaign::CampaignData;
use crate::report;

/// The computed figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// Per-run accumulated-LU series, ideal first.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Final accumulated totals per run, ideal first.
    pub totals: Vec<(String, u64)>,
    /// Updates saved vs ideal.
    pub saved_vs_ideal: Vec<(String, u64)>,
}

/// Derives the figure from campaign data.
#[must_use]
pub fn compute(data: &CampaignData) -> Fig5 {
    let mut series = Vec::new();
    let mut totals = Vec::new();
    let mut saved = Vec::new();
    let ideal_total = data.ideal.total_sent();
    for run in std::iter::once(&data.ideal).chain(data.adf.iter().map(|(_, r)| r)) {
        let mut acc = 0.0;
        let samples: Vec<(f64, f64)> = run
            .ticks
            .iter()
            .map(|t| {
                acc += f64::from(t.sent);
                (t.time_s, acc)
            })
            .collect();
        let total = run.total_sent();
        series.push((run.label.clone(), samples));
        totals.push((run.label.clone(), total));
        saved.push((run.label.clone(), ideal_total.saturating_sub(total)));
    }
    Fig5 {
        series,
        totals,
        saved_vs_ideal: saved,
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5. Accumulated LUs")?;
        let rows: Vec<Vec<String>> = self
            .totals
            .iter()
            .zip(&self.saved_vs_ideal)
            .map(|((label, t), (_, s))| vec![label.clone(), t.to_string(), s.to_string()])
            .collect();
        let table = report::text_table(&["policy", "accumulated LUs", "saved vs ideal"], &rows);
        writeln!(f, "{table}")
    }
}

impl Fig5 {
    /// The accumulated-LU series as CSV: `time_s` plus one column per
    /// policy.
    #[must_use]
    pub fn to_csv(&self) -> String {
        crate::report::multi_series_csv(&self.series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn data() -> &'static CampaignData {
        shared_campaign()
    }

    #[test]
    fn accumulation_is_monotone_nondecreasing() {
        let fig = compute(data());
        for (label, samples) in &fig.series {
            for w in samples.windows(2) {
                assert!(w[1].1 >= w[0].1, "{label} accumulation decreased");
            }
        }
    }

    #[test]
    fn totals_match_series_endpoints_and_ordering() {
        let fig = compute(data());
        for ((_, total), (_, samples)) in fig.totals.iter().zip(&fig.series) {
            assert_eq!(*total as f64, samples.last().unwrap().1);
        }
        // Savings grow with the DTH factor.
        let savings: Vec<u64> = fig.saved_vs_ideal[1..].iter().map(|s| s.1).collect();
        for w in savings.windows(2) {
            assert!(w[1] >= w[0], "savings not monotone: {savings:?}");
        }
        assert_eq!(fig.saved_vs_ideal[0].1, 0);
    }

    #[test]
    fn report_renders() {
        let text = compute(data()).to_string();
        assert!(text.contains("Figure 5"));
        assert!(text.contains("saved vs ideal"));
    }

    #[test]
    fn csv_is_monotone_in_each_column() {
        let csv = compute(data()).to_csv();
        let mut prev: Option<Vec<f64>> = None;
        for line in csv.lines().skip(1) {
            let vals: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|v| v.parse().unwrap())
                .collect();
            if let Some(p) = prev {
                for (a, b) in p.iter().zip(&vals) {
                    assert!(b >= a, "accumulation decreased in CSV");
                }
            }
            prev = Some(vals);
        }
    }
}
