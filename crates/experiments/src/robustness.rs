//! Seed-sweep robustness: are the paper's conclusions an artefact of one
//! random workload, or stable across draws?
//!
//! The paper reports a single simulation run. This module repeats the
//! campaign over several seeds and reports the mean ± standard deviation of
//! every headline metric, so each qualitative claim can be checked for
//! seed-robustness.

use std::fmt;

use mobigrid_sim::stats::Welford;

use crate::campaign::run_campaign;
use crate::config::ExperimentConfig;
use crate::report::text_table;

/// Aggregated statistics for one DTH factor across seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorStats {
    /// The DTH factor (× av).
    pub factor: f64,
    /// Traffic reduction vs ideal, percent.
    pub reduction_pct: Welford,
    /// RMSE without the location estimator, metres.
    pub rmse_without_le: Welford,
    /// RMSE with the location estimator, metres.
    pub rmse_with_le: Welford,
}

/// The sweep's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedSweep {
    /// The seeds evaluated.
    pub seeds: Vec<u64>,
    /// Ticks per run.
    pub duration_ticks: u64,
    /// One aggregate per DTH factor, in configuration order.
    pub factors: Vec<FactorStats>,
}

/// Runs the campaign once per seed — campaigns on separate threads, one per
/// seed — and aggregates the headline metrics in seed order (so the result
/// is identical to a sequential sweep).
///
/// # Panics
///
/// Panics on an empty seed list or if a worker thread panics.
#[must_use]
pub fn sweep_seeds(base: &ExperimentConfig, seeds: &[u64]) -> SeedSweep {
    assert!(!seeds.is_empty(), "sweep needs at least one seed");
    let mut factors: Vec<FactorStats> = base
        .dth_factors
        .iter()
        .map(|&factor| FactorStats {
            factor,
            reduction_pct: Welford::new(),
            rmse_without_le: Welford::new(),
            rmse_with_le: Welford::new(),
        })
        .collect();

    // Each seed's campaign is independent; fan out with scoped threads.
    let campaigns = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let cfg = ExperimentConfig {
                    seed,
                    ..base.clone()
                };
                scope.spawn(move |_| run_campaign(&cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("sweep scope panicked");

    for data in &campaigns {
        let ideal = data.ideal.total_sent() as f64;
        for (stats, (_, run)) in factors.iter_mut().zip(&data.adf) {
            stats
                .reduction_pct
                .push(100.0 * (1.0 - run.total_sent() as f64 / ideal));
            let (with, without) = run.mean_rmse();
            stats.rmse_with_le.push(with);
            stats.rmse_without_le.push(without);
        }
    }

    SeedSweep {
        seeds: seeds.to_vec(),
        duration_ticks: base.duration_ticks,
        factors,
    }
}

impl SeedSweep {
    /// Whether every headline claim held for every aggregate:
    ///
    /// * traffic reduction grows with the DTH factor,
    /// * wherever there is substantial error to recover (mean unassisted
    ///   RMSE above 10 m), the location estimator strictly reduces it,
    /// * and the estimator never meaningfully degrades accuracy anywhere
    ///   (within 5 % where the unassisted error is already small — at
    ///   0.75 av the filter passes most updates and both brokers are nearly
    ///   exact, so LE is a statistical dead heat there).
    #[must_use]
    pub fn conclusions_hold(&self) -> bool {
        let reductions_monotone = self
            .factors
            .windows(2)
            .all(|w| w[1].reduction_pct.mean() > w[0].reduction_pct.mean());
        let le_helps = self.factors.iter().all(|f| {
            let with = f.rmse_with_le.mean();
            let without = f.rmse_without_le.mean();
            if without > 10.0 {
                with < without
            } else {
                with <= without * 1.05
            }
        });
        reductions_monotone && le_helps
    }
}

fn mean_std(w: &Welford) -> String {
    format!("{:.1} ± {:.1}", w.mean(), w.std_dev())
}

impl fmt::Display for SeedSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Seed sweep: {} seeds × {} ticks",
            self.seeds.len(),
            self.duration_ticks
        )?;
        let rows: Vec<Vec<String>> = self
            .factors
            .iter()
            .map(|s| {
                vec![
                    format!("{:.2}av", s.factor),
                    mean_std(&s.reduction_pct),
                    mean_std(&s.rmse_without_le),
                    mean_std(&s.rmse_with_le),
                ]
            })
            .collect();
        let t = text_table(&["DTH", "reduction %", "RMSE w/o LE", "RMSE w/ LE"], &rows);
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "headline conclusions hold across seeds: {}",
            if self.conclusions_hold() { "yes" } else { "NO" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_aggregates_across_seeds() {
        let cfg = ExperimentConfig {
            duration_ticks: 400,
            ..ExperimentConfig::default()
        };
        let sweep = sweep_seeds(&cfg, &[1, 2, 3]);
        assert_eq!(sweep.factors.len(), 3);
        for s in &sweep.factors {
            assert_eq!(s.reduction_pct.count(), 3);
        }
        assert!(
            sweep.conclusions_hold(),
            "paper conclusions failed the sweep:\n{sweep}"
        );
        let text = sweep.to_string();
        assert!(text.contains("±"));
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_panics() {
        let _ = sweep_seeds(&ExperimentConfig::default(), &[]);
    }
}
