//! Figures 8 and 9 — RMSE of location error split by region type, without
//! (Fig. 8) and with (Fig. 9) the location estimator.
//!
//! Paper's result: road nodes accumulate roughly 4.5× (without LE) to 4.7×
//! (with LE) the building nodes' error — faster nodes travel farther between
//! surviving updates. We reproduce the shape: road RMSE is a multiple of
//! building RMSE under both brokers.

use std::fmt;

use crate::campaign::CampaignData;
use crate::report;

/// Per-kind error summary for one ADF factor under one broker arm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindErrorRow {
    /// DTH factor (× av).
    pub factor: f64,
    /// Mean road RMSE over the run, in metres.
    pub road: f64,
    /// Mean building RMSE over the run, in metres.
    pub building: f64,
}

impl KindErrorRow {
    /// Road error as a multiple of building error.
    #[must_use]
    pub fn road_to_building_ratio(&self) -> f64 {
        if self.building == 0.0 {
            f64::INFINITY
        } else {
            self.road / self.building
        }
    }
}

/// The computed pair of figures.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig89 {
    /// Figure 8 rows: without the estimator.
    pub without_le: Vec<KindErrorRow>,
    /// Figure 9 rows: with the estimator.
    pub with_le: Vec<KindErrorRow>,
}

/// Derives both figures from campaign data.
#[must_use]
pub fn compute(data: &CampaignData) -> Fig89 {
    let mut without = Vec::new();
    let mut with = Vec::new();
    for (factor, run) in &data.adf {
        let n = run.ticks.len().max(1) as f64;
        let mean =
            |get: fn(&mobigrid_adf::TickStats) -> f64| run.ticks.iter().map(get).sum::<f64>() / n;
        without.push(KindErrorRow {
            factor: *factor,
            road: mean(|t| t.road_rmse_without_le),
            building: mean(|t| t.building_rmse_without_le),
        });
        with.push(KindErrorRow {
            factor: *factor,
            road: mean(|t| t.road_rmse_with_le),
            building: mean(|t| t.building_rmse_with_le),
        });
    }
    Fig89 {
        without_le: without,
        with_le: with,
    }
}

fn rows_for(rows: &[KindErrorRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                format!("{:.2}av", r.factor),
                format!("{:.3}", r.road),
                format!("{:.3}", r.building),
                format!("{:.2}x", r.road_to_building_ratio()),
            ]
        })
        .collect()
}

impl fmt::Display for Fig89 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8. RMSE by region, without LE (metres)")?;
        let t8 = report::text_table(
            &["DTH", "road", "building", "road/building"],
            &rows_for(&self.without_le),
        );
        writeln!(f, "{t8}")?;
        writeln!(f, "Figure 9. RMSE by region, with LE (metres)")?;
        let t9 = report::text_table(
            &["DTH", "road", "building", "road/building"],
            &rows_for(&self.with_le),
        );
        writeln!(f, "{t9}")
    }
}

impl Fig89 {
    /// Both figures as one CSV: per-factor road/building RMSE for each
    /// broker arm.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .without_le
            .iter()
            .zip(&self.with_le)
            .map(|(wo, wi)| {
                vec![
                    format!("{:.2}", wo.factor),
                    format!("{:.4}", wo.road),
                    format!("{:.4}", wo.building),
                    format!("{:.4}", wi.road),
                    format!("{:.4}", wi.building),
                ]
            })
            .collect();
        crate::report::csv(
            &[
                "dth_factor",
                "road_rmse_no_le",
                "building_rmse_no_le",
                "road_rmse_le",
                "building_rmse_le",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn fig() -> Fig89 {
        compute(shared_campaign())
    }

    #[test]
    fn roads_err_more_than_buildings() {
        let f = fig();
        for row in f.without_le.iter().chain(&f.with_le) {
            assert!(
                row.road > row.building,
                "road error should dominate: {row:?}"
            );
        }
    }

    #[test]
    fn road_error_is_a_clear_multiple_without_le() {
        let f = fig();
        for row in &f.without_le {
            assert!(
                row.road_to_building_ratio() > 1.5,
                "ratio too small: {row:?}"
            );
        }
    }

    #[test]
    fn le_reduces_both_kinds() {
        let f = fig();
        for (wo, wi) in f.without_le.iter().zip(&f.with_le) {
            assert!(wi.road <= wo.road, "LE hurt road error: {wi:?} vs {wo:?}");
            assert!(
                wi.building <= wo.building * 1.05,
                "LE hurt building error: {wi:?} vs {wo:?}"
            );
        }
    }

    #[test]
    fn report_renders_both_figures() {
        let text = fig().to_string();
        assert!(text.contains("Figure 8"));
        assert!(text.contains("Figure 9"));
    }

    #[test]
    fn csv_pairs_both_broker_arms() {
        let csv = fig().to_csv();
        assert!(csv.starts_with("dth_factor,road_rmse_no_le"));
        assert_eq!(csv.lines().count(), 4);
    }
}
