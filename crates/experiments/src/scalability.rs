//! Scalability: how the ADF behaves as the deployment outgrows the paper's
//! 140-node campus.
//!
//! Uses [`Campus::grid_city`] to generate structurally comparable maps of
//! increasing size with the Table-1 per-region node densities, then runs the
//! ideal and ADF policies on each and reports traffic reduction and runtime.

use std::fmt;
use std::time::Instant;

use mobigrid_adf::{AdaptiveDistanceFilter, SimBuilder};
use mobigrid_campus::Campus;

use crate::config::ExperimentConfig;
use crate::report::text_table;
use crate::workload;

/// One city size's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// City dimensions in blocks.
    pub blocks: (usize, usize),
    /// Regions on the map.
    pub regions: usize,
    /// Node population.
    pub nodes: usize,
    /// Traffic reduction vs ideal, percent.
    pub reduction_pct: f64,
    /// Mean RMSE with the location estimator, metres.
    pub rmse_with_le: f64,
    /// Wall-clock seconds for the ADF run.
    pub runtime_s: f64,
}

/// The sweep's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityReport {
    /// Ticks simulated per run.
    pub duration_ticks: u64,
    /// One row per city size, smallest first.
    pub rows: Vec<ScaleRow>,
}

/// Runs the scalability sweep over the given city dimensions.
///
/// # Panics
///
/// Panics on an empty size list or zero-sized cities.
#[must_use]
pub fn sweep_city_sizes(cfg: &ExperimentConfig, sizes: &[(usize, usize)]) -> ScalabilityReport {
    assert!(!sizes.is_empty(), "sweep needs at least one city size");
    let mut rows = Vec::with_capacity(sizes.len());
    for &(bx, by) in sizes {
        let city = Campus::grid_city(bx, by);
        let nodes = workload::populate(&city, cfg.seed);
        let population = nodes.len();

        // Ideal baseline: every observation is transmitted, so the total is
        // population × ticks without running the simulation twice.
        let ideal_sent = population as u64 * cfg.duration_ticks;

        let started = Instant::now();
        let mut sim = SimBuilder::new()
            .nodes(nodes)
            .policy(AdaptiveDistanceFilter::new(cfg.adf).expect("validated configuration"))
            .estimator(cfg.estimator)
            .threads(cfg.runtime.threads)
            .build()
            .expect("valid simulation");
        let stats = sim.run(cfg.duration_ticks);
        let runtime_s = started.elapsed().as_secs_f64();

        let sent: u64 = stats.iter().map(|t| u64::from(t.sent)).sum();
        let rmse_with_le =
            stats.iter().map(|t| t.rmse_with_le).sum::<f64>() / stats.len().max(1) as f64;
        rows.push(ScaleRow {
            blocks: (bx, by),
            regions: city.regions().len(),
            nodes: population,
            reduction_pct: 100.0 * (1.0 - sent as f64 / ideal_sent as f64),
            rmse_with_le,
            runtime_s,
        });
    }
    ScalabilityReport {
        duration_ticks: cfg.duration_ticks,
        rows,
    }
}

impl ScalabilityReport {
    /// Whether the filter's effectiveness is scale-stable: the reduction at
    /// the largest city is within `tolerance_pct` points of the smallest.
    #[must_use]
    pub fn reduction_is_scale_stable(&self, tolerance_pct: f64) -> bool {
        match (self.rows.first(), self.rows.last()) {
            (Some(a), Some(b)) => (a.reduction_pct - b.reduction_pct).abs() <= tolerance_pct,
            _ => true,
        }
    }
}

impl fmt::Display for ScalabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Scalability sweep (ADF, {} simulated seconds per city)",
            self.duration_ticks
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}x{}", r.blocks.0, r.blocks.1),
                    r.regions.to_string(),
                    r.nodes.to_string(),
                    format!("{:.1}%", r.reduction_pct),
                    format!("{:.1}", r.rmse_with_le),
                    format!("{:.2}s", r.runtime_s),
                ]
            })
            .collect();
        let t = text_table(
            &[
                "city",
                "regions",
                "nodes",
                "traffic cut",
                "RMSE w/ LE",
                "runtime",
            ],
            &rows,
        );
        writeln!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_scales_population_with_city_size() {
        let cfg = ExperimentConfig {
            duration_ticks: 60,
            ..ExperimentConfig::default()
        };
        let report = sweep_city_sizes(&cfg, &[(1, 1), (2, 2)]);
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows[1].nodes > report.rows[0].nodes);
        // 1x1: 4 roads x 10 + 1 building x 15 = 55.
        assert_eq!(report.rows[0].nodes, 55);
        // 2x2: 6 roads x 10 + 4 buildings x 15 = 120.
        assert_eq!(report.rows[1].nodes, 120);
    }

    #[test]
    fn reduction_is_meaningful_at_every_size() {
        let cfg = ExperimentConfig {
            duration_ticks: 120,
            ..ExperimentConfig::default()
        };
        let report = sweep_city_sizes(&cfg, &[(1, 1), (3, 3)]);
        for row in &report.rows {
            assert!(
                row.reduction_pct > 20.0,
                "no meaningful reduction at {:?}: {report}",
                row.blocks
            );
        }
        assert!(report.reduction_is_scale_stable(25.0), "{report}");
    }

    #[test]
    fn report_renders() {
        let cfg = ExperimentConfig {
            duration_ticks: 30,
            ..ExperimentConfig::default()
        };
        let text = sweep_city_sizes(&cfg, &[(1, 1)]).to_string();
        assert!(text.contains("Scalability sweep"));
        assert!(text.contains("1x1"));
    }
}
