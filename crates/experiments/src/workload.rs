//! The Table-1 workload: 140 mobile nodes placed on the campus.
//!
//! | Region   | Pattern | Type    | Count | Velocity      |
//! |----------|---------|---------|-------|---------------|
//! | 5 roads  | LMS     | human   | 25    | 1–4 m/s       |
//! | 5 roads  | LMS     | vehicle | 25    | 4–10 m/s      |
//! | 6 bldgs  | SS      | human   | 30    | 0 m/s         |
//! | 6 bldgs  | RMS     | human   | 30    | 0–1 m/s       |
//! | 6 bldgs  | LMS     | human   | 30    | ≤ 1.5 m/s     |

use rand::Rng;

use mobigrid_adf::MobileNode;
use mobigrid_campus::{Campus, Region, RegionKind, RegionShape};
use mobigrid_geo::Point;
use mobigrid_mobility::{
    IndoorWalker, MobilityEngine, MobilityPattern, NodeType, RandomWalk, RoadPatroller, StopModel,
};
use mobigrid_sim::SeedStream;
use mobigrid_wireless::{AccessNetwork, Gateway, GatewayKind, MnId};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecRow {
    /// Region kind hosting the nodes.
    pub region_kind: RegionKind,
    /// Number of regions of that kind.
    pub region_count: usize,
    /// Mobility pattern assigned.
    pub pattern: MobilityPattern,
    /// Human or vehicle.
    pub node_type: NodeType,
    /// Total nodes of this row across all its regions.
    pub count: usize,
    /// Velocity range in m/s, `(min, max)`.
    pub velocity_range: (f64, f64),
}

/// Table 1 as data: the specification of the 140-node population.
#[must_use]
pub fn table1_rows() -> Vec<SpecRow> {
    vec![
        SpecRow {
            region_kind: RegionKind::Road,
            region_count: 5,
            pattern: MobilityPattern::Linear,
            node_type: NodeType::Human,
            count: 25,
            velocity_range: (1.0, 4.0),
        },
        SpecRow {
            region_kind: RegionKind::Road,
            region_count: 5,
            pattern: MobilityPattern::Linear,
            node_type: NodeType::Vehicle,
            count: 25,
            velocity_range: (4.0, 10.0),
        },
        SpecRow {
            region_kind: RegionKind::Building,
            region_count: 6,
            pattern: MobilityPattern::Stop,
            node_type: NodeType::Human,
            count: 30,
            velocity_range: (0.0, 0.0),
        },
        SpecRow {
            region_kind: RegionKind::Building,
            region_count: 6,
            pattern: MobilityPattern::Random,
            node_type: NodeType::Human,
            count: 30,
            velocity_range: (0.0, 1.0),
        },
        SpecRow {
            region_kind: RegionKind::Building,
            region_count: 6,
            pattern: MobilityPattern::Linear,
            node_type: NodeType::Human,
            count: 30,
            velocity_range: (1.0, 1.5),
        },
    ]
}

/// Total population size of Table 1.
pub const POPULATION: usize = 140;

/// Nodes hosted by each road (5 human + 5 vehicle).
pub const NODES_PER_ROAD: usize = 10;

/// Nodes hosted by each building (5 SS + 5 RMS + 5 LMS).
pub const NODES_PER_BUILDING: usize = 15;

fn road_model(region: &Region, speed_range: (f64, f64), start_fraction: f64) -> RoadPatroller {
    let RegionShape::Corridor { spine, .. } = region.shape() else {
        panic!("road regions are corridors");
    };
    // Stagger starting positions along the road so nodes don't bunch up.
    let offset = start_fraction * spine.length();
    RoadPatroller::new(spine.clone(), speed_range, offset)
}

fn building_rect(region: &Region) -> mobigrid_geo::Rect {
    match region.shape() {
        RegionShape::Rect(r) => *r,
        RegionShape::Corridor { .. } => panic!("building regions are rects"),
    }
}

/// Generates the deterministic 140-node population on `campus`.
///
/// Every node draws its velocity, start position and RNG from
/// `SeedStream::new(seed)`, so two calls with the same seed produce
/// identical workloads.
///
/// # Panics
///
/// Panics if `campus` does not have the 11-region layout of
/// [`Campus::inha_like`].
#[must_use]
pub fn generate_population(campus: &Campus, seed: u64) -> Vec<MobileNode> {
    assert_eq!(
        campus.regions_of_kind(RegionKind::Road).count(),
        5,
        "expected the 5-road campus layout"
    );
    assert_eq!(
        campus.regions_of_kind(RegionKind::Building).count(),
        6,
        "expected the 6-building campus layout"
    );
    let nodes = populate(campus, seed);
    debug_assert_eq!(nodes.len(), POPULATION);
    nodes
}

/// Populates *any* campus with the Table-1 per-region densities: 10 nodes
/// per road (5 human LMS + 5 vehicle LMS) and 15 per building (5 SS +
/// 5 RMS + 5 LMS). Used by the scalability experiments on
/// [`Campus::grid_city`] layouts.
#[must_use]
pub fn populate(campus: &Campus, seed: u64) -> Vec<MobileNode> {
    let stream = SeedStream::new(seed);
    let roads: Vec<&Region> = campus.regions_of_kind(RegionKind::Road).collect();
    let buildings: Vec<&Region> = campus.regions_of_kind(RegionKind::Building).collect();
    let mut nodes: Vec<MobileNode> =
        Vec::with_capacity(roads.len() * NODES_PER_ROAD + buildings.len() * NODES_PER_BUILDING);

    let mut next_id = 0u32;
    let mut make_id = |nodes: &Vec<MobileNode>| {
        debug_assert_eq!(nodes.len(), next_id as usize);
        let id = MnId::new(next_id);
        next_id += 1;
        id
    };

    // --- Roads: 5 human LMS + 5 vehicle LMS each -------------------------
    for road in &roads {
        for k in 0..NODES_PER_ROAD {
            let id = make_id(&nodes);
            let setup = stream.substream(1000 + u64::from(id.raw()));
            let mut rng = setup.rng_for(0);
            let (node_type, speed_range) = if k < 5 {
                (NodeType::Human, (1.0, 4.0))
            } else {
                (NodeType::Vehicle, (4.0, 10.0))
            };
            let start_fraction: f64 = rng.gen();
            let model = road_model(road, speed_range, start_fraction);
            nodes.push(
                MobileNode::new(
                    id,
                    road.id(),
                    RegionKind::Road,
                    node_type,
                    MobilityPattern::Linear,
                    model,
                    setup.seed_for(1),
                )
                .with_home_anchor(road.anchor()),
            );
        }
    }

    // --- Buildings: 5 SS + 5 RMS + 5 LMS each ----------------------------
    for building in &buildings {
        let rect = building_rect(building);
        for k in 0..NODES_PER_BUILDING {
            let id = make_id(&nodes);
            let setup = stream.substream(1000 + u64::from(id.raw()));
            let mut rng = setup.rng_for(0);
            let start = rect.point_at_uv(rng.gen(), rng.gen());
            let (pattern, model): (MobilityPattern, MobilityEngine) = if k < 5 {
                (MobilityPattern::Stop, StopModel::new(start).into())
            } else if k < 10 {
                let max_speed = rng.gen_range(0.4..=1.0);
                (
                    MobilityPattern::Random,
                    RandomWalk::new(rect, start, max_speed).into(),
                )
            } else {
                (
                    MobilityPattern::Linear,
                    IndoorWalker::with_speed_range(rect, start, (1.0, 1.5)).into(),
                )
            };
            nodes.push(
                MobileNode::new(
                    id,
                    building.id(),
                    RegionKind::Building,
                    NodeType::Human,
                    pattern,
                    model,
                    setup.seed_for(1),
                )
                .with_home_anchor(building.anchor()),
            );
        }
    }

    nodes
}

/// Builds the campus access network: one wide-area base station plus an
/// access point per building, giving complete coverage of the experiment
/// site (the paper: "cellular network services are provided for the roads
/// and buildings within the campus, and wireless Internet access is
/// provided for 6 buildings").
#[must_use]
pub fn default_network(campus: &Campus) -> AccessNetwork {
    let bbox = campus.bounding_box();
    let center = bbox.center();
    let radius = center.distance_to(bbox.max()) + 50.0;
    let mut gateways = vec![Gateway::new(0, GatewayKind::BaseStation, center, radius)];
    for (i, b) in campus.regions_of_kind(RegionKind::Building).enumerate() {
        let site: Point = b.anchor();
        gateways.push(Gateway::new(
            (i + 1) as u32,
            GatewayKind::AccessPoint,
            site,
            80.0,
        ));
    }
    AccessNetwork::new(gateways)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sums_to_140() {
        let rows = table1_rows();
        let total: usize = rows.iter().map(|r| r.count).sum();
        assert_eq!(total, POPULATION);
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn population_matches_table1() {
        let campus = Campus::inha_like();
        let nodes = generate_population(&campus, 7);
        assert_eq!(nodes.len(), POPULATION);

        let road_nodes = nodes
            .iter()
            .filter(|n| n.region_kind() == RegionKind::Road)
            .count();
        assert_eq!(road_nodes, 50);

        let vehicles = nodes
            .iter()
            .filter(|n| n.node_type() == NodeType::Vehicle)
            .count();
        assert_eq!(vehicles, 25);

        let per_pattern = |p| nodes.iter().filter(|n| n.declared_pattern() == p).count();
        assert_eq!(per_pattern(MobilityPattern::Stop), 30);
        assert_eq!(per_pattern(MobilityPattern::Random), 30);
        assert_eq!(per_pattern(MobilityPattern::Linear), 80);
    }

    #[test]
    fn ids_are_dense() {
        let campus = Campus::inha_like();
        let nodes = generate_population(&campus, 7);
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id().index(), i);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let campus = Campus::inha_like();
        let a = generate_population(&campus, 3);
        let b = generate_population(&campus, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.position(), y.position());
            assert_eq!(x.declared_pattern(), y.declared_pattern());
        }
        let c = generate_population(&campus, 4);
        // A different seed moves at least some starting positions.
        let moved = a
            .iter()
            .zip(&c)
            .filter(|(x, y)| x.position() != y.position())
            .count();
        assert!(moved > 50);
    }

    #[test]
    fn start_positions_are_inside_home_regions() {
        let campus = Campus::inha_like();
        let nodes = generate_population(&campus, 11);
        for n in &nodes {
            let region = campus.region(n.region());
            assert!(
                region.contains(n.position()),
                "{} starts at {} outside {}",
                n.id(),
                n.position(),
                region.name()
            );
        }
    }

    #[test]
    fn network_covers_every_start_position() {
        let campus = Campus::inha_like();
        let net = default_network(&campus);
        let nodes = generate_population(&campus, 5);
        for n in &nodes {
            assert!(
                net.best_gateway(n.position()).is_some(),
                "{} uncovered at {}",
                n.id(),
                n.position()
            );
        }
    }

    #[test]
    fn network_has_base_station_and_aps() {
        let campus = Campus::inha_like();
        let net = default_network(&campus);
        assert_eq!(net.gateways().len(), 7);
        assert_eq!(net.gateways()[0].kind(), GatewayKind::BaseStation);
        assert_eq!(net.gateways()[1].kind(), GatewayKind::AccessPoint);
    }
}
