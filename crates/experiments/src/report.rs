//! Plain-text report formatting shared by the experiment binaries.

use std::fmt::Write as _;

/// Renders an aligned text table with a header row and a separator.
///
/// # Panics
///
/// Panics when a row's width differs from the header's.
///
/// # Examples
///
/// ```
/// let t = mobigrid_experiments::report::text_table(
///     &["policy", "LU/s"],
///     &[vec!["ideal".into(), "140.0".into()]],
/// );
/// assert!(t.contains("policy"));
/// assert!(t.contains("140.0"));
/// ```
#[must_use]
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match headers");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: Vec<&str>| {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let _ = write!(line, "{cell:<w$}", w = *w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    };
    write_row(&mut out, headers.to_vec());
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        write_row(&mut out, row.iter().map(String::as_str).collect());
    }
    out
}

/// Renders rows as CSV with a header line. Cells containing commas are
/// quoted.
#[must_use]
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        );
    }
    out
}

/// Renders several aligned time series as CSV: a `time_s` column followed
/// by one column per series. All series must share their time axis.
///
/// # Panics
///
/// Panics when the series disagree on length or timestamps.
///
/// # Examples
///
/// ```
/// let csv = mobigrid_experiments::report::multi_series_csv(&[
///     ("a".to_string(), vec![(1.0, 10.0), (2.0, 11.0)]),
///     ("b".to_string(), vec![(1.0, 5.0), (2.0, 6.0)]),
/// ]);
/// assert!(csv.starts_with("time_s,a,b"));
/// assert!(csv.contains("1.000,10.000,5.000"));
/// ```
#[must_use]
pub fn multi_series_csv(series: &[(String, Vec<(f64, f64)>)]) -> String {
    let Some((_, first)) = series.first() else {
        return "time_s\n".to_string();
    };
    for (name, samples) in series {
        assert_eq!(
            samples.len(),
            first.len(),
            "series {name} length differs from the first series"
        );
    }
    let mut out = String::from("time_s");
    for (name, _) in series {
        let _ = write!(out, ",{name}");
    }
    out.push('\n');
    for (i, (t, _)) in first.iter().enumerate() {
        let _ = write!(out, "{t:.3}");
        for (name, samples) in series {
            assert!(
                (samples[i].0 - t).abs() < 1e-9,
                "series {name} timestamp mismatch at row {i}"
            );
            let _ = write!(out, ",{:.3}", samples[i].1);
        }
        out.push('\n');
    }
    out
}

/// Renders a compact ASCII chart of a series (downsampled to `width`
/// buckets, `height` rows), for eyeballing figure shapes in a terminal.
#[must_use]
pub fn ascii_chart(name: &str, samples: &[(f64, f64)], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "chart needs at least 2x2 cells");
    if samples.is_empty() {
        return format!("{name}: (no data)\n");
    }
    // Downsample by averaging into `width` buckets.
    let bucket = (samples.len() as f64 / width as f64).max(1.0);
    let mut values = Vec::with_capacity(width);
    let mut idx = 0.0;
    while (idx as usize) < samples.len() && values.len() < width {
        let start = idx as usize;
        let end = ((idx + bucket) as usize).min(samples.len()).max(start + 1);
        let mean = samples[start..end].iter().map(|(_, v)| v).sum::<f64>() / (end - start) as f64;
        values.push(mean);
        idx += bucket;
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let mut grid = vec![vec![' '; values.len()]; height];
    for (x, v) in values.iter().enumerate() {
        let level = ((v - lo) / span * (height - 1) as f64).round() as usize;
        let y = height - 1 - level;
        grid[y][x] = '*';
    }
    let mut out = format!("{name}  [min {lo:.2}, max {hi:.2}]\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(values.len()));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = text_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let _ = text_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_quotes_commas() {
        let c = csv(&["k", "v"], &[vec!["a,b".into(), "1".into()]]);
        assert!(c.contains("\"a,b\""));
    }

    #[test]
    fn chart_renders_extremes() {
        let samples: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i % 10) as f64)).collect();
        let chart = ascii_chart("wave", &samples, 20, 5);
        assert!(chart.contains("wave"));
        assert!(chart.contains('*'));
    }

    #[test]
    fn chart_handles_empty_and_constant_series() {
        assert!(ascii_chart("e", &[], 10, 4).contains("no data"));
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 5.0)).collect();
        let chart = ascii_chart("flat", &flat, 10, 4);
        assert!(chart.contains('*'));
    }
}
