//! Figure 4 — the number of transmitted LUs per second, ideal vs ADF at
//! each DTH size.
//!
//! Paper's result: 135 LU/s ideal; 94 / 63 / 31 LU/s at DTH 0.75 av /
//! 1.0 av / 1.25 av (30.5 % / 53.4 % / 76.7 % reduction). We reproduce the
//! *shape*: ADF tracks ideal until the initial clustering, then drops, and
//! larger factors drop further.

use std::fmt;

use crate::campaign::CampaignData;
use crate::report;

/// The computed figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// Per-run LU/s series: `(label, samples)` with ideal first.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// Mean LU/s per run, ideal first.
    pub mean_lu_per_sec: Vec<(String, f64)>,
    /// Percent reduction vs ideal (ideal row is 0).
    pub reduction_pct: Vec<(String, f64)>,
}

/// Derives the figure from campaign data.
#[must_use]
pub fn compute(data: &CampaignData) -> Fig4 {
    let mut series = Vec::new();
    let mut mean = Vec::new();
    let mut reduction = Vec::new();

    let runs = std::iter::once(&data.ideal).chain(data.adf.iter().map(|(_, r)| r));
    let ideal_mean = data.ideal.mean_lu_per_sec();
    for run in runs {
        let samples: Vec<(f64, f64)> = run
            .ticks
            .iter()
            .map(|t| (t.time_s, f64::from(t.sent)))
            .collect();
        let m = run.mean_lu_per_sec();
        series.push((run.label.clone(), samples));
        mean.push((run.label.clone(), m));
        let red = if ideal_mean > 0.0 {
            100.0 * (1.0 - m / ideal_mean)
        } else {
            0.0
        };
        reduction.push((run.label.clone(), red));
    }
    Fig4 {
        series,
        mean_lu_per_sec: mean,
        reduction_pct: reduction,
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4. Transmitted LUs per second")?;
        let rows: Vec<Vec<String>> = self
            .mean_lu_per_sec
            .iter()
            .zip(&self.reduction_pct)
            .map(|((label, m), (_, r))| vec![label.clone(), format!("{m:.1}"), format!("{r:.2}%")])
            .collect();
        let table = report::text_table(&["policy", "mean LU/s", "reduction vs ideal"], &rows);
        writeln!(f, "{table}")?;
        for (label, samples) in &self.series {
            write!(f, "{}", report::ascii_chart(label, samples, 60, 8))?;
        }
        Ok(())
    }
}

impl Fig4 {
    /// The per-second LU series as CSV: `time_s` plus one column per policy.
    #[must_use]
    pub fn to_csv(&self) -> String {
        crate::report::multi_series_csv(&self.series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn data() -> &'static CampaignData {
        shared_campaign()
    }

    #[test]
    fn ideal_first_and_reductions_increase_with_factor() {
        let fig = compute(data());
        assert_eq!(fig.mean_lu_per_sec[0].0, "ideal");
        assert!((fig.reduction_pct[0].1).abs() < 1e-9);
        let reductions: Vec<f64> = fig.reduction_pct[1..].iter().map(|r| r.1).collect();
        for w in reductions.windows(2) {
            assert!(
                w[1] >= w[0] - 1.0,
                "reductions not monotone: {reductions:?}"
            );
        }
        assert!(
            *reductions.last().unwrap() > 20.0,
            "1.25av reduced only {:.1}%",
            reductions.last().unwrap()
        );
    }

    #[test]
    fn adf_tracks_ideal_before_initial_clustering() {
        let d = data();
        let fig = compute(d);
        let warmup = d.config.adf.warmup_ticks as usize;
        let ideal = &fig.series[0].1;
        let adf = &fig.series[1].1;
        for i in 0..warmup.saturating_sub(1) {
            assert_eq!(ideal[i].1, adf[i].1, "tick {i} diverged during warmup");
        }
    }

    #[test]
    fn report_renders() {
        let text = compute(data()).to_string();
        assert!(text.contains("Figure 4"));
        assert!(text.contains("ideal"));
        assert!(text.contains("adf-1.25av"));
    }

    #[test]
    fn csv_has_one_column_per_policy() {
        let csv = compute(data()).to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(header, "time_s,ideal,adf-0.75av,adf-1.00av,adf-1.25av");
        assert_eq!(csv.lines().count(), 601); // header + one row per tick
    }
}
