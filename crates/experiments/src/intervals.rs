//! Inter-update interval analysis: how long does the filter keep each kind
//! of node silent?
//!
//! The paper reports only aggregate LU counts; the *distribution* of gaps
//! between surviving updates explains the error results — building LMS
//! nodes at 1.25 av go silent for minutes, which is where the broker's
//! estimator earns its keep. This experiment runs the ADF once per DTH
//! factor and histograms the per-node gaps by declared mobility pattern.

use std::collections::BTreeMap;
use std::fmt;

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, FilterPolicy};
use mobigrid_campus::Campus;
use mobigrid_mobility::MobilityPattern;
use mobigrid_sim::stats::Histogram;

use crate::config::ExperimentConfig;
use crate::report::text_table;
use crate::workload;

/// Gap statistics for one mobility pattern under one DTH factor.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternIntervals {
    /// The declared pattern of the contributing nodes.
    pub pattern: MobilityPattern,
    /// Histogram of gaps between transmitted updates, in seconds
    /// (1 s bins, 120 bins plus overflow).
    pub histogram: Histogram,
}

/// The per-factor interval analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalReport {
    /// DTH factor (× av).
    pub factor: f64,
    /// One entry per mobility pattern present in the workload.
    pub per_pattern: Vec<PatternIntervals>,
}

/// Measures inter-update intervals under the ADF at `factor`.
#[must_use]
pub fn measure_intervals(cfg: &ExperimentConfig, factor: f64) -> IntervalReport {
    let campus = Campus::inha_like();
    let mut nodes = workload::generate_population(&campus, cfg.seed);
    let adf_cfg = AdfConfig {
        dth_factor: factor,
        ..cfg.adf
    };
    let mut policy = AdaptiveDistanceFilter::new(adf_cfg).expect("validated configuration");

    // Per-node time of last transmitted update. Histograms keyed by the
    // pattern's abbreviation (`MobilityPattern` itself does not implement
    // `Ord`).
    let mut last_sent: Vec<Option<f64>> = vec![None; nodes.len()];
    let mut by_key: BTreeMap<&'static str, (MobilityPattern, Histogram)> = BTreeMap::new();

    for t in 1..=cfg.duration_ticks {
        let time_s = t as f64;
        let obs: Vec<_> = nodes
            .iter_mut()
            .map(|n| {
                let p = n.step(time_s, 1.0);
                (n.id(), p)
            })
            .collect();
        let decisions = policy.decide_tick(time_s, &obs);
        for (node, decision) in nodes.iter().zip(&decisions) {
            if decision.is_sent() {
                let idx = node.id().index();
                if let Some(prev) = last_sent[idx] {
                    let pattern = node.declared_pattern();
                    let entry = by_key
                        .entry(pattern.abbreviation())
                        .or_insert_with(|| (pattern, Histogram::new(1.0, 120)));
                    entry.1.record(time_s - prev);
                }
                last_sent[idx] = Some(time_s);
            }
        }
    }

    IntervalReport {
        factor,
        per_pattern: by_key
            .into_values()
            .map(|(pattern, histogram)| PatternIntervals { pattern, histogram })
            .collect(),
    }
}

impl fmt::Display for IntervalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Inter-update intervals under ADF at {:.2}av (seconds)",
            self.factor
        )?;
        let rows: Vec<Vec<String>> = self
            .per_pattern
            .iter()
            .map(|p| {
                let h = &p.histogram;
                let q = |q: f64| match h.quantile(q) {
                    Some(v) if v.is_finite() => format!("{v:.0}"),
                    Some(_) => ">120".to_string(),
                    None => "-".to_string(),
                };
                vec![
                    p.pattern.to_string(),
                    h.total().to_string(),
                    format!("{:.1}", h.mean()),
                    q(0.5),
                    q(0.9),
                    q(0.99),
                ]
            })
            .collect();
        let t = text_table(&["pattern", "gaps", "mean", "p50", "p90", "p99"], &rows);
        writeln!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            duration_ticks: 300,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn larger_factors_stretch_the_gaps() {
        let small = measure_intervals(&cfg(), 0.75);
        let large = measure_intervals(&cfg(), 1.25);
        let mean_gap = |r: &IntervalReport, p: MobilityPattern| {
            r.per_pattern
                .iter()
                .find(|e| e.pattern == p)
                .map(|e| e.histogram.mean())
                .unwrap_or(0.0)
        };
        // Linear movers' gaps grow with the threshold.
        assert!(
            mean_gap(&large, MobilityPattern::Linear)
                > mean_gap(&small, MobilityPattern::Linear),
            "gaps did not stretch"
        );
    }

    #[test]
    fn stopped_nodes_only_report_during_warmup() {
        // Before the initial clustering every update passes (DTH = 0), so
        // each of the 30 SS nodes transmits a handful of times; after it,
        // they go silent for good — every recorded gap is a 1 s warmup gap.
        let config = cfg();
        let r = measure_intervals(&config, 1.0);
        let ss = r
            .per_pattern
            .iter()
            .find(|p| p.pattern == MobilityPattern::Stop)
            .expect("SS nodes transmitted during warmup");
        assert!(
            ss.histogram.total() <= 30 * config.adf.warmup_ticks,
            "too many SS gaps: {}",
            ss.histogram.total()
        );
        assert!(ss.histogram.mean() <= 1.5, "SS gaps should be warmup-tight");
        assert_eq!(ss.histogram.overflow(), 0);
    }

    #[test]
    fn report_renders_with_quantiles() {
        let text = measure_intervals(&cfg(), 1.0).to_string();
        assert!(text.contains("p90"));
        assert!(text.contains("LMS"));
    }
}
