//! Figure 7 — RMSE of location error over time, with and without the
//! broker's location estimator (LE), per DTH size.
//!
//! Paper's result: at every DTH the LE-assisted broker tracks nodes far
//! better — the RMSE with LE is roughly 33–47 % of the RMSE without it. We
//! reproduce the shape: error grows with the DTH factor, and LE cuts it
//! substantially.

use std::fmt;

use crate::campaign::CampaignData;
use crate::report;

/// Error summary for one ADF factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorRow {
    /// DTH factor (× av).
    pub factor: f64,
    /// Mean RMSE over the run without LE, in metres.
    pub rmse_without_le: f64,
    /// Mean RMSE over the run with LE, in metres.
    pub rmse_with_le: f64,
}

impl ErrorRow {
    /// RMSE with LE as a percentage of RMSE without LE.
    #[must_use]
    pub fn le_ratio_pct(&self) -> f64 {
        if self.rmse_without_le == 0.0 {
            0.0
        } else {
            100.0 * self.rmse_with_le / self.rmse_without_le
        }
    }
}

/// The computed figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// RMSE time series: `(label, samples)` — two per factor
    /// (`…/no-le`, `…/le`).
    pub series: Vec<(String, Vec<(f64, f64)>)>,
    /// One summary row per factor.
    pub summary: Vec<ErrorRow>,
}

/// Derives the figure from campaign data.
#[must_use]
pub fn compute(data: &CampaignData) -> Fig7 {
    let mut series = Vec::new();
    let mut summary = Vec::new();
    for (factor, run) in &data.adf {
        let without: Vec<(f64, f64)> = run
            .ticks
            .iter()
            .map(|t| (t.time_s, t.rmse_without_le))
            .collect();
        let with: Vec<(f64, f64)> = run
            .ticks
            .iter()
            .map(|t| (t.time_s, t.rmse_with_le))
            .collect();
        series.push((format!("{}/no-le", run.label), without));
        series.push((format!("{}/le", run.label), with));
        let (with_mean, without_mean) = run.mean_rmse();
        summary.push(ErrorRow {
            factor: *factor,
            rmse_without_le: without_mean,
            rmse_with_le: with_mean,
        });
    }
    Fig7 { series, summary }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7. RMSE of location error (metres)")?;
        let rows: Vec<Vec<String>> = self
            .summary
            .iter()
            .map(|r| {
                vec![
                    format!("{:.2}av", r.factor),
                    format!("{:.3}", r.rmse_without_le),
                    format!("{:.3}", r.rmse_with_le),
                    format!("{:.1}%", r.le_ratio_pct()),
                ]
            })
            .collect();
        let table = report::text_table(
            &["DTH", "RMSE w/o LE", "RMSE w/ LE", "w/LE as % of w/o"],
            &rows,
        );
        writeln!(f, "{table}")?;
        for (label, samples) in &self.series {
            write!(f, "{}", report::ascii_chart(label, samples, 60, 6))?;
        }
        Ok(())
    }
}

impl Fig7 {
    /// The RMSE series as CSV: `time_s` plus two columns per factor
    /// (`…/no-le`, `…/le`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        crate::report::multi_series_csv(&self.series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn fig() -> Fig7 {
        compute(shared_campaign())
    }

    #[test]
    fn le_reduces_error_at_every_factor() {
        for row in fig().summary {
            assert!(
                row.rmse_with_le < row.rmse_without_le,
                "LE did not help at {:.2}av: {row:?}",
                row.factor
            );
        }
    }

    #[test]
    fn error_grows_with_dth_factor() {
        let f = fig();
        for w in f.summary.windows(2) {
            assert!(
                w[1].rmse_without_le >= w[0].rmse_without_le * 0.9,
                "error not growing with factor: {:?}",
                f.summary
            );
        }
    }

    #[test]
    fn errors_are_finite_and_nonnegative() {
        for (_, samples) in &fig().series {
            for (_, v) in samples {
                assert!(v.is_finite() && *v >= 0.0);
            }
        }
    }

    #[test]
    fn report_renders() {
        let text = fig().to_string();
        assert!(text.contains("Figure 7"));
        assert!(text.contains("w/o LE"));
    }

    #[test]
    fn csv_has_two_columns_per_factor() {
        let csv = fig().to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(header.split(',').count(), 1 + 6); // time + 2 per factor
        assert!(header.contains("adf-1.00av/le"));
    }
}
