//! Table 1 — specification of the mobile nodes used in the experiments.

use std::fmt;

use crate::report;
use crate::workload::{self, SpecRow};

/// The reproduced Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// The specification rows.
    pub rows: Vec<SpecRow>,
}

/// Builds the table from the workload specification.
#[must_use]
pub fn compute() -> Table1 {
    Table1 {
        rows: workload::table1_rows(),
    }
}

impl Table1 {
    /// Total node population.
    #[must_use]
    pub fn total(&self) -> usize {
        self.rows.iter().map(|r| r.count).sum()
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1. Specification of MN used in experiments")?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let vr = if r.velocity_range.0 == r.velocity_range.1 {
                    format!("{} m/s", r.velocity_range.0)
                } else {
                    format!("{}~{} m/s", r.velocity_range.0, r.velocity_range.1)
                };
                vec![
                    r.region_kind.to_string(),
                    r.region_count.to_string(),
                    r.pattern.to_string(),
                    r.node_type.to_string(),
                    r.count.to_string(),
                    vr,
                ]
            })
            .collect();
        let table = report::text_table(
            &["region", "#regions", "pattern", "type", "#MN", "velocity"],
            &rows,
        );
        writeln!(f, "{table}")?;
        writeln!(f, "total MNs: {}", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_totals_140() {
        assert_eq!(compute().total(), 140);
    }

    #[test]
    fn report_mentions_patterns_and_total() {
        let text = compute().to_string();
        for needle in ["SS", "RMS", "LMS", "vehicle", "140", "4~10 m/s"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
