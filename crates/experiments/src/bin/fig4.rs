//! Regenerates Figure 4 (transmitted LUs per second).
//!
//! Pass `--csv` for machine-readable output.

mod common;

use mobigrid_experiments::{campaign, fig4};

fn main() {
    let cli = common::parse_cli();
    let data = campaign::run_campaign_parallel(&cli.config);
    let fig = fig4::compute(&data);
    if cli.csv {
        print!("{}", fig.to_csv());
    } else {
        println!("{fig}");
    }
}
