//! Regenerates Figure 4 (transmitted LUs per second).
//!
//! Thin shim over the shared experiment CLI — see `mobigrid_experiments::cli`
//! for the full flag surface (`--ticks`, `--threads`, `--csv`,
//! `--telemetry`, ...).

fn main() {
    mobigrid_experiments::cli::main_named(Some("fig4"));
}
