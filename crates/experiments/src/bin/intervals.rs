//! Inter-update interval analysis: gap distributions per mobility pattern
//! at each DTH factor.

mod common;

use mobigrid_experiments::intervals;

fn main() {
    let cfg = common::config_from_args();
    for factor in cfg.dth_factors.clone() {
        println!("{}", intervals::measure_intervals(&cfg, factor));
    }
}
