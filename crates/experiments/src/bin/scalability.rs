//! Scalability sweep: the ADF on grid cities of growing size.

mod common;

use mobigrid_experiments::scalability;

fn main() {
    let mut cfg = common::config_from_args();
    // Full 1800-tick runs at 900+ nodes take a while; trim the default.
    if cfg.duration_ticks == 1800 {
        cfg.duration_ticks = 300;
    }
    let sizes = [(1, 1), (2, 2), (3, 3), (5, 5)];
    if cfg.threads > 1 {
        println!("running with {} worker threads", cfg.threads);
    }
    println!("{}", scalability::sweep_city_sizes(&cfg, &sizes));
}
