//! Seed-sweep robustness check: repeats the campaign over several seeds and
//! reports mean ± std of every headline metric.

mod common;

use mobigrid_experiments::robustness;

fn main() {
    let cfg = common::config_from_args();
    let seeds: Vec<u64> = (1..=5).map(|i| cfg.seed.wrapping_add(i)).collect();
    println!("{}", robustness::sweep_seeds(&cfg, &seeds));
}
