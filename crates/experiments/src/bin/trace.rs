//! Flight-recorder trace analysis.
//!
//! Reads a JSONL telemetry export (produced with `--telemetry FILE` on
//! any experiment binary), reconstructs per-LU causal chains, and answers
//! timeline/latency/suppression/staleness queries. `--check` replays the
//! invariant monitors offline and exits non-zero on any violation.

use std::process::ExitCode;

fn main() -> ExitCode {
    match mobigrid_experiments::trace::run_main(std::env::args().skip(1)) {
        Ok((output, code)) => {
            print!("{output}");
            if code == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("trace: {message}");
            ExitCode::from(2)
        }
    }
}
