//! Regenerates Figure 9. RMSE by region, with LE (metres).
//!
//! Pass `--csv` for machine-readable output (both broker arms).

mod common;

use mobigrid_experiments::{campaign, fig89, report};

fn main() {
    let cli = common::parse_cli();
    let data = campaign::run_campaign_parallel(&cli.config);
    let fig = fig89::compute(&data);
    if cli.csv {
        print!("{}", fig.to_csv());
        return;
    }
    println!("Figure 9. RMSE by region, with LE (metres)");
    let rows: Vec<Vec<String>> = fig
        .with_le
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}av", r.factor),
                format!("{:.3}", r.road),
                format!("{:.3}", r.building),
                format!("{:.2}x", r.road_to_building_ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::text_table(&["DTH", "road", "building", "road/building"], &rows)
    );
}
