//! Runs the fault-matrix experiment: the ADF's traffic/accuracy trade-off
//! across a loss-rate × DTH-factor grid on a deterministic lossy channel.

mod common;

use mobigrid_experiments::fault_matrix::{self, FaultMatrixConfig};

fn main() {
    let cli = common::parse_cli();
    let cfg = FaultMatrixConfig {
        base: cli.config,
        ..FaultMatrixConfig::default()
    };
    let data = fault_matrix::compute(&cfg);
    if cli.csv {
        print!("{}", data.csv());
    } else {
        print!("{data}");
    }
}
