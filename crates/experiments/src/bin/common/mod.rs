//! Shared CLI handling for the experiment binaries.
//!
//! Usage: `<bin> [--ticks N] [--seed S] [--threads T]
//! [--campaign-threads C] [--csv]` — defaults to the paper's 1800 s run
//! with seed 42, a single worker thread and human-readable text output.
//! `--threads` parallelizes the tick phases within one run;
//! `--campaign-threads` runs whole campaign runs (ideal + each DTH factor)
//! concurrently. Both only change wall-clock time: simulation results are
//! bit-identical for every thread count.

use mobigrid_experiments::config::ExperimentConfig;

/// Parsed command line: the experiment configuration plus output options.
/// (Not every binary reads every field; each binary compiles this module
/// independently.)
#[allow(dead_code)]
pub struct Cli {
    /// The experiment configuration.
    pub config: ExperimentConfig,
    /// Emit machine-readable CSV instead of the text report.
    pub csv: bool,
}

/// Parses `--ticks`, `--seed`, `--threads`, `--campaign-threads` and
/// `--csv` from the process arguments.
///
/// # Panics
///
/// Panics (with a usage message) on malformed arguments.
#[must_use]
pub fn parse_cli() -> Cli {
    let mut config = ExperimentConfig::default();
    let mut csv = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("usage: {name} <integer>"))
        };
        match flag.as_str() {
            "--ticks" => config.duration_ticks = take("--ticks"),
            "--seed" => config.seed = take("--seed"),
            "--threads" => config.threads = take("--threads").max(1) as usize,
            "--campaign-threads" => {
                config.campaign_threads = take("--campaign-threads").max(1) as usize;
            }
            "--csv" => csv = true,
            other => {
                panic!(
                    "unknown flag {other}; usage: [--ticks N] [--seed S] \
                     [--threads T] [--campaign-threads C] [--csv]"
                )
            }
        }
    }
    Cli { config, csv }
}

/// Backwards-compatible helper for binaries that only need the config.
#[allow(dead_code)]
#[must_use]
pub fn config_from_args() -> ExperimentConfig {
    parse_cli().config
}
