//! Regenerates every table and figure of the paper's evaluation in one run.

mod common;

use mobigrid_experiments::{campaign, fig4, fig5, fig6, fig7, fig89, table1};

fn main() {
    let cfg = common::config_from_args();
    println!(
        "== Reproduction run: seed {} / {} ticks ==\n",
        cfg.seed, cfg.duration_ticks
    );

    println!("{}", table1::compute());

    let data = campaign::run_campaign_parallel(&cfg);
    println!("{}", fig4::compute(&data));
    println!("{}", fig5::compute(&data));
    println!("{}", fig6::compute(&data));
    println!("{}", fig7::compute(&data));
    println!("{}", fig89::compute(&data));

    println!(
        "network accounting (ideal run): {} messages / {} bytes",
        data.ideal.network_messages, data.ideal.network_bytes
    );
    for (factor, run) in &data.adf {
        println!(
            "network accounting (adf {factor:.2}av): {} messages / {} bytes",
            run.network_messages, run.network_bytes
        );
    }
}
