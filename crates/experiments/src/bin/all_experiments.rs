//! Regenerates every table and figure of the paper's evaluation in one run,
//! sharing a single campaign across all campaign-backed reports.
//!
//! Thin shim over the shared experiment CLI — see `mobigrid_experiments::cli`
//! for the full flag surface (`--ticks`, `--threads`, `--csv`,
//! `--telemetry`, ...).

fn main() {
    mobigrid_experiments::cli::main_named(Some("all"));
}
