//! Unified experiment runner: `--experiment <name>` selects any registry entry,
//! `--list` shows them all.
//!
//! Thin shim over the shared experiment CLI — see `mobigrid_experiments::cli`
//! for the full flag surface (`--ticks`, `--threads`, `--csv`,
//! `--telemetry`, ...).

fn main() {
    mobigrid_experiments::cli::main_named(None);
}
