//! Regenerates Figure 7 (RMSE with and without location estimation).
//!
//! Pass `--csv` for machine-readable output.

mod common;

use mobigrid_experiments::{campaign, fig7};

fn main() {
    let cli = common::parse_cli();
    let data = campaign::run_campaign_parallel(&cli.config);
    let fig = fig7::compute(&data);
    if cli.csv {
        print!("{}", fig.to_csv());
    } else {
        println!("{fig}");
    }
}
