//! Regenerates Figure 7 (location RMSE with and without LE).
//!
//! Thin shim over the shared experiment CLI — see `mobigrid_experiments::cli`
//! for the full flag surface (`--ticks`, `--threads`, `--csv`,
//! `--telemetry`, ...).

fn main() {
    mobigrid_experiments::cli::main_named(Some("fig7"));
}
