//! Runs the extension experiments: energy saving and outage resilience.

mod common;

use mobigrid_experiments::extensions;

fn main() {
    let cfg = common::config_from_args();
    println!("{}", extensions::energy_extension(&cfg));
    println!("{}", extensions::outage_resilience(&cfg));
}
