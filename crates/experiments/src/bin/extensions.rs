//! Runs the extension experiments: energy saving and outage resilience.
//!
//! Thin shim over the shared experiment CLI — see `mobigrid_experiments::cli`
//! for the full flag surface (`--ticks`, `--threads`, `--csv`,
//! `--telemetry`, ...).

fn main() {
    mobigrid_experiments::cli::main_named(Some("extensions"));
}
