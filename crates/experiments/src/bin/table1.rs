//! Regenerates Table 1 (the mobile-node specification).

fn main() {
    println!("{}", mobigrid_experiments::table1::compute());
}
