//! Regenerates Table 1 (the mobile-node specification).
//!
//! Thin shim over the shared experiment CLI — see `mobigrid_experiments::cli`
//! for the full flag surface (`--ticks`, `--threads`, `--csv`,
//! `--telemetry`, ...).

fn main() {
    mobigrid_experiments::cli::main_named(Some("table1"));
}
