//! Extension experiments beyond the paper's evaluation.
//!
//! The paper *motivates* the ADF with the mobile node's constraints — "low
//! bandwidth, low battery capacity, frequent disconnectivity" — but only
//! measures bandwidth (LU counts). These experiments quantify the other two:
//!
//! * [`energy_extension`] — battery-life gained by filtering, under a linear
//!   radio energy model,
//! * [`outage_resilience`] — location error under scheduled gateway
//!   outages, showing the location estimator riding out disconnections.

use std::fmt;

use mobigrid_campus::{Campus, RegionKind};
use mobigrid_wireless::{EnergyModel, GatewayId, LocationUpdate, OutageSchedule};

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, SimBuilder};

use crate::campaign::{run_policy, PolicySpec};
use crate::config::ExperimentConfig;
use crate::report::text_table;
use crate::workload;

/// One policy's energy summary.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Policy label.
    pub label: String,
    /// Mean LUs per node-hour.
    pub lu_per_node_hour: f64,
    /// Radio energy per node-hour, in joules.
    pub joules_per_node_hour: f64,
    /// Battery-life multiplier relative to the ideal policy.
    pub battery_life_multiplier: f64,
}

/// The energy extension's result.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// One row per policy, ideal first.
    pub rows: Vec<EnergyRow>,
    /// The radio model used.
    pub model: EnergyModel,
}

/// Quantifies the battery saving of each filter policy.
#[must_use]
pub fn energy_extension(cfg: &ExperimentConfig) -> EnergyReport {
    let model = EnergyModel::default();
    let frame_j = model.frame_cost_j(LocationUpdate::WIRE_SIZE);
    let node_hours = workload::POPULATION as f64 * cfg.duration_ticks as f64 / 3600.0;

    let mut rows = Vec::new();
    let mut ideal_joules = None;
    for spec in [
        PolicySpec::Ideal,
        PolicySpec::Adf(0.75),
        PolicySpec::Adf(1.0),
        PolicySpec::Adf(1.25),
    ] {
        let run = run_policy(cfg, spec);
        let joules_per_node_hour = run.total_sent() as f64 * frame_j / node_hours;
        let ideal = *ideal_joules.get_or_insert(joules_per_node_hour);
        rows.push(EnergyRow {
            label: run.label.clone(),
            lu_per_node_hour: run.total_sent() as f64 / node_hours,
            joules_per_node_hour,
            battery_life_multiplier: if joules_per_node_hour > 0.0 {
                ideal / joules_per_node_hour
            } else {
                f64::INFINITY
            },
        });
    }
    EnergyReport { rows, model }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Energy extension (radio model: {:.1} mJ/frame + {:.1} µJ/byte)",
            self.model.base_j * 1e3,
            self.model.per_byte_j * 1e6
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{:.0}", r.lu_per_node_hour),
                    format!("{:.2}", r.joules_per_node_hour),
                    format!("{:.2}x", r.battery_life_multiplier),
                ]
            })
            .collect();
        let t = text_table(
            &["policy", "LU/node-hour", "J/node-hour", "battery life"],
            &rows,
        );
        writeln!(f, "{t}")
    }
}

/// The outage experiment's result: error with and without infrastructure
/// outages, for both broker arms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageReport {
    /// Updates dropped due to outages.
    pub dropped: u64,
    /// Mean RMSE without outages: (with LE, without LE).
    pub baseline_rmse: (f64, f64),
    /// Mean RMSE with the outage schedule: (with LE, without LE).
    pub outage_rmse: (f64, f64),
}

impl OutageReport {
    /// How much error the outages added for the stale broker, in metres.
    #[must_use]
    pub fn stale_degradation(&self) -> f64 {
        self.outage_rmse.1 - self.baseline_rmse.1
    }

    /// How much error the outages added for the LE broker, in metres.
    #[must_use]
    pub fn le_degradation(&self) -> f64 {
        self.outage_rmse.0 - self.baseline_rmse.0
    }
}

impl fmt::Display for OutageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Outage resilience (ADF at 1.0 av)")?;
        let rows = vec![
            vec![
                "no outages".to_string(),
                format!("{:.2}", self.baseline_rmse.1),
                format!("{:.2}", self.baseline_rmse.0),
                "-".to_string(),
            ],
            vec![
                "APs down 60 s / 300 s".to_string(),
                format!("{:.2}", self.outage_rmse.1),
                format!("{:.2}", self.outage_rmse.0),
                self.dropped.to_string(),
            ],
        ];
        let t = text_table(
            &["scenario", "RMSE w/o LE", "RMSE w/ LE", "LUs dropped"],
            &rows,
        );
        writeln!(f, "{t}")
    }
}

/// Runs the ADF under a staggered access-point outage schedule: each of the
/// six building APs goes dark for 60 s out of every 300 s. Building nodes
/// fall back to the campus base station, which stays up, so the interesting
/// effect is on the error of updates lost in flight.
#[must_use]
pub fn outage_resilience(cfg: &ExperimentConfig) -> OutageReport {
    let campus = Campus::inha_like();

    let run = |with_outages: bool| {
        let mut network = workload::default_network(&campus);
        if with_outages {
            let mut sched = OutageSchedule::new();
            // Gateway 0 is the base station; 1..=6 are the building APs.
            // Also take the base station down briefly so road nodes see
            // real disconnections.
            for ap in 1..=6u32 {
                let mut start = f64::from(ap) * 50.0;
                while start < cfg.duration_ticks as f64 {
                    sched
                        .add_window(GatewayId::new(ap), start, start + 60.0)
                        .expect("well-formed outage window");
                    start += 300.0;
                }
            }
            let mut start = 120.0;
            while start < cfg.duration_ticks as f64 {
                sched
                    .add_window(GatewayId::new(0), start, start + 20.0)
                    .expect("well-formed outage window");
                start += 400.0;
            }
            network = network.with_outages(sched);
        }
        let nodes = workload::generate_population(&campus, cfg.seed);
        let mut sim = SimBuilder::new()
            .nodes(nodes)
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid"))
            .estimator(cfg.estimator)
            .network(network)
            .threads(cfg.runtime.threads)
            .build()
            .expect("valid simulation");
        let stats = sim.run(cfg.duration_ticks);
        let n = stats.len() as f64;
        let with: f64 = stats.iter().map(|t| t.rmse_with_le).sum::<f64>() / n;
        let without: f64 = stats.iter().map(|t| t.rmse_without_le).sum::<f64>() / n;
        let dropped = sim.network().expect("attached").dropped();
        ((with, without), dropped)
    };

    let (baseline_rmse, _) = run(false);
    let (outage_rmse, dropped) = run(true);
    OutageReport {
        dropped,
        baseline_rmse,
        outage_rmse,
    }
}

/// Sanity helper for tests: which kinds of regions the default network's
/// access points cover.
#[must_use]
pub fn ap_region_kind() -> RegionKind {
    RegionKind::Building
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig {
            duration_ticks: 200,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn energy_report_orders_battery_life_by_factor() {
        let report = energy_extension(&cfg());
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.rows[0].label, "ideal");
        assert!((report.rows[0].battery_life_multiplier - 1.0).abs() < 1e-9);
        for w in report.rows[1..].windows(2) {
            assert!(
                w[1].battery_life_multiplier >= w[0].battery_life_multiplier,
                "battery life should grow with the factor: {report}"
            );
        }
        assert!(report.rows[3].battery_life_multiplier > 2.0);
    }

    #[test]
    fn energy_report_renders() {
        let text = energy_extension(&cfg()).to_string();
        assert!(text.contains("battery life"));
        assert!(text.contains("ideal"));
    }

    #[test]
    fn outages_drop_updates_and_raise_error() {
        let report = outage_resilience(&cfg());
        assert!(report.dropped > 0, "schedule produced no drops");
        // Outages can only make the stale broker worse (or equal).
        assert!(report.stale_degradation() > -1.0);
        let text = report.to_string();
        assert!(text.contains("LUs dropped"));
    }
}
