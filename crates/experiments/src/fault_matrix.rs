//! The fault-matrix experiment: how the ADF's traffic/accuracy trade-off
//! holds up on a lossy channel.
//!
//! The paper's evaluation assumes a perfect access network; this extension
//! sweeps a *loss-rate × DTH-factor* grid. Each cell runs the standard
//! 140-node campus workload through a deterministic [`FaultPlan`] scaled by
//! the cell's loss rate (drops dominate, with proportional corruption,
//! delay and duplication), with every node retrying dropped updates under a
//! bounded exponential-backoff [`RetryPolicy`]. The report shows, per cell,
//! the airtime actually consumed (including retransmissions), how many
//! updates were lost or arrived late, and the broker's location error with
//! and without the estimator.
//!
//! Fault fates are pure hashes of `(fault seed, node, seq, attempt)`, so
//! the whole matrix is bit-identical for every `--threads` /
//! `--campaign-threads` setting.

use std::fmt;

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, FaultSpec, RuntimeOptions, SimBuilder};
use mobigrid_campus::Campus;
use mobigrid_sim::par::ShardPool;
use mobigrid_telemetry::{NoopRecorder, Recorder};
use mobigrid_wireless::{FaultPlan, RetryPolicy};

use crate::config::ExperimentConfig;
use crate::report::{csv, text_table};
use crate::workload;

/// Knobs for the fault matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMatrixConfig {
    /// The shared campaign configuration (seed, duration, DTH factors,
    /// threads). The access network is always attached here.
    pub base: ExperimentConfig,
    /// Loss rates to sweep (each becomes one [`FaultPlan`] via
    /// [`FaultMatrixConfig::plan_for`]).
    pub loss_rates: Vec<f64>,
    /// Seed for the fault channel's hash stream, independent of the
    /// workload seed so the same mobility replays under every plan.
    pub fault_seed: u64,
    /// Retry policy attached to every node.
    pub retry: RetryPolicy,
}

impl Default for FaultMatrixConfig {
    fn default() -> Self {
        FaultMatrixConfig {
            base: ExperimentConfig::default(),
            loss_rates: vec![0.0, 0.05, 0.1, 0.2],
            fault_seed: 0x00FA_0175,
            retry: RetryPolicy::default(),
        }
    }
}

impl FaultMatrixConfig {
    /// The fault plan one loss rate expands to: `loss` is the drop
    /// probability, with corruption at a quarter of it, deferral (up to
    /// 3 ticks) at half, and duplication at a quarter — a fixed mixture so
    /// a single knob scales the whole fault surface.
    #[must_use]
    pub fn plan_for(&self, loss: f64) -> FaultPlan {
        FaultPlan {
            drop_rate: loss,
            corrupt_rate: loss / 4.0,
            delay_rate: loss / 2.0,
            max_delay_ticks: if loss > 0.0 { 3 } else { 0 },
            duplicate_rate: loss / 4.0,
            flaps: Vec::new(),
        }
    }
}

/// Aggregates of one (loss rate, DTH factor) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCell {
    /// The cell's loss rate.
    pub loss_rate: f64,
    /// The cell's DTH factor.
    pub dth_factor: f64,
    /// Frames that reached the air, retransmissions included.
    pub sent: u64,
    /// Retransmissions among them.
    pub retries: u64,
    /// Updates that failed to arrive at their send tick.
    pub lost: u64,
    /// Deferred updates that arrived on a later tick.
    pub late: u64,
    /// Bytes carried by the access network.
    pub network_bytes: u64,
    /// Mean RMSE with the location estimator.
    pub rmse_with_le: f64,
    /// Mean RMSE without it.
    pub rmse_without_le: f64,
    /// Mean number of nodes the broker marked stale per tick.
    pub mean_stale_nodes: f64,
}

/// Runs one cell of the matrix.
#[must_use]
pub fn run_cell(cfg: &FaultMatrixConfig, loss_rate: f64, dth_factor: f64) -> FaultCell {
    run_cell_recorded(cfg, loss_rate, dth_factor, &mut NoopRecorder)
}

/// Runs one cell of the matrix, streaming telemetry into `rec`.
#[must_use]
pub fn run_cell_recorded(
    cfg: &FaultMatrixConfig,
    loss_rate: f64,
    dth_factor: f64,
    rec: &mut dyn Recorder,
) -> FaultCell {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, cfg.base.seed);
    let adf_cfg = AdfConfig {
        dth_factor,
        ..cfg.base.adf
    };
    // The cell's fault plan and the shared retry default ride on the
    // base runtime options, so `--threads` still applies per tick.
    let runtime = RuntimeOptions {
        faults: Some(FaultSpec {
            plan: cfg.plan_for(loss_rate),
            seed: cfg.fault_seed,
        }),
        retry: Some(cfg.retry),
        ..cfg.base.runtime.clone()
    };
    let mut sim = SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(adf_cfg).expect("validated configuration"))
        .estimator(cfg.base.estimator)
        .network(workload::default_network(&campus))
        .runtime(runtime)
        .build()
        .expect("validated configuration");
    let ticks = sim.run_recorded(cfg.base.duration_ticks, rec);
    let n = ticks.len().max(1) as f64;
    FaultCell {
        loss_rate,
        dth_factor,
        sent: ticks.iter().map(|t| u64::from(t.sent)).sum(),
        retries: ticks.iter().map(|t| u64::from(t.retries)).sum(),
        lost: ticks.iter().map(|t| u64::from(t.lost)).sum(),
        late: ticks.iter().map(|t| u64::from(t.late)).sum(),
        network_bytes: sim.network().expect("attached").meter().bytes(),
        rmse_with_le: ticks.iter().map(|t| t.rmse_with_le).sum::<f64>() / n,
        rmse_without_le: ticks.iter().map(|t| t.rmse_without_le).sum::<f64>() / n,
        mean_stale_nodes: ticks.iter().map(|t| f64::from(t.stale_nodes)).sum::<f64>() / n,
    }
}

/// The whole matrix, cells in row-major `(loss rate, DTH factor)` order.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMatrixData {
    /// The configuration that produced the matrix.
    pub config: FaultMatrixConfig,
    /// One cell per (loss rate, DTH factor) pair.
    pub cells: Vec<FaultCell>,
}

/// Computes every cell, fanned out over `base.campaign_threads` workers.
/// The [`ShardPool`] returns results in submission order and each cell is
/// an independent simulation, so the matrix is bit-identical for every
/// thread count.
#[must_use]
pub fn compute(cfg: &FaultMatrixConfig) -> FaultMatrixData {
    compute_recorded(cfg, &mut NoopRecorder)
}

/// Computes every cell like [`compute`], streaming telemetry into `rec`.
/// Each cell records into a forked child recorder; children are absorbed
/// in submission (row-major) order, so the merged telemetry is
/// bit-identical for every thread count.
#[must_use]
pub fn compute_recorded(cfg: &FaultMatrixConfig, rec: &mut dyn Recorder) -> FaultMatrixData {
    let mut specs = Vec::with_capacity(cfg.loss_rates.len() * cfg.base.dth_factors.len());
    for &loss in &cfg.loss_rates {
        for &factor in &cfg.base.dth_factors {
            specs.push((loss, factor));
        }
    }
    let parent: &dyn Recorder = rec;
    let results = ShardPool::new(cfg.base.runtime.campaign_threads).run(specs, |_, (loss, factor)| {
        let mut child = parent.fork();
        let cell = run_cell_recorded(cfg, loss, factor, child.as_mut());
        (cell, child)
    });
    let mut cells = Vec::with_capacity(results.len());
    for (cell, child) in results {
        rec.absorb(child);
        cells.push(cell);
    }
    FaultMatrixData {
        config: cfg.clone(),
        cells,
    }
}

impl FaultMatrixData {
    fn rows(&self) -> Vec<Vec<String>> {
        self.cells
            .iter()
            .map(|c| {
                vec![
                    format!("{:.2}", c.loss_rate),
                    format!("{:.2}", c.dth_factor),
                    c.sent.to_string(),
                    c.retries.to_string(),
                    c.lost.to_string(),
                    c.late.to_string(),
                    format!("{:.2}", c.rmse_with_le),
                    format!("{:.2}", c.rmse_without_le),
                    format!("{:.1}", c.mean_stale_nodes),
                ]
            })
            .collect()
    }

    const HEADERS: [&'static str; 9] = [
        "loss",
        "dth",
        "sent",
        "retries",
        "lost",
        "late",
        "RMSE w/ LE",
        "RMSE w/o LE",
        "stale/tick",
    ];

    /// The matrix as machine-readable CSV.
    #[must_use]
    pub fn csv(&self) -> String {
        csv(&Self::HEADERS, &self.rows())
    }
}

impl fmt::Display for FaultMatrixData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault matrix: {} ticks, workload seed {}, fault seed {:#x}",
            self.config.base.duration_ticks, self.config.base.seed, self.config.fault_seed
        )?;
        writeln!(f, "{}", text_table(&Self::HEADERS, &self.rows()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FaultMatrixConfig {
        FaultMatrixConfig {
            base: ExperimentConfig {
                duration_ticks: 60,
                dth_factors: vec![0.75, 1.25],
                ..ExperimentConfig::default()
            },
            loss_rates: vec![0.0, 0.2],
            ..FaultMatrixConfig::default()
        }
    }

    #[test]
    fn matrix_covers_the_full_grid_in_order() {
        let data = compute(&quick());
        assert_eq!(data.cells.len(), 4);
        let coords: Vec<(f64, f64)> = data
            .cells
            .iter()
            .map(|c| (c.loss_rate, c.dth_factor))
            .collect();
        assert_eq!(
            coords,
            vec![(0.0, 0.75), (0.0, 1.25), (0.2, 0.75), (0.2, 1.25)]
        );
    }

    #[test]
    fn zero_loss_cell_matches_a_faultless_run() {
        // At loss 0.0 the plan is lossless and the retry policy never
        // fires, so the cell must reproduce the plain campaign numbers.
        let cfg = quick();
        let cell = run_cell(&cfg, 0.0, 1.25);
        assert_eq!((cell.retries, cell.lost, cell.late), (0, 0, 0));
        assert_eq!(cell.mean_stale_nodes, 0.0);

        let plain = crate::campaign::run_policy(
            &ExperimentConfig {
                dth_factors: vec![1.25],
                ..cfg.base.clone()
            },
            crate::campaign::PolicySpec::Adf(1.25),
        );
        assert_eq!(cell.sent, plain.total_sent());
        assert_eq!(cell.network_bytes, plain.network_bytes);
        let (with, without) = plain.mean_rmse();
        assert_eq!(cell.rmse_with_le, with);
        assert_eq!(cell.rmse_without_le, without);
    }

    #[test]
    fn losses_inject_retries_and_degradation() {
        let cfg = quick();
        let faulty = run_cell(&cfg, 0.2, 1.25);
        assert!(faulty.lost > 0, "no update was ever lost at 20% loss");
        assert!(faulty.retries > 0, "the retry policy never fired");
        assert!(faulty.late > 0, "no deferred frame ever arrived");
        assert!(faulty.mean_stale_nodes > 0.0);

        let clean = run_cell(&cfg, 0.0, 1.25);
        assert!(
            faulty.sent > clean.sent,
            "retransmissions must consume extra airtime: {} vs {}",
            faulty.sent,
            clean.sent
        );
    }

    #[test]
    fn campaign_threads_do_not_change_the_matrix() {
        let serial = compute(&quick());
        for campaign_threads in [2, 4] {
            let cfg = FaultMatrixConfig {
                base: quick().base.with_campaign_threads(campaign_threads),
                ..quick()
            };
            assert_eq!(compute(&cfg).cells, serial.cells);
        }
    }

    #[test]
    fn reports_render_every_cell() {
        let data = compute(&quick());
        let text = data.to_string();
        let csv = data.csv();
        assert!(text.contains("0.20"));
        assert_eq!(csv.lines().count(), 1 + data.cells.len());
    }
}
