//! Scale benchmark: per-tick wall-clock across the named scenarios.
//!
//! Where [`scalability`](crate::scalability) asks whether the *filter*
//! stays effective as the map grows, this experiment asks whether the
//! *engine* does: it drives the ADF pipeline over `campus_140` →
//! `city_1140` → `metro_100k` and reports ns/tick and location-update
//! throughput (observations processed per wall-clock second) at each
//! scale. The tick budget is capped per scenario so the sweep stays
//! bounded — `metro_100k` runs tens of ticks, not the campus's hundreds.

use std::fmt;
use std::time::Instant;

use crate::config::ExperimentConfig;
use crate::report::text_table;
use crate::scenarios::Scenario;

/// Node-ticks each scenario may spend before its tick budget is cut.
const NODE_TICK_BUDGET: u64 = 5_000_000;

/// Ticks left unmeasured at the front of each run: first-contact broker
/// registrations and scratch-buffer growth happen here, so the measured
/// window reflects the steady state.
const WARMUP_TICKS: u64 = 10;

/// One scenario's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleBenchRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Population size.
    pub nodes: usize,
    /// Measured (post-warmup) ticks.
    pub ticks: u64,
    /// Mean wall-clock nanoseconds per tick over the measured window.
    pub ns_per_tick: f64,
    /// Location updates (observations) processed per wall-clock second.
    pub lu_per_s: f64,
    /// Fraction of observations the filter let through, percent.
    pub sent_pct: f64,
}

/// The sweep's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleBenchReport {
    /// Worker threads used per simulation.
    pub threads: usize,
    /// One row per scenario, smallest first.
    pub rows: Vec<ScaleBenchRow>,
}

/// Ticks a scenario runs: the configured duration, capped by the
/// node-tick budget, never below 10.
#[must_use]
pub fn ticks_for(cfg: &ExperimentConfig, nodes: usize) -> u64 {
    let cap = NODE_TICK_BUDGET / (nodes as u64).max(1);
    cfg.duration_ticks.min(cap).max(10)
}

/// Runs the scale sweep over `scenarios`.
///
/// # Panics
///
/// Panics on an empty scenario list.
#[must_use]
pub fn run_scale(cfg: &ExperimentConfig, scenarios: &[&Scenario]) -> ScaleBenchReport {
    assert!(!scenarios.is_empty(), "sweep needs at least one scenario");
    let threads = cfg.runtime.threads;
    let mut rows = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        let ticks = ticks_for(cfg, s.nodes);
        let mut sim = s.build_sim(cfg.seed, threads);
        sim.run(WARMUP_TICKS);

        let started = Instant::now();
        let stats = sim.run(ticks);
        let elapsed = started.elapsed();

        let observed: u64 = stats.iter().map(|t| u64::from(t.observed)).sum();
        let sent: u64 = stats.iter().map(|t| u64::from(t.sent)).sum();
        let secs = elapsed.as_secs_f64();
        rows.push(ScaleBenchRow {
            scenario: s.name,
            nodes: s.nodes,
            ticks,
            ns_per_tick: elapsed.as_nanos() as f64 / ticks as f64,
            lu_per_s: if secs > 0.0 { observed as f64 / secs } else { 0.0 },
            sent_pct: 100.0 * sent as f64 / observed.max(1) as f64,
        });
    }
    ScaleBenchReport { threads, rows }
}

impl ScaleBenchReport {
    /// Machine-readable CSV, one row per scenario.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scenario,nodes,ticks,ns_per_tick,lu_per_s,sent_pct\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.0},{:.0},{:.2}\n",
                r.scenario, r.nodes, r.ticks, r.ns_per_tick, r.lu_per_s, r.sent_pct
            ));
        }
        out
    }
}

impl fmt::Display for ScaleBenchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Scale benchmark (ADF tick engine, {} thread{})",
            self.threads,
            if self.threads == 1 { "" } else { "s" }
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.to_string(),
                    r.nodes.to_string(),
                    r.ticks.to_string(),
                    format!("{:.0}", r.ns_per_tick),
                    format!("{:.2e}", r.lu_per_s),
                    format!("{:.1}%", r.sent_pct),
                ]
            })
            .collect();
        let t = text_table(
            &["scenario", "nodes", "ticks", "ns/tick", "LU/s", "sent"],
            &rows,
        );
        writeln!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn tick_budget_caps_large_scenarios() {
        let cfg = ExperimentConfig::default(); // 1800 ticks
        assert_eq!(ticks_for(&cfg, 140), 1800);
        assert_eq!(ticks_for(&cfg, 1_140), 1800);
        let metro = ticks_for(&cfg, 100_055);
        assert!((10..200).contains(&metro), "metro ticks = {metro}");
        assert_eq!(ticks_for(&cfg, 1_003_640), 10);
    }

    #[test]
    fn sweep_measures_each_scenario() {
        let cfg = ExperimentConfig {
            duration_ticks: 20,
            ..ExperimentConfig::default()
        };
        let small = [scenarios::find("campus_140").unwrap()];
        let report = run_scale(&cfg, &small);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.nodes, 140);
        assert_eq!(row.ticks, 20);
        assert!(row.ns_per_tick > 0.0);
        assert!(row.lu_per_s > 0.0);
        assert!((0.0..=100.0).contains(&row.sent_pct));
        let text = report.to_string();
        assert!(text.contains("campus_140"));
        assert!(report.to_csv().starts_with("scenario,"));
    }
}
