//! The unified experiment API: every table and figure behind one trait,
//! one registry, one CLI.
//!
//! Each entry of the paper's evaluation (and each extension experiment)
//! implements [`Experiment`]: a stable [`name`](Experiment::name) used on
//! the command line, a one-line [`description`](Experiment::description),
//! and [`run`](Experiment::run), which executes the experiment against an
//! [`ExperimentConfig`] while streaming telemetry into a
//! [`Recorder`] and returns a printable [`Report`].
//!
//! Experiments backed by the shared evaluation campaign additionally
//! implement [`Experiment::run_on`], so callers holding an
//! already-computed [`CampaignData`] (the `all-experiments` path) render
//! every figure from **one** campaign instead of recomputing it per
//! figure.

use crate::campaign::{run_campaign_recorded, CampaignData};
use crate::config::ExperimentConfig;
use crate::fault_matrix::{self, FaultMatrixConfig};
use crate::report::text_table;
use crate::{
    extensions, fig4, fig5, fig6, fig7, fig89, intervals, robustness, scalability, scale, table1,
};
use mobigrid_telemetry::Recorder;

/// The rendered outcome of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The experiment's registry name (e.g. `"fig4"`).
    pub name: &'static str,
    /// The human-readable text report, ready to print.
    pub text: String,
    /// Machine-readable CSV, when the experiment defines one.
    pub csv: Option<String>,
}

/// One table, figure or extension experiment of the evaluation.
pub trait Experiment: Sync {
    /// Stable registry name, usable as `--experiment <name>`.
    fn name(&self) -> &'static str;

    /// One-line description for `--list`.
    fn description(&self) -> &'static str;

    /// Executes the experiment, streaming telemetry into `rec`.
    fn run(&self, cfg: &ExperimentConfig, rec: &mut dyn Recorder) -> Report;

    /// Renders the report from an already-computed campaign, for callers
    /// that share one campaign across several figures. Returns `None`
    /// when the experiment is not campaign-backed (it needs its own
    /// simulations).
    fn run_on(&self, _data: &CampaignData) -> Option<Report> {
        None
    }
}

/// `run` for campaign-backed experiments: compute the campaign (recorded),
/// then render through `run_on`.
fn run_via_campaign(exp: &dyn Experiment, cfg: &ExperimentConfig, rec: &mut dyn Recorder) -> Report {
    let data = run_campaign_recorded(cfg, rec);
    exp.run_on(&data)
        .expect("campaign-backed experiments implement run_on")
}

/// Renders a [`fig89`] arm (Figure 8 without LE, Figure 9 with LE) the way
/// the original standalone binaries did.
fn kind_error_table(rows: &[fig89::KindErrorRow]) -> String {
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}av", r.factor),
                format!("{:.3}", r.road),
                format!("{:.3}", r.building),
                format!("{:.2}x", r.road_to_building_ratio()),
            ]
        })
        .collect();
    text_table(&["DTH", "road", "building", "road/building"], &rows)
}

struct Table1Exp;
impl Experiment for Table1Exp {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn description(&self) -> &'static str {
        "Table 1: the mobile-node specification (no simulation needed)"
    }
    fn run(&self, _cfg: &ExperimentConfig, _rec: &mut dyn Recorder) -> Report {
        Report {
            name: self.name(),
            text: table1::compute().to_string(),
            csv: None,
        }
    }
    fn run_on(&self, _data: &CampaignData) -> Option<Report> {
        // The specification is static; any campaign renders it.
        Some(Report {
            name: self.name(),
            text: table1::compute().to_string(),
            csv: None,
        })
    }
}

macro_rules! campaign_figure {
    ($ty:ident, $name:literal, $desc:literal, $module:ident) => {
        struct $ty;
        impl Experiment for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn description(&self) -> &'static str {
                $desc
            }
            fn run(&self, cfg: &ExperimentConfig, rec: &mut dyn Recorder) -> Report {
                run_via_campaign(self, cfg, rec)
            }
            fn run_on(&self, data: &CampaignData) -> Option<Report> {
                let fig = $module::compute(data);
                Some(Report {
                    name: self.name(),
                    text: fig.to_string(),
                    csv: Some(fig.to_csv()),
                })
            }
        }
    };
}

campaign_figure!(
    Fig4Exp,
    "fig4",
    "Figure 4: transmitted location updates per second",
    fig4
);
campaign_figure!(
    Fig5Exp,
    "fig5",
    "Figure 5: traffic reduction rate vs the ideal policy",
    fig5
);
campaign_figure!(
    Fig6Exp,
    "fig6",
    "Figure 6: transmission rate by region kind (road vs building)",
    fig6
);
campaign_figure!(
    Fig7Exp,
    "fig7",
    "Figure 7: location RMSE with and without the estimator",
    fig7
);
campaign_figure!(
    Fig89Exp,
    "fig89",
    "Figures 8+9: per-region RMSE, both broker arms",
    fig89
);

struct Fig8Exp;
impl Experiment for Fig8Exp {
    fn name(&self) -> &'static str {
        "fig8"
    }
    fn description(&self) -> &'static str {
        "Figure 8: per-region RMSE without the estimator"
    }
    fn run(&self, cfg: &ExperimentConfig, rec: &mut dyn Recorder) -> Report {
        run_via_campaign(self, cfg, rec)
    }
    fn run_on(&self, data: &CampaignData) -> Option<Report> {
        let fig = fig89::compute(data);
        Some(Report {
            name: self.name(),
            text: format!(
                "Figure 8. RMSE by region, without LE (metres)\n{}",
                kind_error_table(&fig.without_le)
            ),
            csv: Some(fig.to_csv()),
        })
    }
}

struct Fig9Exp;
impl Experiment for Fig9Exp {
    fn name(&self) -> &'static str {
        "fig9"
    }
    fn description(&self) -> &'static str {
        "Figure 9: per-region RMSE with the estimator"
    }
    fn run(&self, cfg: &ExperimentConfig, rec: &mut dyn Recorder) -> Report {
        run_via_campaign(self, cfg, rec)
    }
    fn run_on(&self, data: &CampaignData) -> Option<Report> {
        let fig = fig89::compute(data);
        Some(Report {
            name: self.name(),
            text: format!(
                "Figure 9. RMSE by region, with LE (metres)\n{}",
                kind_error_table(&fig.with_le)
            ),
            csv: Some(fig.to_csv()),
        })
    }
}

struct FaultMatrixExp;
impl Experiment for FaultMatrixExp {
    fn name(&self) -> &'static str {
        "fault_matrix"
    }
    fn description(&self) -> &'static str {
        "Fault matrix: traffic/accuracy trade-off on a lossy channel"
    }
    fn run(&self, cfg: &ExperimentConfig, rec: &mut dyn Recorder) -> Report {
        let matrix_cfg = FaultMatrixConfig {
            base: cfg.clone(),
            ..FaultMatrixConfig::default()
        };
        let data = fault_matrix::compute_recorded(&matrix_cfg, rec);
        Report {
            name: self.name(),
            text: data.to_string(),
            csv: Some(data.csv()),
        }
    }
}

struct IntervalsExp;
impl Experiment for IntervalsExp {
    fn name(&self) -> &'static str {
        "intervals"
    }
    fn description(&self) -> &'static str {
        "Inter-update interval distributions per mobility pattern"
    }
    fn run(&self, cfg: &ExperimentConfig, _rec: &mut dyn Recorder) -> Report {
        let text = cfg
            .dth_factors
            .iter()
            .map(|&factor| intervals::measure_intervals(cfg, factor).to_string())
            .collect::<Vec<_>>()
            .join("\n");
        Report {
            name: self.name(),
            text,
            csv: None,
        }
    }
}

struct ScalabilityExp;
impl Experiment for ScalabilityExp {
    fn name(&self) -> &'static str {
        "scalability"
    }
    fn description(&self) -> &'static str {
        "Scalability sweep over grid cities of growing size"
    }
    fn run(&self, cfg: &ExperimentConfig, _rec: &mut dyn Recorder) -> Report {
        // Full 1800-tick runs at 900+ nodes take a while; trim the default.
        let mut cfg = cfg.clone();
        if cfg.duration_ticks == 1800 {
            cfg.duration_ticks = 300;
        }
        let sizes = [(1, 1), (2, 2), (3, 3), (5, 5)];
        Report {
            name: self.name(),
            text: scalability::sweep_city_sizes(&cfg, &sizes).to_string(),
            csv: None,
        }
    }
}

struct ScaleExp;
impl Experiment for ScaleExp {
    fn name(&self) -> &'static str {
        "scale"
    }
    fn description(&self) -> &'static str {
        "Scale benchmark: ns/tick and LU/s over campus_140 -> city_1140 -> metro_100k"
    }
    fn run(&self, cfg: &ExperimentConfig, _rec: &mut dyn Recorder) -> Report {
        let sweep: Vec<&crate::scenarios::Scenario> = ["campus_140", "city_1140", "metro_100k"]
            .iter()
            .map(|n| crate::scenarios::find(n).expect("registered scenario"))
            .collect();
        let report = scale::run_scale(cfg, &sweep);
        Report {
            name: self.name(),
            text: report.to_string(),
            csv: Some(report.to_csv()),
        }
    }
}

struct SeedsExp;
impl Experiment for SeedsExp {
    fn name(&self) -> &'static str {
        "seeds"
    }
    fn description(&self) -> &'static str {
        "Seed-sweep robustness: mean ± std of the headline metrics"
    }
    fn run(&self, cfg: &ExperimentConfig, _rec: &mut dyn Recorder) -> Report {
        let seeds: Vec<u64> = (1..=5).map(|i| cfg.seed.wrapping_add(i)).collect();
        Report {
            name: self.name(),
            text: robustness::sweep_seeds(cfg, &seeds).to_string(),
            csv: None,
        }
    }
}

struct ExtensionsExp;
impl Experiment for ExtensionsExp {
    fn name(&self) -> &'static str {
        "extensions"
    }
    fn description(&self) -> &'static str {
        "Extensions: energy saving and outage resilience"
    }
    fn run(&self, cfg: &ExperimentConfig, _rec: &mut dyn Recorder) -> Report {
        let text = format!(
            "{}\n{}",
            extensions::energy_extension(cfg),
            extensions::outage_resilience(cfg)
        );
        Report {
            name: self.name(),
            text,
            csv: None,
        }
    }
}

/// Every registered experiment, in presentation order.
#[must_use]
pub fn all() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 14] = [
        &Table1Exp,
        &Fig4Exp,
        &Fig5Exp,
        &Fig6Exp,
        &Fig7Exp,
        &Fig8Exp,
        &Fig9Exp,
        &Fig89Exp,
        &FaultMatrixExp,
        &IntervalsExp,
        &ScalabilityExp,
        &ScaleExp,
        &SeedsExp,
        &ExtensionsExp,
    ];
    &REGISTRY
}

/// Looks an experiment up by its registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    all().iter().copied().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigrid_telemetry::{MemoryRecorder, NoopRecorder};

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut seen = std::collections::BTreeSet::new();
        for exp in all() {
            assert!(seen.insert(exp.name()), "duplicate name {}", exp.name());
            assert!(!exp.description().is_empty());
            assert_eq!(find(exp.name()).unwrap().name(), exp.name());
        }
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn campaign_backed_experiments_share_one_campaign() {
        let cfg = ExperimentConfig {
            duration_ticks: 60,
            ..ExperimentConfig::default()
        };
        let data = run_campaign_recorded(&cfg, &mut NoopRecorder);
        let mut rendered = 0;
        for exp in all() {
            if let Some(report) = exp.run_on(&data) {
                assert!(!report.text.is_empty(), "{} rendered nothing", exp.name());
                rendered += 1;
            }
        }
        // table1 + fig4..fig9 + fig89.
        assert_eq!(rendered, 8);
    }

    #[test]
    fn fig4_run_records_telemetry_and_reports_csv() {
        let cfg = ExperimentConfig {
            duration_ticks: 60,
            ..ExperimentConfig::default()
        };
        let mut rec = MemoryRecorder::new();
        let report = find("fig4").unwrap().run(&cfg, &mut rec);
        assert_eq!(report.name, "fig4");
        assert!(report.text.contains("Figure 4"));
        assert!(report.csv.is_some());
        // One campaign = ideal + 3 ADF runs, 60 ticks each.
        assert_eq!(rec.counter("sim.ticks"), 4 * 60);
    }
}
