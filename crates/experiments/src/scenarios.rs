//! Named deterministic scenarios: the paper's campus plus three grid
//! cities of increasing scale, each fully determined by `(name, seed)`.
//!
//! | name         | map                  | nodes      |
//! |--------------|----------------------|------------|
//! | `campus_140` | Inha-like campus     | 140        |
//! | `city_1140`  | 8×8 grid city        | 1,140      |
//! | `metro_100k` | 81×81 grid city      | 100,055    |
//! | `mega_1m`    | 258×258 grid city    | 1,003,640  |
//!
//! A grid city of `bx × by` blocks has `bx + by + 2` roads and `bx × by`
//! buildings; with the Table-1 densities (10 nodes per road, 15 per
//! building) its population is `10·(bx + by + 2) + 15·bx·by`. The two
//! large scenarios exist to exercise the columnar node-state engine well
//! past the paper's scale — `metro_100k` is the benchmark workload
//! recorded in `BENCH_tick.json`, `mega_1m` the stress ceiling.

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, MobileGridSim, MobileNode, SimBuilder};
use mobigrid_campus::Campus;

use crate::workload;

/// One named scenario: a map recipe plus its Table-1 population size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Stable scenario name, usable on the command line.
    pub name: &'static str,
    /// Grid-city dimensions in blocks; `None` is the Inha-like campus.
    pub blocks: Option<(usize, usize)>,
    /// Population size with the Table-1 per-region densities.
    pub nodes: usize,
    /// One-line description for listings.
    pub description: &'static str,
}

/// Every named scenario, smallest first.
pub const ALL: [Scenario; 4] = [
    Scenario {
        name: "campus_140",
        blocks: None,
        nodes: 140,
        description: "the paper's 140-node Inha-like campus",
    },
    Scenario {
        name: "city_1140",
        blocks: Some((8, 8)),
        nodes: 1_140,
        description: "8x8 grid city, 1,140 nodes",
    },
    Scenario {
        name: "metro_100k",
        blocks: Some((81, 81)),
        nodes: 100_055,
        description: "81x81 grid city, 100,055 nodes",
    },
    Scenario {
        name: "mega_1m",
        blocks: Some((258, 258)),
        nodes: 1_003_640,
        description: "258x258 grid city, 1,003,640 nodes",
    },
];

/// Looks a scenario up by name.
#[must_use]
pub fn find(name: &str) -> Option<&'static Scenario> {
    ALL.iter().find(|s| s.name == name)
}

impl Scenario {
    /// Builds the scenario's map.
    #[must_use]
    pub fn campus(&self) -> Campus {
        match self.blocks {
            Some((bx, by)) => Campus::grid_city(bx, by),
            None => Campus::inha_like(),
        }
    }

    /// Generates the deterministic population: same `(scenario, seed)`,
    /// same nodes, bit for bit.
    #[must_use]
    pub fn population(&self, seed: u64) -> Vec<MobileNode> {
        let campus = self.campus();
        let nodes = workload::populate(&campus, seed);
        debug_assert_eq!(nodes.len(), self.nodes, "{} population drifted", self.name);
        nodes
    }

    /// Builds a ready-to-run ADF simulation over the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the static ADF configuration is invalid (it is not).
    #[must_use]
    pub fn build_sim(&self, seed: u64, threads: usize) -> MobileGridSim {
        SimBuilder::new()
            .nodes(self.population(seed))
            .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid config"))
            .threads(threads)
            .build()
            .expect("valid simulation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_formula_matches_the_generator() {
        // Verify the table's node counts on the sizes cheap enough to
        // actually generate; the formula covers the rest.
        for s in &ALL[..2] {
            assert_eq!(s.population(7).len(), s.nodes, "{}", s.name);
        }
        for s in &ALL {
            if let Some((bx, by)) = s.blocks {
                assert_eq!(s.nodes, 10 * (bx + by + 2) + 15 * bx * by, "{}", s.name);
            }
        }
    }

    #[test]
    fn names_resolve_and_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for s in &ALL {
            assert!(seen.insert(s.name), "duplicate scenario {}", s.name);
            assert_eq!(find(s.name).unwrap().name, s.name);
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn scenario_sims_step() {
        let mut sim = find("campus_140").unwrap().build_sim(3, 1);
        assert_eq!(sim.step().observed, 140);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = find("city_1140").unwrap();
        let a = s.population(9);
        let b = s.population(9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.position(), y.position());
        }
    }
}
