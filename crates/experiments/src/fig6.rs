//! Figure 6 — LU transmission rate (vs ideal) by region type.
//!
//! Paper's result: at DTH 0.75 av the ADF still transmits 90.4 % of road
//! LUs but only 68.5 % of building LUs; at 1.0 av 57.8 % / 47.3 %; at
//! 1.25 av the two converge (24.0 % / 25.6 %). The qualitative claim we
//! reproduce: *small* thresholds filter buildings (slow, confined nodes)
//! relatively harder than roads, and the gap narrows as the threshold grows.

use std::fmt;

use crate::campaign::CampaignData;
use crate::report;

/// Transmission rates for one ADF factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindRates {
    /// DTH factor (× av).
    pub factor: f64,
    /// Road LUs transmitted / observed, in percent.
    pub road_pct: f64,
    /// Building LUs transmitted / observed, in percent.
    pub building_pct: f64,
}

/// The computed figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// One row per ADF factor, in campaign order.
    pub rates: Vec<KindRates>,
}

/// Derives the figure from campaign data.
#[must_use]
pub fn compute(data: &CampaignData) -> Fig6 {
    let rates = data
        .adf
        .iter()
        .map(|(factor, run)| KindRates {
            factor: *factor,
            road_pct: 100.0 * run.cumulative.road.transmission_rate(),
            building_pct: 100.0 * run.cumulative.building.transmission_rate(),
        })
        .collect();
    Fig6 { rates }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6. Transmission rate of LUs by region (vs ideal)")?;
        let rows: Vec<Vec<String>> = self
            .rates
            .iter()
            .map(|r| {
                vec![
                    format!("{:.2}av", r.factor),
                    format!("{:.2}%", r.road_pct),
                    format!("{:.2}%", r.building_pct),
                ]
            })
            .collect();
        let table = report::text_table(&["DTH", "roads", "buildings"], &rows);
        writeln!(f, "{table}")
    }
}

impl Fig6 {
    /// The transmission rates as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rates
            .iter()
            .map(|r| {
                vec![
                    format!("{:.2}", r.factor),
                    format!("{:.4}", r.road_pct),
                    format!("{:.4}", r.building_pct),
                ]
            })
            .collect();
        crate::report::csv(&["dth_factor", "road_pct", "building_pct"], &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::shared_campaign;

    fn fig() -> Fig6 {
        compute(shared_campaign())
    }

    #[test]
    fn rates_fall_as_factor_grows() {
        let f = fig();
        for w in f.rates.windows(2) {
            assert!(
                w[1].road_pct <= w[0].road_pct + 1.0,
                "road rate not decreasing: {:?}",
                f.rates
            );
            assert!(
                w[1].building_pct <= w[0].building_pct + 1.0,
                "building rate not decreasing: {:?}",
                f.rates
            );
        }
    }

    #[test]
    fn rates_are_percentages() {
        for r in fig().rates {
            assert!((0.0..=100.0).contains(&r.road_pct));
            assert!((0.0..=100.0).contains(&r.building_pct));
        }
    }

    #[test]
    fn small_threshold_filters_buildings_harder_than_roads() {
        // The paper's qualitative claim: "ADF with a small DTH can
        // effectively reduce the number of LUs when the MNs are in a
        // building" — buildings lose relatively more traffic at 0.75 av.
        let f = fig();
        let smallest = &f.rates[0];
        assert!(
            smallest.building_pct < smallest.road_pct,
            "expected buildings < roads at the smallest factor: {smallest:?}"
        );
    }

    #[test]
    fn report_renders() {
        let text = fig().to_string();
        assert!(text.contains("Figure 6"));
        assert!(text.contains("roads"));
    }

    #[test]
    fn csv_has_three_factor_rows() {
        let csv = fig().to_csv();
        assert!(csv.starts_with("dth_factor,road_pct,building_pct"));
        assert_eq!(csv.lines().count(), 4);
    }
}
