//! Command-line front end shared by every experiment binary.
//!
//! One flag surface drives the whole registry:
//!
//! ```text
//! experiment --experiment fig4 [--ticks N] [--seed S] [--threads T]
//!            [--campaign-threads C] [--csv]
//!            [--telemetry out.jsonl] [--telemetry-csv out.csv]
//! experiment --list
//! ```
//!
//! The historical per-figure binaries (`fig4`, `table1`, …) are thin
//! shims over [`main_named`] that pre-select their experiment; the
//! `experiment` binary exposes the full registry through
//! `--experiment <name>` (including the pseudo-name `all`, which computes
//! one shared campaign and renders every campaign-backed report from it).
//!
//! `--telemetry` / `--telemetry-csv` switch the run from the no-op
//! recorder to an in-memory [`MemoryRecorder`] and write the export to
//! the given path after the run.

use std::fmt::Write as _;

use mobigrid_telemetry::{MemoryRecorder, NoopRecorder, Recorder};

use crate::config::ExperimentConfig;
use crate::experiment::{self, Experiment, Report};

/// Parsed command line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cli {
    /// The experiment configuration after flag overrides.
    pub config: ExperimentConfig,
    /// Emit machine-readable CSV instead of the text report.
    pub csv: bool,
    /// Selected experiment name (`--experiment`), if any.
    pub experiment: Option<String>,
    /// List the registry and exit (`--list`).
    pub list: bool,
    /// Write a JSONL telemetry export to this path after the run.
    pub telemetry: Option<String>,
    /// Write a CSV telemetry export to this path after the run.
    pub telemetry_csv: Option<String>,
    /// Event-ring capacity for the recorder (`--events`); the default
    /// keeps only the newest 4096 events.
    pub events: Option<usize>,
}

const USAGE: &str = "usage: [--experiment NAME | --list] [--ticks N] [--seed S] \
                     [--threads T] [--campaign-threads C] [--csv] \
                     [--telemetry FILE.jsonl] [--telemetry-csv FILE.csv] \
                     [--events N]";

/// Parses a flag list (without the program name).
///
/// # Errors
///
/// Returns a usage message on unknown flags, missing values or
/// non-numeric numbers.
pub fn parse_args<I>(args: I) -> Result<Cli, String>
where
    I: IntoIterator<Item = String>,
{
    let mut cli = Cli::default();
    let mut args = args.into_iter();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--ticks" => cli.config.duration_ticks = take_u64(&mut args, "--ticks")?,
            "--seed" => cli.config.seed = take_u64(&mut args, "--seed")?,
            "--threads" => {
                cli.config.runtime.threads = take_u64(&mut args, "--threads")?.max(1) as usize;
            }
            "--campaign-threads" => {
                cli.config.runtime.campaign_threads =
                    take_u64(&mut args, "--campaign-threads")?.max(1) as usize;
            }
            "--csv" => cli.csv = true,
            "--list" => cli.list = true,
            "--experiment" => cli.experiment = Some(take_value(&mut args, "--experiment")?),
            "--telemetry" => cli.telemetry = Some(take_value(&mut args, "--telemetry")?),
            "--telemetry-csv" => cli.telemetry_csv = Some(take_value(&mut args, "--telemetry-csv")?),
            "--events" => cli.events = Some(take_u64(&mut args, "--events")? as usize),
            other => return Err(format!("unknown flag {other}; {USAGE}")),
        }
    }
    Ok(cli)
}

fn take_value(args: &mut dyn Iterator<Item = String>, name: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{name} needs a value; {USAGE}"))
}

fn take_u64(args: &mut dyn Iterator<Item = String>, name: &str) -> Result<u64, String> {
    take_value(args, name)?
        .parse()
        .map_err(|_| format!("{name} needs an integer; {USAGE}"))
}

/// The registry listing printed by `--list`.
#[must_use]
pub fn listing() -> String {
    let mut out = String::from("available experiments:\n");
    let width = experiment::all()
        .iter()
        .map(|e| e.name().len())
        .max()
        .unwrap_or(0)
        .max("all".len());
    let _ = writeln!(
        out,
        "  {:width$}  every campaign-backed report from one shared campaign",
        "all"
    );
    for exp in experiment::all() {
        let _ = writeln!(out, "  {:width$}  {}", exp.name(), exp.description());
    }
    out
}

/// Runs one experiment (or the pseudo-experiment `all`) with the
/// telemetry recorder the CLI asked for, and returns the rendered
/// reports.
///
/// # Errors
///
/// Returns an error message for unknown experiment names.
pub fn execute(cli: &Cli, name: &str) -> Result<Vec<Report>, String> {
    let wants_telemetry = cli.telemetry.is_some() || cli.telemetry_csv.is_some();
    let mut memory = match cli.events {
        Some(events) => MemoryRecorder::with_capacity(4096, events),
        None => MemoryRecorder::new(),
    };
    let mut noop = NoopRecorder;
    let rec: &mut dyn Recorder = if wants_telemetry { &mut memory } else { &mut noop };

    let reports = if name == "all" {
        let data = crate::campaign::run_campaign_recorded(&cli.config, rec);
        let mut reports: Vec<Report> = experiment::all()
            .iter()
            .filter_map(|exp| exp.run_on(&data))
            .collect();
        let mut accounting = format!(
            "network accounting (ideal run): {} messages / {} bytes\n",
            data.ideal.network_messages, data.ideal.network_bytes
        );
        for (factor, run) in &data.adf {
            let _ = writeln!(
                accounting,
                "network accounting (adf {factor:.2}av): {} messages / {} bytes",
                run.network_messages, run.network_bytes
            );
        }
        reports.push(Report {
            name: "network-accounting",
            text: accounting,
            csv: None,
        });
        reports
    } else {
        let exp: &dyn Experiment = experiment::find(name)
            .ok_or_else(|| format!("unknown experiment {name:?}; try --list"))?;
        vec![exp.run(&cli.config, rec)]
    };

    if wants_telemetry {
        if let Some(path) = &cli.telemetry {
            std::fs::write(path, memory.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
        if let Some(path) = &cli.telemetry_csv {
            std::fs::write(path, memory.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    Ok(reports)
}

/// Entry point shared by every binary: parses `std::env::args`, runs the
/// selected experiment (`default` pre-selects one for the thin per-figure
/// shims; `--experiment` overrides it) and prints the reports.
///
/// Exits the process with status 2 on a CLI error.
pub fn main_named(default: Option<&str>) {
    let cli = match parse_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if cli.list {
        print!("{}", listing());
        return;
    }
    let name = match cli.experiment.as_deref().or(default) {
        Some(name) => name.to_string(),
        None => {
            eprintln!("no experiment selected; {USAGE}");
            std::process::exit(2);
        }
    };
    match execute(&cli, &name) {
        Ok(reports) => {
            for report in reports {
                if cli.csv {
                    if let Some(csv) = &report.csv {
                        print!("{csv}");
                        continue;
                    }
                }
                println!("{}", report.text);
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(flags: &[&str]) -> Result<Cli, String> {
        parse_args(flags.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_the_full_flag_surface() {
        let cli = parse(&[
            "--experiment",
            "fig4",
            "--ticks",
            "60",
            "--seed",
            "7",
            "--threads",
            "2",
            "--campaign-threads",
            "3",
            "--csv",
            "--telemetry",
            "out.jsonl",
            "--telemetry-csv",
            "out.csv",
            "--events",
            "99",
        ])
        .unwrap();
        assert_eq!(cli.events, Some(99));
        assert_eq!(cli.experiment.as_deref(), Some("fig4"));
        assert_eq!(cli.config.duration_ticks, 60);
        assert_eq!(cli.config.seed, 7);
        assert_eq!(cli.config.runtime.threads, 2);
        assert_eq!(cli.config.runtime.campaign_threads, 3);
        assert!(cli.csv);
        assert_eq!(cli.telemetry.as_deref(), Some("out.jsonl"));
        assert_eq!(cli.telemetry_csv.as_deref(), Some("out.csv"));
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(parse(&["--bogus"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--ticks"]).unwrap_err().contains("--ticks"));
        assert!(parse(&["--ticks", "abc"]).unwrap_err().contains("integer"));
    }

    #[test]
    fn listing_covers_the_registry() {
        let listing = listing();
        for exp in crate::experiment::all() {
            assert!(listing.contains(exp.name()), "missing {}", exp.name());
        }
        assert!(listing.contains("all"));
    }

    #[test]
    fn execute_rejects_unknown_experiments() {
        let cli = Cli::default();
        assert!(execute(&cli, "nope").unwrap_err().contains("unknown experiment"));
    }

    #[test]
    fn execute_writes_parseable_jsonl_telemetry() {
        let dir = std::env::temp_dir().join("mobigrid-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig4.jsonl");
        let cli = Cli {
            config: ExperimentConfig {
                duration_ticks: 30,
                ..ExperimentConfig::default()
            },
            telemetry: Some(path.to_string_lossy().into_owned()),
            ..Cli::default()
        };
        let reports = execute(&cli, "fig4").unwrap();
        assert_eq!(reports.len(), 1);
        let exported = std::fs::read_to_string(&path).unwrap();
        let lines = mobigrid_telemetry::json::validate_jsonl(&exported).unwrap();
        assert!(lines > 0, "telemetry export is empty");
        std::fs::remove_file(&path).ok();
    }

    /// `--experiment all --telemetry FILE` must export ONE merged
    /// recorder covering every campaign arm — not just the last arm's.
    #[test]
    fn execute_all_merges_every_arm_into_one_export() {
        let dir = std::env::temp_dir().join("mobigrid-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("all.jsonl");
        let cli = Cli {
            config: ExperimentConfig {
                duration_ticks: 20,
                ..ExperimentConfig::default()
            },
            telemetry: Some(path.to_string_lossy().into_owned()),
            // A ring big enough to retain more than one arm's events.
            events: Some(1 << 20),
            ..Cli::default()
        };
        execute(&cli, "all").unwrap();
        let exported = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            exported.matches("\"type\":\"meta\"").count(),
            1,
            "expected exactly one merged export"
        );
        let trace = crate::trace::parse_trace(&exported).unwrap();
        assert_eq!(trace.events_dropped, 0, "ring too small for the pin test");
        // The campaign records the ideal arm plus three ADF arms in arm
        // order; each restarts its tick clock, so the merged stream
        // splits into one segment per arm.
        assert!(
            trace.segments().len() >= 4,
            "expected one segment per campaign arm, got {}",
            trace.segments().len()
        );
    }
}
