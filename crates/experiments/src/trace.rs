//! Offline flight-recorder analysis: reconstruct per-LU causal chains
//! from a JSONL telemetry export and replay the invariant monitors.
//!
//! A recorded run (`--telemetry FILE.jsonl` on any experiment binary)
//! exports every location update's lifecycle as linked events sharing the
//! stable identity `(node, seq)`, where `seq` is the generation tick:
//! `lu_generated → lu_classified → lu_decision → lu_channel* → lu_apply →
//! lu_error`. This module parses that export back (with the telemetry
//! crate's own dependency-free JSON parser), groups the events into
//! [`Chain`]s, and answers the questions a paper reader asks of a run:
//!
//! - the default **summary** (segments, chains, completeness, totals),
//! - `--node N` — one node's tick-by-tick timeline,
//! - `--latency` — delivery-latency distribution, retries included,
//! - `--suppression` — longest suppression runs per velocity cluster,
//! - `--staleness` — staleness episodes (onset, depth, length),
//! - `--check` — replay the [`MonitorSet`] invariant battery offline and
//!   exit non-zero on any violation.
//!
//! A campaign export concatenates several runs' events (the recorder is
//! forked per arm and absorbed in arm order), so the event stream is
//! split into **segments** wherever the tick regresses; every query works
//! per segment. When the recorder's event ring dropped its oldest events
//! (`events_dropped` in the meta line), the first retained tick of the
//! first segment may be partial and is excluded from conservation checks.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use mobigrid_telemetry::json::{self, Value};
use mobigrid_telemetry::{
    ApplyOutcome, EventKind, LinkFate, MobilityClass, MonitorKind, MonitorSet, NodeFate,
    TickVitals, Violation,
};

/// One decoded event, stamped with the tick it was recorded on.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Logical tick of the recording clock.
    pub tick: u64,
    /// The decoded payload.
    pub kind: EventKind,
}

/// A parsed JSONL telemetry export.
#[derive(Debug, Default)]
pub struct Trace {
    /// Events the recorder's bounded ring dropped before export (from the
    /// meta line). When positive, the stream's head is truncated.
    pub events_dropped: u64,
    /// Counter totals by name (whole-run sums, not per tick).
    pub counters: BTreeMap<String, u64>,
    /// Every decoded event, in export (= recording) order.
    pub events: Vec<TraceEvent>,
}

fn field<'a>(obj: &'a Value, key: &str, line: usize) -> Result<&'a Value, String> {
    obj.get(key)
        .ok_or_else(|| format!("line {line}: missing field {key:?}"))
}

fn num(obj: &Value, key: &str, line: usize) -> Result<f64, String> {
    let v = field(obj, key, line)?;
    match v {
        Value::Null => Ok(f64::NAN),
        _ => v
            .as_f64()
            .ok_or_else(|| format!("line {line}: field {key:?} is not a number")),
    }
}

fn uint(obj: &Value, key: &str, line: usize) -> Result<u64, String> {
    field(obj, key, line)?
        .as_u64()
        .ok_or_else(|| format!("line {line}: field {key:?} is not an unsigned integer"))
}

fn int(obj: &Value, key: &str, line: usize) -> Result<i64, String> {
    field(obj, key, line)?
        .as_i64()
        .ok_or_else(|| format!("line {line}: field {key:?} is not an integer"))
}

fn text<'a>(obj: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    field(obj, key, line)?
        .as_str()
        .ok_or_else(|| format!("line {line}: field {key:?} is not a string"))
}

fn boolean(obj: &Value, key: &str, line: usize) -> Result<bool, String> {
    field(obj, key, line)?
        .as_bool()
        .ok_or_else(|| format!("line {line}: field {key:?} is not a boolean"))
}

fn u32_of(obj: &Value, key: &str, line: usize) -> Result<u32, String> {
    let v = uint(obj, key, line)?;
    u32::try_from(v).map_err(|_| format!("line {line}: field {key:?} overflows u32"))
}

/// The LU's generation seq. Event lines carry two `"seq"` members — the
/// recorder's stamp first, then the LU identity inside the kind body —
/// and the parser keeps members in document order, so take the last one.
fn lu_seq(obj: &Value, line: usize) -> Result<u32, String> {
    let Value::Obj(members) = obj else {
        return Err(format!("line {line}: event is not an object"));
    };
    let v = members
        .iter()
        .rev()
        .find(|(k, _)| k == "seq")
        .map(|(_, v)| v)
        .ok_or_else(|| format!("line {line}: missing field \"seq\""))?;
    let v = v
        .as_u64()
        .ok_or_else(|| format!("line {line}: field \"seq\" is not an unsigned integer"))?;
    u32::try_from(v).map_err(|_| format!("line {line}: field \"seq\" overflows u32"))
}

fn decode_event(obj: &Value, line: usize) -> Result<TraceEvent, String> {
    let tick = uint(obj, "tick", line)?;
    let kind = match text(obj, "kind", line)? {
        "lu_generated" => EventKind::LuGenerated {
            node: u32_of(obj, "node", line)?,
            seq: lu_seq(obj, line)?,
            x: num(obj, "x", line)?,
            y: num(obj, "y", line)?,
        },
        "lu_classified" => EventKind::LuClassified {
            node: u32_of(obj, "node", line)?,
            seq: lu_seq(obj, line)?,
            class: MobilityClass::from_name(text(obj, "class", line)?)
                .ok_or_else(|| format!("line {line}: unknown mobility class"))?,
            cluster: int(obj, "cluster", line)?
                .try_into()
                .map_err(|_| format!("line {line}: cluster overflows i32"))?,
            dth: num(obj, "dth", line)?,
        },
        "lu_decision" => EventKind::LuDecision {
            node: u32_of(obj, "node", line)?,
            seq: lu_seq(obj, line)?,
            sent: boolean(obj, "sent", line)?,
            displacement: num(obj, "displacement", line)?,
            dth: num(obj, "dth", line)?,
        },
        "lu_channel" => EventKind::LuChannel {
            node: u32_of(obj, "node", line)?,
            seq: lu_seq(obj, line)?,
            wire_seq: u32_of(obj, "wire_seq", line)?,
            attempt: u32_of(obj, "attempt", line)?,
            fate: LinkFate::from_name(text(obj, "fate", line)?)
                .ok_or_else(|| format!("line {line}: unknown link fate"))?,
            due_tick: uint(obj, "due_tick", line)?,
        },
        "lu_apply" => EventKind::LuApply {
            node: u32_of(obj, "node", line)?,
            seq: lu_seq(obj, line)?,
            outcome: ApplyOutcome::from_name(text(obj, "outcome", line)?)
                .ok_or_else(|| format!("line {line}: unknown apply outcome"))?,
            staleness: u32_of(obj, "staleness", line)?,
            blend: num(obj, "blend", line)?,
        },
        "lu_error" => EventKind::LuError {
            node: u32_of(obj, "node", line)?,
            seq: lu_seq(obj, line)?,
            err_le: num(obj, "err_le", line)?,
            err_raw: num(obj, "err_raw", line)?,
        },
        "invariant_violation" => EventKind::InvariantViolation {
            monitor: MonitorKind::from_name(text(obj, "monitor", line)?)
                .ok_or_else(|| format!("line {line}: unknown monitor"))?,
            node: u32_of(obj, "node", line)?,
            expected: int(obj, "expected", line)?,
            actual: int(obj, "actual", line)?,
        },
        "staleness" => EventKind::StalenessTransition {
            stale_nodes: u32_of(obj, "stale_nodes", line)?,
            previous: u32_of(obj, "previous", line)?,
        },
        other => return Err(format!("line {line}: unknown event kind {other:?}")),
    };
    Ok(TraceEvent { tick, kind })
}

/// Parses a JSONL telemetry export.
///
/// # Errors
///
/// Returns `"line N: …"` messages for invalid JSON, missing fields and
/// unknown event kinds, so a corrupt export points at its own defect.
pub fn parse_trace(input: &str) -> Result<Trace, String> {
    let mut trace = Trace::default();
    for (i, raw) in input.lines().enumerate() {
        let line = i + 1;
        let raw = raw.trim_end_matches('\r');
        if raw.is_empty() {
            continue;
        }
        let obj = json::parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        match text(&obj, "type", line)? {
            "meta" => trace.events_dropped = uint(&obj, "events_dropped", line)?,
            "counter" => {
                let name = text(&obj, "name", line)?.to_string();
                trace.counters.insert(name, uint(&obj, "value", line)?);
            }
            "event" => trace.events.push(decode_event(&obj, line)?),
            // Gauges, histograms and spans are summaries the flight
            // recorder does not need.
            "gauge" | "histogram" | "span" => {}
            other => return Err(format!("line {line}: unknown line type {other:?}")),
        }
    }
    Ok(trace)
}

impl Trace {
    /// Splits the event stream into contiguous single-run segments: a
    /// campaign export concatenates arms, so a tick regression marks the
    /// start of the next run.
    #[must_use]
    pub fn segments(&self) -> Vec<&[TraceEvent]> {
        let mut out = Vec::new();
        let mut start = 0;
        for i in 1..self.events.len() {
            if self.events[i].tick < self.events[i - 1].tick {
                out.push(&self.events[start..i]);
                start = i;
            }
        }
        if start < self.events.len() {
            out.push(&self.events[start..]);
        }
        out
    }
}

/// One location update's reconstructed lifecycle: everything recorded for
/// one `(node, generation tick)` identity.
#[derive(Debug, Clone, Default)]
pub struct Chain {
    /// Ground-truth position, when the generation event was retained.
    pub generated: Option<(f64, f64)>,
    /// `(class, cluster, dth)` from the policy's classification.
    pub classified: Option<(MobilityClass, i32, f64)>,
    /// `(sent, displacement, dth)` from the filter decision.
    pub decision: Option<(bool, f64, f64)>,
    /// Channel fates in delivery order: `(event tick, wire_seq, attempt,
    /// fate)`. Deferred frames contribute a second entry when they arrive.
    pub channel: Vec<(u64, u32, u32, LinkFate)>,
    /// Broker applies: `(event tick, outcome, staleness, blend)`.
    pub applies: Vec<(u64, ApplyOutcome, u32, f64)>,
    /// Both brokers' error sample `(err_le, err_raw)`.
    pub error: Option<(f64, f64)>,
}

impl Chain {
    /// True when the lifecycle is fully linked: generated, decided,
    /// applied and measured — plus a channel fate when the update was
    /// transmitted over a network.
    #[must_use]
    pub fn is_complete(&self, network: bool) -> bool {
        let sent = self.decision.is_some_and(|(s, _, _)| s);
        self.generated.is_some()
            && self.decision.is_some()
            && !self.applies.is_empty()
            && self.error.is_some()
            && (!network || !sent || !self.channel.is_empty())
    }
}

/// Reconstructs every causal chain in `events`, keyed by
/// `(node, generation tick)`.
#[must_use]
pub fn chains(events: &[TraceEvent]) -> BTreeMap<(u32, u32), Chain> {
    let mut out: BTreeMap<(u32, u32), Chain> = BTreeMap::new();
    for e in events {
        match e.kind {
            EventKind::LuGenerated { node, seq, x, y } => {
                out.entry((node, seq)).or_default().generated = Some((x, y));
            }
            EventKind::LuClassified {
                node,
                seq,
                class,
                cluster,
                dth,
            } => {
                out.entry((node, seq)).or_default().classified = Some((class, cluster, dth));
            }
            EventKind::LuDecision {
                node,
                seq,
                sent,
                displacement,
                dth,
            } => {
                out.entry((node, seq)).or_default().decision = Some((sent, displacement, dth));
            }
            EventKind::LuChannel {
                node,
                seq,
                wire_seq,
                attempt,
                fate,
                ..
            } => {
                out.entry((node, seq))
                    .or_default()
                    .channel
                    .push((e.tick, wire_seq, attempt, fate));
            }
            EventKind::LuApply {
                node,
                seq,
                outcome,
                staleness,
                blend,
            } => {
                out.entry((node, seq))
                    .or_default()
                    .applies
                    .push((e.tick, outcome, staleness, blend));
            }
            EventKind::LuError {
                node,
                seq,
                err_le,
                err_raw,
            } => {
                out.entry((node, seq)).or_default().error = Some((err_le, err_raw));
            }
            EventKind::InvariantViolation { .. } | EventKind::StalenessTransition { .. } => {}
        }
    }
    out
}

fn has_channel_events(events: &[TraceEvent]) -> bool {
    events
        .iter()
        .any(|e| matches!(e.kind, EventKind::LuChannel { .. }))
}

fn population(events: &[TraceEvent]) -> usize {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LuGenerated { node, .. } => Some(node as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

/// The default report: segments, chain completeness and stream totals.
#[must_use]
pub fn summary(trace: &Trace) -> String {
    let mut out = String::new();
    let segments = trace.segments();
    let _ = writeln!(
        out,
        "trace: {} events in {} segment(s), {} dropped at the head",
        trace.events.len(),
        segments.len(),
        trace.events_dropped,
    );
    let mut stream_violations = 0u64;
    for (si, seg) in segments.iter().enumerate() {
        let network = has_channel_events(seg);
        let nodes = population(seg);
        let first = seg.first().map_or(0, |e| e.tick);
        let last = seg.last().map_or(0, |e| e.tick);
        let all = chains(seg);
        let complete = all.values().filter(|c| c.is_complete(network)).count();
        let mut nodes_with_complete = vec![false; nodes];
        for ((node, _), chain) in &all {
            if chain.is_complete(network) {
                if let Some(slot) = nodes_with_complete.get_mut(*node as usize) {
                    *slot = true;
                }
            }
        }
        let covered = nodes_with_complete.iter().filter(|b| **b).count();
        let mut delivered = 0u64;
        let mut lost = 0u64;
        let mut late = 0u64;
        let mut retries = 0u64;
        for e in seg.iter() {
            match e.kind {
                EventKind::LuChannel { attempt, fate, .. } => {
                    retries += u64::from(attempt > 0);
                    match fate {
                        LinkFate::Delivered | LinkFate::DeliveredDuplicate => delivered += 1,
                        LinkFate::Deferred | LinkFate::DroppedFault | LinkFate::DroppedCorrupted => {
                            lost += 1;
                        }
                        LinkFate::ArrivedLate => late += 1,
                        LinkFate::DroppedNoCoverage => {}
                    }
                }
                EventKind::InvariantViolation { .. } => stream_violations += 1,
                _ => {}
            }
        }
        let _ = writeln!(
            out,
            "segment {}: ticks {first}..={last}, {}, {nodes} nodes",
            si + 1,
            if network { "network" } else { "no network" },
        );
        let _ = writeln!(
            out,
            "  chains: {} total, {complete} complete; nodes with a complete chain: {covered}/{nodes}",
            all.len(),
        );
        if network {
            let _ = writeln!(
                out,
                "  channel: {delivered} delivered, {lost} lost, {late} arrived late, {retries} retries"
            );
        }
    }
    let _ = writeln!(out, "invariant violations in stream: {stream_violations}");
    out
}

/// One node's tick-by-tick timeline across every segment.
#[must_use]
pub fn node_timeline(trace: &Trace, node: u32) -> String {
    let mut out = String::new();
    for (si, seg) in trace.segments().iter().enumerate() {
        let network = has_channel_events(seg);
        let all = chains(seg);
        let _ = writeln!(out, "segment {}:", si + 1);
        for ((_, seq), chain) in all.iter().filter(|((n, _), _)| *n == node) {
            let _ = write!(out, "  tick {seq}:");
            if let Some((x, y)) = chain.generated {
                let _ = write!(out, " at ({x:.2}, {y:.2})");
            }
            if let Some((class, cluster, dth)) = chain.classified {
                let _ = write!(out, " class={} cluster={cluster} dth={dth:.2}", class.name());
            }
            if let Some((sent, displacement, dth)) = chain.decision {
                let verb = if sent { "sent" } else { "suppressed" };
                let _ = write!(out, " {verb} (moved {displacement:.2} vs dth {dth:.2})");
            }
            for (tick, wire_seq, attempt, fate) in &chain.channel {
                let _ = write!(out, " [{} wire_seq={wire_seq} attempt={attempt}", fate.name());
                if *tick != u64::from(*seq) {
                    let _ = write!(out, " at tick {tick}");
                }
                out.push(']');
            }
            for (tick, outcome, staleness, blend) in &chain.applies {
                let _ = write!(out, " {}(staleness={staleness}, blend={blend:.3})", outcome.name());
                if *tick != u64::from(*seq) {
                    let _ = write!(out, "@{tick}");
                }
            }
            if let Some((le, raw)) = chain.error {
                let _ = write!(out, " err_le={le:.3} err_raw={raw:.3}");
            }
            if !chain.is_complete(network) {
                let _ = write!(out, " (incomplete)");
            }
            out.push('\n');
        }
        let _ = writeln!(out, "  chains for node {node}: {}", all.keys().filter(|(n2, _)| *n2 == node).count());
    }
    out
}

/// Delivery-latency distribution: ticks between an update's generation
/// and its arrival at the broker, including deferred frames and counting
/// retransmitted attempts separately.
#[must_use]
pub fn latency_report(trace: &Trace) -> String {
    let mut dist: BTreeMap<u64, u64> = BTreeMap::new();
    let mut retries = 0u64;
    let mut never = 0u64;
    for seg in trace.segments() {
        for ((_, seq), chain) in chains(seg) {
            let mut arrived = false;
            for (tick, _, attempt, fate) in &chain.channel {
                match fate {
                    LinkFate::Delivered | LinkFate::DeliveredDuplicate | LinkFate::ArrivedLate => {
                        let latency = tick.saturating_sub(u64::from(seq));
                        *dist.entry(latency).or_default() += 1;
                        retries += u64::from(*attempt > 0);
                        arrived = true;
                    }
                    _ => {}
                }
            }
            if !arrived && !chain.channel.is_empty() {
                never += 1;
            }
        }
    }
    let mut out = String::from("delivery latency (ticks from generation to broker):\n");
    let total: u64 = dist.values().sum();
    for (latency, count) in &dist {
        let _ = writeln!(
            out,
            "  {latency:>4} ticks: {count} ({:.1}%)",
            100.0 * *count as f64 / total.max(1) as f64
        );
    }
    let _ = writeln!(out, "arrived: {total} ({retries} after a retry), never arrived: {never}");
    out
}

/// Longest suppression runs (consecutive suppressed decisions) per
/// velocity cluster, the quantity the adaptive DTH trades error for.
#[must_use]
pub fn suppression_report(trace: &Trace) -> String {
    // cluster → (longest run, node achieving it).
    let mut best: BTreeMap<i32, (u64, u32)> = BTreeMap::new();
    for seg in trace.segments() {
        // node → (current run, cluster at run start).
        let mut current: BTreeMap<u32, (u64, i32)> = BTreeMap::new();
        let mut latest_cluster: BTreeMap<u32, i32> = BTreeMap::new();
        for e in seg.iter() {
            match e.kind {
                EventKind::LuClassified { node, cluster, .. } => {
                    latest_cluster.insert(node, cluster);
                }
                EventKind::LuDecision { node, sent, .. } => {
                    if sent {
                        if let Some((run, cluster)) = current.remove(&node) {
                            let slot = best.entry(cluster).or_default();
                            if run > slot.0 {
                                *slot = (run, node);
                            }
                        }
                    } else {
                        let cluster = latest_cluster.get(&node).copied().unwrap_or(-1);
                        let entry = current.entry(node).or_insert((0, cluster));
                        entry.0 += 1;
                    }
                }
                _ => {}
            }
        }
        for (node, (run, cluster)) in current {
            let slot = best.entry(cluster).or_default();
            if run > slot.0 {
                *slot = (run, node);
            }
        }
    }
    let mut out = String::from("longest suppression runs per cluster:\n");
    for (cluster, (run, node)) in &best {
        let label = if *cluster < 0 {
            "unclustered".to_string()
        } else {
            format!("cluster {cluster}")
        };
        let _ = writeln!(out, "  {label}: {run} consecutive ticks (node {node})");
    }
    if best.is_empty() {
        out.push_str("  (no suppressed decisions in the trace)\n");
    }
    out
}

/// Staleness episodes: maximal runs of ticks a node spends with a
/// positive staleness counter (consecutive losses the estimator bridges).
#[must_use]
pub fn staleness_report(trace: &Trace) -> String {
    let mut episodes = 0u64;
    let mut longest: (u64, u32) = (0, 0);
    let mut deepest: (u32, u32) = (0, 0);
    for seg in trace.segments() {
        // node → current episode length.
        let mut current: BTreeMap<u32, u64> = BTreeMap::new();
        for e in seg.iter() {
            if let EventKind::LuApply {
                node,
                seq,
                staleness,
                ..
            } = e.kind
            {
                // Shard applies (seq == tick) sample every node once per
                // tick; late applies are mid-tick transients.
                if u64::from(seq) != e.tick {
                    continue;
                }
                if staleness > 0 {
                    let run = current.entry(node).or_insert(0);
                    *run += 1;
                    if *run > longest.0 {
                        longest = (*run, node);
                    }
                    if staleness > deepest.0 {
                        deepest = (staleness, node);
                    }
                } else if current.remove(&node).is_some() {
                    episodes += 1;
                }
            }
        }
        episodes += current.len() as u64;
    }
    let mut out = String::from("staleness episodes (consecutive stale ticks per node):\n");
    let _ = writeln!(out, "  episodes: {episodes}");
    let _ = writeln!(out, "  longest: {} ticks (node {})", longest.0, longest.1);
    let _ = writeln!(out, "  deepest: staleness {} (node {})", deepest.0, deepest.1);
    out
}

/// The result of replaying the invariant battery over a trace.
#[derive(Debug)]
pub struct CheckReport {
    /// Complete ticks the monitors examined.
    pub ticks_checked: u64,
    /// Ticks excluded because ring truncation left them partial.
    pub ticks_skipped: u64,
    /// Violations found by the offline replay.
    pub violations: Vec<Violation>,
    /// `invariant_violation` events the online monitors had already
    /// recorded into the stream.
    pub stream_violations: u64,
}

impl CheckReport {
    /// True when neither the replay nor the online monitors found
    /// anything.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stream_violations == 0
    }
}

/// Per-tick vitals reconstructed from one segment's events.
#[derive(Debug, Default)]
struct TickBuild {
    tick: u64,
    generated: u64,
    filter_sent: u64,
    suppressed: u64,
    on_air: u64,
    delivered: u64,
    lost: u64,
    no_coverage: u64,
    deferred: u64,
    arrived_late: u64,
    flight: i64,
    fates: Vec<NodeFate>,
    wire_seqs: Vec<u32>,
    staleness: Vec<u32>,
    late_accepted: Vec<bool>,
}

fn build_ticks(seg: &[TraceEvent], network: bool, nodes: usize) -> Vec<TickBuild> {
    let mut ticks: Vec<TickBuild> = Vec::new();
    let mut flight: i64 = 0;
    let mut i = 0;
    while i < seg.len() {
        let tick = seg[i].tick;
        let mut b = TickBuild {
            tick,
            fates: vec![NodeFate::Idle; nodes],
            wire_seqs: vec![0u32; nodes],
            staleness: vec![0u32; nodes],
            late_accepted: vec![false; nodes],
            ..TickBuild::default()
        };
        while i < seg.len() && seg[i].tick == tick {
            let e = &seg[i];
            i += 1;
            match e.kind {
                EventKind::LuGenerated { .. } => b.generated += 1,
                EventKind::LuDecision { node, sent, .. } => {
                    if sent {
                        b.filter_sent += 1;
                        if !network {
                            // Without a network a sent update reaches the
                            // broker directly.
                            if let Some(f) = b.fates.get_mut(node as usize) {
                                *f = NodeFate::Accepted;
                            }
                        }
                    } else {
                        b.suppressed += 1;
                    }
                }
                EventKind::LuChannel {
                    node,
                    wire_seq,
                    fate,
                    ..
                } => {
                    let slot = node as usize;
                    match fate {
                        LinkFate::ArrivedLate => b.arrived_late += 1,
                        LinkFate::Delivered | LinkFate::DeliveredDuplicate => {
                            b.on_air += 1;
                            b.delivered += 1;
                            if let Some(f) = b.fates.get_mut(slot) {
                                *f = NodeFate::Accepted;
                                b.wire_seqs[slot] = wire_seq;
                            }
                        }
                        LinkFate::Deferred => {
                            b.on_air += 1;
                            b.lost += 1;
                            b.deferred += 1;
                            if let Some(f) = b.fates.get_mut(slot) {
                                *f = NodeFate::LostInFlight;
                                b.wire_seqs[slot] = wire_seq;
                            }
                        }
                        LinkFate::DroppedNoCoverage => {
                            b.on_air += 1;
                            b.no_coverage += 1;
                            if let Some(f) = b.fates.get_mut(slot) {
                                *f = NodeFate::NoCoverage;
                                b.wire_seqs[slot] = wire_seq;
                            }
                        }
                        LinkFate::DroppedFault | LinkFate::DroppedCorrupted => {
                            b.on_air += 1;
                            b.lost += 1;
                            if let Some(f) = b.fates.get_mut(slot) {
                                *f = NodeFate::LostInFlight;
                                b.wire_seqs[slot] = wire_seq;
                            }
                        }
                    }
                }
                EventKind::LuApply {
                    node,
                    seq,
                    outcome,
                    staleness,
                    ..
                } => {
                    let slot = node as usize;
                    if u64::from(seq) == e.tick {
                        if let Some(s) = b.staleness.get_mut(slot) {
                            *s = staleness;
                        }
                    } else if outcome == ApplyOutcome::Accepted {
                        if let Some(l) = b.late_accepted.get_mut(slot) {
                            *l = true;
                        }
                    }
                }
                _ => {}
            }
        }
        if !network {
            b.on_air = b.filter_sent;
            b.delivered = b.filter_sent;
        }
        flight += b.deferred as i64 - b.arrived_late as i64;
        b.flight = flight;
        ticks.push(b);
    }
    ticks
}

/// Replays the invariant battery (in resuming mode — the stream's head
/// may be truncated) over every segment of the trace.
#[must_use]
pub fn check(trace: &Trace) -> CheckReport {
    let mut report = CheckReport {
        ticks_checked: 0,
        ticks_skipped: 0,
        violations: Vec::new(),
        stream_violations: trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::InvariantViolation { .. }))
            .count() as u64,
    };
    for (si, seg) in trace.segments().iter().enumerate() {
        let network = has_channel_events(seg);
        let nodes = population(seg);
        let mut ticks = build_ticks(seg, network, nodes);
        // Ring truncation removes the oldest events, so only the first
        // retained tick of the first segment can be partial.
        if si == 0 && trace.events_dropped > 0 && !ticks.is_empty() {
            ticks.remove(0);
            report.ticks_skipped += 1;
        }
        // The in-flight running value starts at an unknown depth when the
        // head is truncated; shift it so the smallest observed value is
        // zero — the continuity law only constrains differences.
        let base = ticks.iter().map(|t| t.flight).min().unwrap_or(0).min(0);
        let mut monitors = MonitorSet::resuming();
        for t in &ticks {
            let stale_nodes = t.staleness.iter().filter(|s| **s > 0).count() as u32;
            let vitals = TickVitals {
                tick: t.tick,
                generated: t.generated,
                filter_sent: t.filter_sent,
                suppressed: t.suppressed,
                on_air: t.on_air,
                delivered: t.delivered,
                lost: t.lost,
                no_coverage: t.no_coverage,
                deferred: t.deferred,
                arrived_late: t.arrived_late,
                in_flight: (t.flight - base) as u64,
                stale_nodes,
                node_fates: &t.fates,
                wire_seqs: if network { &t.wire_seqs } else { &[] },
                staleness: &t.staleness,
                late_accepted: &t.late_accepted,
            };
            report.violations.extend_from_slice(monitors.check_tick(&vitals));
            report.ticks_checked += 1;
        }
    }
    report
}

/// Renders a [`CheckReport`] for the CLI.
#[must_use]
pub fn check_summary(report: &CheckReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "checked {} tick(s) ({} skipped as truncated)",
        report.ticks_checked, report.ticks_skipped
    );
    for v in &report.violations {
        let _ = writeln!(out, "VIOLATION {v}");
    }
    if report.stream_violations > 0 {
        let _ = writeln!(
            out,
            "VIOLATION {} invariant_violation event(s) recorded online",
            report.stream_violations
        );
    }
    if report.is_clean() {
        out.push_str("all invariants hold\n");
    }
    out
}

/// The queries the `trace` binary answers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCli {
    /// The JSONL export to analyse.
    pub path: String,
    /// Print one node's timeline.
    pub node: Option<u32>,
    /// Print the delivery-latency distribution.
    pub latency: bool,
    /// Print the longest suppression runs per cluster.
    pub suppression: bool,
    /// Print staleness episodes.
    pub staleness: bool,
    /// Replay the invariant monitors and fail on violations.
    pub check: bool,
}

const USAGE: &str =
    "usage: trace FILE.jsonl [--node N] [--latency] [--suppression] [--staleness] [--check]";

/// Parses the `trace` binary's arguments (without the program name).
///
/// # Errors
///
/// Returns a usage message on unknown flags or a missing file operand.
pub fn parse_trace_args<I>(args: I) -> Result<TraceCli, String>
where
    I: IntoIterator<Item = String>,
{
    let mut cli = TraceCli::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--node" => {
                let v = args.next().ok_or_else(|| format!("--node needs a value; {USAGE}"))?;
                cli.node = Some(v.parse().map_err(|_| format!("--node needs an integer; {USAGE}"))?);
            }
            "--latency" => cli.latency = true,
            "--suppression" => cli.suppression = true,
            "--staleness" => cli.staleness = true,
            "--check" => cli.check = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}; {USAGE}"));
            }
            path if cli.path.is_empty() => cli.path = path.to_string(),
            _ => return Err(format!("more than one input file; {USAGE}")),
        }
    }
    if cli.path.is_empty() {
        return Err(format!("an input file is required; {USAGE}"));
    }
    Ok(cli)
}

/// Runs the selected queries over an already-parsed trace and returns the
/// rendered output plus the process exit code (1 when `--check` found a
/// violation, 0 otherwise).
#[must_use]
pub fn run_queries(cli: &TraceCli, trace: &Trace) -> (String, i32) {
    let mut out = String::new();
    let mut code = 0;
    let specific = cli.node.is_some() || cli.latency || cli.suppression || cli.staleness || cli.check;
    if !specific {
        out.push_str(&summary(trace));
    }
    if let Some(node) = cli.node {
        out.push_str(&node_timeline(trace, node));
    }
    if cli.latency {
        out.push_str(&latency_report(trace));
    }
    if cli.suppression {
        out.push_str(&suppression_report(trace));
    }
    if cli.staleness {
        out.push_str(&staleness_report(trace));
    }
    if cli.check {
        let report = check(trace);
        out.push_str(&check_summary(&report));
        if !report.is_clean() {
            code = 1;
        }
    }
    (out, code)
}

/// Entry point for the `trace` binary: parse flags, read and parse the
/// file, run the queries, print, and return the exit code.
///
/// # Errors
///
/// Returns CLI, I/O and parse errors as strings for the binary to print.
pub fn run_main<I>(args: I) -> Result<(String, i32), String>
where
    I: IntoIterator<Item = String>,
{
    let cli = parse_trace_args(args)?;
    let text = std::fs::read_to_string(&cli.path).map_err(|e| format!("reading {}: {e}", cli.path))?;
    let trace = parse_trace(&text).map_err(|e| format!("{}: {e}", cli.path))?;
    Ok(run_queries(&cli, &trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event_line(tick: u64, body: &str) -> String {
        format!("{{\"type\":\"event\",\"tick\":{tick},\"seq\":0,{body}}}")
    }

    fn mini_trace(events_dropped: u64, lines: &[String]) -> String {
        let mut out = format!(
            "{{\"type\":\"meta\",\"format\":\"mobigrid-telemetry/2\",\"counters\":0,\"gauges\":0,\"histograms\":0,\"spans\":0,\"events\":{},\"spans_dropped\":0,\"events_dropped\":{events_dropped}}}\n",
            lines.len()
        );
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// One healthy no-network tick for one node.
    fn healthy_tick(tick: u64, staleness: u32) -> Vec<String> {
        vec![
            event_line(
                tick,
                &format!("\"kind\":\"lu_generated\",\"node\":0,\"seq\":{tick},\"x\":1.0,\"y\":2.0"),
            ),
            event_line(
                tick,
                &format!(
                    "\"kind\":\"lu_decision\",\"node\":0,\"seq\":{tick},\"sent\":true,\"displacement\":null,\"dth\":0.0"
                ),
            ),
            event_line(
                tick,
                &format!(
                    "\"kind\":\"lu_apply\",\"node\":0,\"seq\":{tick},\"outcome\":\"accepted\",\"staleness\":{staleness},\"blend\":1.0"
                ),
            ),
            event_line(
                tick,
                &format!("\"kind\":\"lu_error\",\"node\":0,\"seq\":{tick},\"err_le\":0.0,\"err_raw\":0.0"),
            ),
        ]
    }

    #[test]
    fn parses_and_reconstructs_chains() {
        let mut lines = healthy_tick(1, 0);
        lines.extend(healthy_tick(2, 0));
        let trace = parse_trace(&mini_trace(0, &lines)).unwrap();
        assert_eq!(trace.events.len(), 8);
        let segments = trace.segments();
        assert_eq!(segments.len(), 1);
        let all = chains(segments[0]);
        assert_eq!(all.len(), 2);
        for chain in all.values() {
            assert!(chain.is_complete(false), "{chain:?}");
        }
    }

    #[test]
    fn segments_split_at_tick_regressions() {
        let mut lines = healthy_tick(5, 0);
        lines.extend(healthy_tick(6, 0));
        lines.extend(healthy_tick(1, 0)); // second run starts
        let trace = parse_trace(&mini_trace(0, &lines)).unwrap();
        assert_eq!(trace.segments().len(), 2);
    }

    #[test]
    fn check_passes_a_healthy_trace() {
        let mut lines = Vec::new();
        for t in 1..=5 {
            lines.extend(healthy_tick(t, 0));
        }
        let trace = parse_trace(&mini_trace(0, &lines)).unwrap();
        let report = check(&trace);
        assert_eq!(report.ticks_checked, 5);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn check_flags_a_seeded_conservation_violation() {
        let mut lines = healthy_tick(1, 0);
        // Tick 2 generates an update but records no decision for it.
        lines.push(event_line(
            2,
            "\"kind\":\"lu_generated\",\"node\":0,\"seq\":2,\"x\":1.0,\"y\":2.0",
        ));
        let trace = parse_trace(&mini_trace(0, &lines)).unwrap();
        let report = check(&trace);
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .any(|v| v.monitor == MonitorKind::FilterConservation && v.tick == 2));
    }

    #[test]
    fn check_flags_a_seeded_staleness_violation() {
        let mut lines = healthy_tick(1, 0);
        lines.extend(healthy_tick(2, 0));
        // Tick 3 claims the accepted node is suddenly stale.
        lines.extend(healthy_tick(3, 7));
        let trace = parse_trace(&mini_trace(0, &lines)).unwrap();
        let report = check(&trace);
        assert!(report
            .violations
            .iter()
            .any(|v| v.monitor == MonitorKind::StalenessConsistency && v.tick == 3));
    }

    #[test]
    fn truncated_first_tick_is_skipped() {
        let mut lines = vec![event_line(
            1,
            "\"kind\":\"lu_error\",\"node\":0,\"seq\":1,\"err_le\":0.0,\"err_raw\":0.0",
        )];
        lines.extend(healthy_tick(2, 0));
        let trace = parse_trace(&mini_trace(3, &lines)).unwrap();
        let report = check(&trace);
        assert_eq!(report.ticks_skipped, 1);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = mini_trace(0, &[String::from("{\"type\":\"event\",\"tick\":1}")]);
        let err = parse_trace(&text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_trace("{\"type\":\"mystery\"}\n").unwrap_err();
        assert!(err.contains("unknown line type"), "{err}");
    }

    #[test]
    fn cli_parses_flags_and_requires_a_file() {
        let cli = parse_trace_args(
            ["t.jsonl", "--node", "3", "--check", "--latency"]
                .iter()
                .map(|s| (*s).to_string()),
        )
        .unwrap();
        assert_eq!(cli.path, "t.jsonl");
        assert_eq!(cli.node, Some(3));
        assert!(cli.check && cli.latency);
        assert!(!cli.suppression && !cli.staleness);
        assert!(parse_trace_args(std::iter::empty()).is_err());
        assert!(parse_trace_args(["--bogus".to_string()]).is_err());
    }

    #[test]
    fn check_exit_code_reflects_violations() {
        let mut lines = healthy_tick(1, 0);
        let trace = parse_trace(&mini_trace(0, &lines)).unwrap();
        let cli = TraceCli {
            path: "x".into(),
            check: true,
            ..TraceCli::default()
        };
        let (out, code) = run_queries(&cli, &trace);
        assert_eq!(code, 0);
        assert!(out.contains("all invariants hold"));

        lines.push(event_line(
            2,
            "\"kind\":\"lu_generated\",\"node\":0,\"seq\":2,\"x\":0.0,\"y\":0.0",
        ));
        let bad = parse_trace(&mini_trace(0, &lines)).unwrap();
        let (out, code) = run_queries(&cli, &bad);
        assert_eq!(code, 1);
        assert!(out.contains("VIOLATION"), "{out}");
    }
}
