//! The paper's Figure-3 architecture, executed end-to-end on the mini HLA
//! RTI: a **mobile-node federate** publishes raw location updates, the
//! **ADF federate** reflects, filters and republishes the survivors, and the
//! **grid-broker federate** maintains the location DB — all three
//! time-regulating and time-constrained, advancing in 1 s lockstep.
//!
//! The filtering decisions are bit-identical to the in-process
//! [`MobileGridSim`](mobigrid_adf::MobileGridSim) pipeline (asserted by this
//! module's tests); what the federation adds is the paper's distribution
//! structure: every LU crosses the RTI as a timestamp-ordered attribute
//! reflection, and the broker's beliefs lag by the federation lookahead
//! exactly as they would over a real wire.

use std::collections::BTreeMap;

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, EstimatorKind, FilterPolicy, GridBroker};
use mobigrid_campus::Campus;
use mobigrid_geo::Point;
use mobigrid_hla::{Callback, FedTime, ObjectHandle, ObjectModel, Rti};
use mobigrid_sim::stats::Rmse;
use mobigrid_wireless::{LocationUpdate, MnId};

use crate::config::ExperimentConfig;
use crate::workload;

/// Per-tick statistics from a federated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FederatedTick {
    /// Simulation (federation) time at the end of the tick, in seconds.
    pub time_s: f64,
    /// Raw updates the ADF federate reflected this tick.
    pub observed: u32,
    /// Updates the ADF federate forwarded to the broker this tick.
    pub sent: u32,
    /// Broker RMSE with the location estimator (beliefs lag by lookahead).
    pub rmse_with_le: f64,
    /// Broker RMSE without the estimator.
    pub rmse_without_le: f64,
}

/// The outcome of a federated evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedResult {
    /// Per-tick statistics.
    pub ticks: Vec<FederatedTick>,
    /// Total TSO reflections delivered across the federation.
    pub total_reflections: u64,
}

impl FederatedResult {
    /// Total location updates forwarded to the broker.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.ticks.iter().map(|t| u64::from(t.sent)).sum()
    }

    /// Total raw updates observed by the ADF federate.
    #[must_use]
    pub fn total_observed(&self) -> u64 {
        self.ticks.iter().map(|t| u64::from(t.observed)).sum()
    }
}

/// Runs the ADF evaluation through the three-federate architecture.
///
/// # Panics
///
/// Panics on internal RTI protocol violations, which indicate a bug rather
/// than a user error (the federation is constructed entirely here).
#[must_use]
pub fn run_federated_adf(cfg: &ExperimentConfig, dth_factor: f64) -> FederatedResult {
    let lookahead = FedTime::from_secs_f64(0.5);

    // --- FOM: one object class per pipeline stage -------------------------
    let mut fom = ObjectModel::new();
    let raw_class = fom.add_object_class("RawLocation");
    let raw_attr = fom.add_attribute(raw_class, "lu").expect("fresh attribute");
    let fil_class = fom.add_object_class("FilteredLocation");
    let fil_attr = fom.add_attribute(fil_class, "lu").expect("fresh attribute");

    let rti = Rti::new();
    rti.create_federation("adf-eval", fom).expect("fresh name");
    let mn_fed = rti.join("adf-eval", "mn-federate").expect("exists");
    let adf_fed = rti.join("adf-eval", "adf-federate").expect("exists");
    let broker_fed = rti.join("adf-eval", "broker-federate").expect("exists");

    mn_fed.publish_object_class(raw_class).expect("declared");
    adf_fed
        .subscribe_object_class(raw_class, &[raw_attr])
        .expect("declared");
    adf_fed.publish_object_class(fil_class).expect("declared");
    broker_fed
        .subscribe_object_class(fil_class, &[fil_attr])
        .expect("declared");
    for f in [&mn_fed, &adf_fed, &broker_fed] {
        f.enable_time_regulation(lookahead).expect("first enable");
        f.enable_time_constrained().expect("first enable");
    }

    // --- World state behind the MN federate --------------------------------
    let campus = Campus::inha_like();
    let mut nodes = workload::generate_population(&campus, cfg.seed);

    // One raw object and one filtered object per node. The reverse maps let
    // the subscribing federates recover the node from the object handle.
    let mut raw_objects: Vec<ObjectHandle> = Vec::with_capacity(nodes.len());
    let mut fil_objects: Vec<ObjectHandle> = Vec::with_capacity(nodes.len());
    for _ in &nodes {
        raw_objects.push(mn_fed.register_object(raw_class).expect("published"));
        fil_objects.push(adf_fed.register_object(fil_class).expect("published"));
    }
    adf_fed.tick().expect("joined"); // drain discoveries
    broker_fed.tick().expect("joined");

    // --- ADF and broker federate state -------------------------------------
    let adf_cfg = AdfConfig {
        dth_factor,
        ..cfg.adf
    };
    let mut policy = AdaptiveDistanceFilter::new(adf_cfg).expect("validated configuration");
    let mut broker_le = GridBroker::new(cfg.estimator).expect("validated estimator");
    let mut broker_raw = GridBroker::new(EstimatorKind::WithoutLe).expect("always valid");
    for node in &nodes {
        if let Some(anchor) = node.home_anchor() {
            broker_le.set_home_anchor(node.id(), anchor);
            broker_raw.set_home_anchor(node.id(), anchor);
        }
    }

    let mut ticks = Vec::with_capacity(cfg.duration_ticks as usize);
    let mut total_reflections = 0u64;

    for step in 1..=cfg.duration_ticks {
        let now = FedTime::from_secs(step);
        let time_s = step as f64;

        // (1) MN federate: advance ground truth, publish one raw LU each.
        let mut truth: BTreeMap<MnId, Point> = BTreeMap::new();
        for (node, obj) in nodes.iter_mut().zip(&raw_objects) {
            let pos = node.step(time_s, 1.0);
            truth.insert(node.id(), pos);
            let lu = LocationUpdate::new(node.id(), time_s, pos, step as u32);
            mn_fed
                .update_attributes(*obj, vec![(raw_attr, lu.encode().to_vec())], Some(now))
                .expect("owned object");
        }

        for f in [&mn_fed, &adf_fed, &broker_fed] {
            f.request_time_advance(now).expect("monotone lockstep");
        }

        // (2) ADF federate: gather this tick's reflections, filter as one
        // batch (the clustering is cross-node), forward the survivors.
        let mut observations: Vec<(MnId, Point)> = Vec::new();
        for cb in adf_fed.tick().expect("joined") {
            if let Callback::ReflectAttributes { values, .. } = cb {
                total_reflections += 1;
                let lu = LocationUpdate::decode(&values[0].1).expect("well-formed frame");
                observations.push((lu.node, lu.position));
            }
        }
        let decisions = policy.decide_tick(time_s, &observations);
        let mut sent = 0u32;
        for ((node, pos), decision) in observations.iter().zip(&decisions) {
            if decision.is_sent() {
                sent += 1;
                let lu = LocationUpdate::new(*node, time_s, *pos, step as u32);
                adf_fed
                    .update_attributes(
                        fil_objects[node.index()],
                        vec![(fil_attr, lu.encode().to_vec())],
                        Some(now + lookahead),
                    )
                    .expect("owned object");
            }
        }

        // (3) Broker federate: reflect the surviving updates into the DB,
        // estimate everything that stayed silent.
        let mut heard: Vec<MnId> = Vec::new();
        for cb in broker_fed.tick().expect("joined") {
            if let Callback::ReflectAttributes { values, .. } = cb {
                total_reflections += 1;
                let lu = LocationUpdate::decode(&values[0].1).expect("well-formed frame");
                heard.push(lu.node);
                broker_le.receive(&lu);
                broker_raw.receive(&lu);
            }
        }
        for node in nodes.iter() {
            if !heard.contains(&node.id()) {
                broker_le.note_filtered(node.id(), time_s);
                broker_raw.note_filtered(node.id(), time_s);
            }
        }

        // (4) Measure broker error against ground truth.
        let mut with_le = Rmse::new();
        let mut without_le = Rmse::new();
        for (id, pos) in &truth {
            let err = |b: &GridBroker| {
                b.location(*id)
                    .map_or(0.0, |r| r.position.distance_to(*pos))
            };
            with_le.push(err(&broker_le));
            without_le.push(err(&broker_raw));
        }

        mn_fed.tick().expect("joined");
        ticks.push(FederatedTick {
            time_s,
            observed: observations.len() as u32,
            sent,
            rmse_with_le: with_le.value(),
            rmse_without_le: without_le.value(),
        });
    }

    FederatedResult {
        ticks,
        total_reflections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_policy, PolicySpec};

    fn cfg(ticks: u64) -> ExperimentConfig {
        ExperimentConfig {
            duration_ticks: ticks,
            with_network: false,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn federated_run_reflects_every_observation() {
        let r = run_federated_adf(&cfg(40), 1.0);
        assert_eq!(r.ticks.len(), 40);
        // Every node's raw update reaches the ADF federate each tick.
        for t in &r.ticks {
            assert_eq!(t.observed, 140);
            assert!(t.sent <= t.observed);
        }
        // Reflections = raw (140/tick) + forwarded survivors, except the
        // final tick's forwards: they are stamped `now + lookahead` and the
        // broker's next grant never happens, so they remain in flight.
        let in_flight = u64::from(r.ticks.last().expect("ran").sent);
        assert_eq!(
            r.total_reflections,
            r.total_observed() + r.total_sent() - in_flight
        );
    }

    #[test]
    fn federated_decisions_match_the_direct_pipeline() {
        let cfg = cfg(60);
        let federated = run_federated_adf(&cfg, 1.0);
        let direct = run_policy(&cfg, PolicySpec::Adf(1.0));
        // The filter is deterministic and both paths feed it identical
        // observation batches, so per-tick sent counts agree exactly.
        let fed_sent: Vec<u32> = federated.ticks.iter().map(|t| t.sent).collect();
        let dir_sent: Vec<u32> = direct.ticks.iter().map(|t| t.sent).collect();
        assert_eq!(fed_sent, dir_sent);
    }

    #[test]
    fn federated_le_beats_stale_broker() {
        let r = run_federated_adf(&cfg(300), 1.25);
        let n = r.ticks.len() as f64;
        let with: f64 = r.ticks.iter().map(|t| t.rmse_with_le).sum::<f64>() / n;
        let without: f64 = r.ticks.iter().map(|t| t.rmse_without_le).sum::<f64>() / n;
        assert!(with < without, "with={with} without={without}");
    }
}
