//! Experiment configuration with the paper's defaults.

use mobigrid_adf::{AdfConfig, EstimatorKind};

/// Knobs for one evaluation campaign. Defaults reproduce §4: 140 nodes,
/// 1800 s at 1 s ticks, DTH factors {0.75, 1.0, 1.25}, Brown location
/// estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Number of 1 s ticks (the paper: 1800).
    pub duration_ticks: u64,
    /// DTH factors to evaluate (the paper: 0.75, 1.0, 1.25 × av).
    pub dth_factors: Vec<f64>,
    /// Base ADF configuration; `dth_factor` is overwritten per run.
    pub adf: AdfConfig,
    /// The "with LE" broker's estimator.
    pub estimator: EstimatorKind,
    /// Attach the wireless access network for traffic accounting.
    pub with_network: bool,
    /// Worker threads for the parallel tick phases (default 1 = serial).
    /// Results are bit-identical for every value — see
    /// [`mobigrid_adf::SimBuilder::threads`].
    pub threads: usize,
    /// Worker threads for running whole campaign runs (the ideal baseline
    /// plus one run per DTH factor) concurrently (default 1 = serial).
    /// Results are bit-identical for every value — see
    /// [`crate::campaign::run_campaign_parallel`].
    pub campaign_threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 42,
            duration_ticks: 1800,
            dth_factors: vec![0.75, 1.0, 1.25],
            adf: AdfConfig::new(1.0),
            estimator: EstimatorKind::Brown { alpha: 0.5 },
            with_network: true,
            threads: 1,
            campaign_threads: 1,
        }
    }
}

impl ExperimentConfig {
    /// A shortened configuration for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            duration_ticks: 120,
            ..ExperimentConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.duration_ticks, 1800);
        assert_eq!(c.dth_factors, vec![0.75, 1.0, 1.25]);
    }

    #[test]
    fn quick_is_shorter() {
        assert!(ExperimentConfig::quick().duration_ticks < 1800);
    }
}
