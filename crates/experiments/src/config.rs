//! Experiment configuration with the paper's defaults.

use mobigrid_adf::{AdfConfig, EstimatorKind, RuntimeOptions};

/// Knobs for one evaluation campaign. Defaults reproduce §4: 140 nodes,
/// 1800 s at 1 s ticks, DTH factors {0.75, 1.0, 1.25}, Brown location
/// estimation.
///
/// Execution knobs (thread budgets, fault injection, default retry
/// policy) live in the typed [`RuntimeOptions`] struct; they change how
/// a campaign executes but — by the determinism contract — never what it
/// computes.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Master seed; the whole campaign is a pure function of it.
    pub seed: u64,
    /// Number of 1 s ticks (the paper: 1800).
    pub duration_ticks: u64,
    /// DTH factors to evaluate (the paper: 0.75, 1.0, 1.25 × av).
    pub dth_factors: Vec<f64>,
    /// Base ADF configuration; `dth_factor` is overwritten per run.
    pub adf: AdfConfig,
    /// The "with LE" broker's estimator.
    pub estimator: EstimatorKind,
    /// Attach the wireless access network for traffic accounting.
    pub with_network: bool,
    /// Execution options, validated at simulation build time. `threads`
    /// parallelizes ticks within one run, `campaign_threads` parallelizes
    /// whole runs, and the two compose; results are bit-identical for
    /// every combination.
    pub runtime: RuntimeOptions,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 42,
            duration_ticks: 1800,
            dth_factors: vec![0.75, 1.0, 1.25],
            adf: AdfConfig::new(1.0),
            estimator: EstimatorKind::Brown { alpha: 0.5 },
            with_network: true,
            runtime: RuntimeOptions::default(),
        }
    }
}

impl ExperimentConfig {
    /// A shortened configuration for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            duration_ticks: 120,
            ..ExperimentConfig::default()
        }
    }

    /// Returns a copy with the given campaign-level thread budget.
    #[must_use]
    pub fn with_campaign_threads(mut self, campaign_threads: usize) -> Self {
        self.runtime.campaign_threads = campaign_threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ExperimentConfig::default();
        assert_eq!(c.duration_ticks, 1800);
        assert_eq!(c.dth_factors, vec![0.75, 1.0, 1.25]);
        assert_eq!(c.runtime, RuntimeOptions::default());
    }

    #[test]
    fn quick_is_shorter() {
        assert!(ExperimentConfig::quick().duration_ticks < 1800);
    }
}
