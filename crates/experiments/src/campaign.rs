//! Runs the full evaluation campaign once and shares the raw data with
//! every figure module.

use mobigrid_adf::{
    AdaptiveDistanceFilter, AdfConfig, FilterPolicy, GeneralDistanceFilter, IdealPolicy,
    MobileGridSim, RegionTally, SimBuilder, TickStats,
};
use mobigrid_campus::Campus;
use mobigrid_sim::par::ShardPool;
use mobigrid_telemetry::{NoopRecorder, Recorder};

use crate::config::ExperimentConfig;
use crate::workload;

/// Which filter policy a run evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicySpec {
    /// The unfiltered baseline ("ideal LU").
    Ideal,
    /// The non-adaptive distance filter at the given DTH factor.
    GeneralDf(f64),
    /// The adaptive distance filter at the given DTH factor.
    Adf(f64),
}

impl PolicySpec {
    /// A short label for reports (e.g. `"adf-1.00av"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Ideal => "ideal".to_string(),
            PolicySpec::GeneralDf(f) => format!("df-{f:.2}av"),
            PolicySpec::Adf(f) => format!("adf-{f:.2}av"),
        }
    }
}

/// The raw outcome of one policy run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The policy's report label.
    pub label: String,
    /// Per-tick statistics, one entry per simulated second.
    pub ticks: Vec<TickStats>,
    /// Whole-run tallies per region kind.
    pub cumulative: RegionTally,
    /// Messages carried by the access network (0 when detached).
    pub network_messages: u64,
    /// Bytes carried by the access network (0 when detached).
    pub network_bytes: u64,
}

impl RunResult {
    /// Mean transmitted LUs per second over the run.
    #[must_use]
    pub fn mean_lu_per_sec(&self) -> f64 {
        if self.ticks.is_empty() {
            return 0.0;
        }
        self.ticks.iter().map(|t| f64::from(t.sent)).sum::<f64>() / self.ticks.len() as f64
    }

    /// Total LUs transmitted over the run.
    #[must_use]
    pub fn total_sent(&self) -> u64 {
        self.ticks.iter().map(|t| u64::from(t.sent)).sum()
    }

    /// Mean RMSE over the run, with and without the location estimator.
    #[must_use]
    pub fn mean_rmse(&self) -> (f64, f64) {
        if self.ticks.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.ticks.len() as f64;
        let with = self.ticks.iter().map(|t| t.rmse_with_le).sum::<f64>() / n;
        let without = self.ticks.iter().map(|t| t.rmse_without_le).sum::<f64>() / n;
        (with, without)
    }
}

fn build_sim(cfg: &ExperimentConfig, campus: &Campus, spec: PolicySpec) -> MobileGridSim {
    let nodes = workload::generate_population(campus, cfg.seed);
    let builder = SimBuilder::new()
        .nodes(nodes)
        .estimator(cfg.estimator)
        .runtime(cfg.runtime.clone());
    let builder = if cfg.with_network {
        builder.network(workload::default_network(campus))
    } else {
        builder
    };
    let with_policy = |b: SimBuilder, p: Box<dyn FilterPolicy + Send>| -> MobileGridSim {
        b.policy(p).build().expect("validated configuration")
    };
    match spec {
        PolicySpec::Ideal => with_policy(builder, Box::new(IdealPolicy::new())),
        PolicySpec::GeneralDf(factor) => with_policy(
            builder,
            Box::new(GeneralDistanceFilter::new(factor, cfg.adf.warmup_ticks)),
        ),
        PolicySpec::Adf(factor) => {
            let adf_cfg = AdfConfig {
                dth_factor: factor,
                ..cfg.adf
            };
            with_policy(
                builder,
                Box::new(AdaptiveDistanceFilter::new(adf_cfg).expect("validated configuration")),
            )
        }
    }
}

/// Runs a single policy over the full workload.
#[must_use]
pub fn run_policy(cfg: &ExperimentConfig, spec: PolicySpec) -> RunResult {
    run_policy_recorded(cfg, spec, &mut NoopRecorder)
}

/// Runs a single policy over the full workload, streaming telemetry into
/// `rec` (see [`MobileGridSim::step_recorded`]).
#[must_use]
pub fn run_policy_recorded(
    cfg: &ExperimentConfig,
    spec: PolicySpec,
    rec: &mut dyn Recorder,
) -> RunResult {
    let campus = Campus::inha_like();
    let mut sim = build_sim(cfg, &campus, spec);
    let ticks = sim.run_recorded(cfg.duration_ticks, rec);
    let (network_messages, network_bytes) = sim
        .network()
        .map_or((0, 0), |n| (n.meter().messages(), n.meter().bytes()));
    RunResult {
        label: spec.label(),
        ticks,
        cumulative: sim.cumulative_tally(),
        network_messages,
        network_bytes,
    }
}

/// All the data the figures need: one ideal run plus one ADF run per DTH
/// factor.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignData {
    /// The configuration that produced this data.
    pub config: ExperimentConfig,
    /// The unfiltered baseline run.
    pub ideal: RunResult,
    /// One ADF run per configured DTH factor, in `dth_factors` order.
    pub adf: Vec<(f64, RunResult)>,
}

/// Runs the ideal baseline and every configured ADF factor, serially.
#[must_use]
pub fn run_campaign(cfg: &ExperimentConfig) -> CampaignData {
    let ideal = run_policy(cfg, PolicySpec::Ideal);
    let adf = cfg
        .dth_factors
        .iter()
        .map(|&f| (f, run_policy(cfg, PolicySpec::Adf(f))))
        .collect();
    CampaignData {
        config: cfg.clone(),
        ideal,
        adf,
    }
}

/// Runs the campaign with its runs (the ideal baseline plus one per DTH
/// factor) fanned out across `cfg.campaign_threads` workers.
///
/// Each run is an independent simulation built from the same seed, and the
/// [`ShardPool`] hands results back in submission order, so the returned
/// [`CampaignData`] is **bit-identical** to [`run_campaign`]'s for every
/// thread count — `campaign_threads: 1` literally executes the same serial
/// sequence inline. This is the campaign-level analogue of the tick-level
/// `threads` knob: ticks within one run parallelize with `threads`, whole
/// runs parallelize with `campaign_threads`, and the two compose.
#[must_use]
pub fn run_campaign_parallel(cfg: &ExperimentConfig) -> CampaignData {
    run_campaign_recorded(cfg, &mut NoopRecorder)
}

/// Runs the campaign like [`run_campaign_parallel`], streaming telemetry
/// into `rec`.
///
/// Each parallel run records into a private child recorder obtained with
/// [`Recorder::fork`]; after the pool returns, the children are absorbed
/// back into `rec` **in submission order** — the same fixed-order
/// reduction the tick pipeline uses for its shard partials — so the
/// merged telemetry is bit-identical for every `campaign_threads` value.
#[must_use]
pub fn run_campaign_recorded(cfg: &ExperimentConfig, rec: &mut dyn Recorder) -> CampaignData {
    let mut specs = Vec::with_capacity(cfg.dth_factors.len() + 1);
    specs.push(PolicySpec::Ideal);
    specs.extend(cfg.dth_factors.iter().map(|&f| PolicySpec::Adf(f)));
    let parent: &dyn Recorder = rec;
    let results = ShardPool::new(cfg.runtime.campaign_threads).run(specs, |_, spec| {
        let mut child = parent.fork();
        let run = run_policy_recorded(cfg, spec, child.as_mut());
        (run, child)
    });
    let mut runs = Vec::with_capacity(results.len());
    for (run, child) in results {
        rec.absorb(child);
        runs.push(run);
    }
    let mut runs = runs.into_iter();
    let ideal = runs.next().expect("the ideal run always executes");
    let adf = cfg.dth_factors.iter().copied().zip(runs).collect();
    CampaignData {
        config: cfg.clone(),
        ideal,
        adf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            duration_ticks: 90,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn ideal_run_sends_everything() {
        let r = run_policy(&quick(), PolicySpec::Ideal);
        assert_eq!(r.total_sent(), 90 * 140);
        assert_eq!(r.network_messages, 90 * 140);
        assert!((r.mean_lu_per_sec() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn adf_reduces_traffic_monotonically_in_factor() {
        let data = crate::test_support::shared_campaign();
        let ideal = data.ideal.total_sent();
        let mut last = ideal;
        for (f, run) in &data.adf {
            let sent = run.total_sent();
            assert!(sent < ideal, "factor {f} did not reduce traffic");
            assert!(
                sent <= last,
                "traffic not monotone: factor {f} sent {sent} > previous {last}"
            );
            last = sent;
        }
    }

    #[test]
    fn general_df_also_reduces_but_policy_labels_differ() {
        let cfg = quick();
        let df = run_policy(&cfg, PolicySpec::GeneralDf(1.0));
        assert!(df.total_sent() < 90 * 140);
        assert_eq!(df.label, "df-1.00av");
        assert_eq!(PolicySpec::Adf(0.75).label(), "adf-0.75av");
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = quick();
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.ideal.total_sent(), b.ideal.total_sent());
        for ((_, x), (_, y)) in a.adf.iter().zip(&b.adf) {
            assert_eq!(x.total_sent(), y.total_sent());
            assert_eq!(x.mean_rmse(), y.mean_rmse());
        }
    }

    #[test]
    fn parallel_campaign_is_bit_identical_to_serial() {
        let serial = run_campaign(&quick());
        for campaign_threads in [1, 2, 4] {
            let cfg = quick().with_campaign_threads(campaign_threads);
            let parallel = run_campaign_parallel(&cfg);
            assert_eq!(parallel.ideal, serial.ideal);
            assert_eq!(parallel.adf, serial.adf);
        }
    }

    #[test]
    fn recorded_campaign_telemetry_is_campaign_thread_invariant() {
        use mobigrid_telemetry::MemoryRecorder;
        let mut exports = Vec::new();
        for campaign_threads in [1, 2, 4] {
            let cfg = ExperimentConfig {
                duration_ticks: 60,
                ..ExperimentConfig::default()
            }
            .with_campaign_threads(campaign_threads);
            let mut rec = MemoryRecorder::new();
            let data = run_campaign_recorded(&cfg, &mut rec);
            let expected: u64 = data.ideal.total_sent()
                + data.adf.iter().map(|(_, r)| r.total_sent()).sum::<u64>();
            assert_eq!(rec.counter("sim.sent"), expected);
            exports.push(rec.to_jsonl());
        }
        assert_eq!(exports[0], exports[1]);
        assert_eq!(exports[0], exports[2]);
    }

    #[test]
    fn le_reduces_error_for_adf_runs() {
        let data = crate::test_support::shared_campaign();
        for (factor, run) in &data.adf {
            let (with, without) = run.mean_rmse();
            assert!(
                with < without,
                "estimator did not help at {factor}: with={with} without={without}"
            );
        }
    }
}
