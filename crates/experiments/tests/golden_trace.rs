//! Golden-trace conformance: the paper-scale campus run is pinned, sample
//! by sample, against committed snapshots — once at zero faults and once
//! under a fixed [`FaultPlan`] — and must replay **bit-identically** on
//! 1, 2 and 4 worker threads.
//!
//! Every 100th tick's full [`TickStats`] is rendered to a stable text
//! line (floats as 16-hex-digit IEEE-754 bit patterns, so equality is
//! bit-exact by construction) and compared against
//! `tests/golden/{zero_fault,fault_plan}.txt`. Any change to the
//! simulation pipeline, the estimators, the workload generator or the
//! fault channel that shifts a single bit of any sampled counter or RMSE
//! shows up as a diff here.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p mobigrid-experiments --test golden_trace
//! ```
//!
//! then commit the updated files with the change that explains them.
//!
//! [`TickStats`]: mobigrid_adf::TickStats

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, MobileGridSim, SimBuilder, TickStats};
use mobigrid_campus::Campus;
use mobigrid_experiments::workload;
use mobigrid_wireless::{FaultPlan, RetryPolicy};

/// Paper-scale run length (§4: 1800 s at 1 s ticks).
const TICKS: u64 = 1800;
/// Sampling stride: every 100th tick lands in the snapshot.
const SAMPLE_EVERY: u64 = 100;
/// Workload seed (the campaign default).
const WORKLOAD_SEED: u64 = 42;
/// Fault-channel seed, deliberately distinct from the workload seed.
const FAULT_SEED: u64 = 0xFEED_FACE;

/// The pinned fault mix for the faulty trace: a moderate blend of every
/// fault class the channel implements.
fn fault_plan() -> FaultPlan {
    FaultPlan {
        drop_rate: 0.10,
        corrupt_rate: 0.03,
        delay_rate: 0.05,
        max_delay_ticks: 4,
        duplicate_rate: 0.02,
        flaps: Vec::new(),
    }
}

fn build(threads: usize, faults: Option<FaultPlan>) -> MobileGridSim {
    let campus = Campus::inha_like();
    let mut nodes = workload::generate_population(&campus, WORKLOAD_SEED);
    if faults.is_some() {
        nodes = nodes
            .into_iter()
            .map(|n| n.with_retry_policy(RetryPolicy::default()))
            .collect();
    }
    let builder = SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid config"))
        .network(workload::default_network(&campus))
        .threads(threads);
    let builder = match faults {
        Some(plan) => builder.faults(plan, FAULT_SEED),
        None => builder,
    };
    builder.build().expect("valid simulation")
}

/// An `f64` as its exact bit pattern — equality on the rendered form is
/// bit-exact equality on the value.
fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn render(tick: u64, s: &TickStats) -> String {
    format!(
        "tick={tick} time={} sent={} observed={} retries={} lost={} late={} stale={} \
         road_sent={} road_obs={} bld_sent={} bld_obs={} \
         rmse_le={} rmse_raw={} road_le={} road_raw={} bld_le={} bld_raw={}",
        hex(s.time_s),
        s.sent,
        s.observed,
        s.retries,
        s.lost,
        s.late,
        s.stale_nodes,
        s.region.road.sent,
        s.region.road.observed,
        s.region.building.sent,
        s.region.building.observed,
        hex(s.rmse_with_le),
        hex(s.rmse_without_le),
        hex(s.road_rmse_with_le),
        hex(s.road_rmse_without_le),
        hex(s.building_rmse_with_le),
        hex(s.building_rmse_without_le),
    )
}

fn trace(threads: usize, faults: Option<FaultPlan>) -> String {
    let mut sim = build(threads, faults);
    let mut out = String::new();
    for tick in 1..=TICKS {
        let s = sim.step();
        if tick % SAMPLE_EVERY == 0 {
            writeln!(out, "{}", render(tick, &s)).expect("writing to a String");
        }
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, faults: Option<FaultPlan>) {
    let path = golden_path(name);
    let fresh = trace(1, faults.clone());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, &fresh).expect("write golden file");
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        golden, fresh,
        "{name}: the single-threaded trace diverged from the committed golden"
    );
    for threads in [2, 4] {
        assert_eq!(
            golden,
            trace(threads, faults.clone()),
            "{name}: the {threads}-thread trace diverged from the committed golden"
        );
    }
}

#[test]
fn zero_fault_trace_matches_golden_at_every_thread_count() {
    check("zero_fault.txt", None);
}

#[test]
fn fault_plan_trace_matches_golden_at_every_thread_count() {
    check("fault_plan.txt", Some(fault_plan()));
}
