//! Thread-count determinism: the sharded parallel tick engine must be
//! invisible in the results. A full paper-scale run (140 nodes, 1800
//! ticks) produces bit-identical [`TickStats`] on one worker thread and
//! on four.
//!
//! Shard geometry is a pure function of the population size and all
//! per-shard partials are reduced in shard order, so the only thing a
//! thread count may change is wall-clock time.
//!
//! [`TickStats`]: mobigrid_adf::TickStats

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, MobileGridSim, SimBuilder, TickStats};
use mobigrid_campus::Campus;
use mobigrid_experiments::workload;

fn build(threads: usize) -> MobileGridSim {
    let campus = Campus::inha_like();
    let nodes = workload::generate_population(&campus, 42);
    SimBuilder::new()
        .nodes(nodes)
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid config"))
        .network(workload::default_network(&campus))
        .threads(threads)
        .build()
        .expect("valid simulation")
}

#[test]
fn full_run_is_bit_identical_across_thread_counts() {
    let mut serial = build(1);
    let mut parallel = build(4);
    assert_eq!(serial.threads(), 1);
    assert_eq!(parallel.threads(), 4);

    let a: Vec<TickStats> = serial.run(1800);
    let b: Vec<TickStats> = parallel.run(1800);

    assert_eq!(a.len(), 1800);
    assert_eq!(a.first().map(|s| s.observed), Some(140));
    for (tick, (sa, sb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(sa, sb, "tick {tick} diverged between 1 and 4 threads");
        // PartialEq on f64 fields already demands equality; make the
        // bit-level contract explicit for the RMSE series.
        assert_eq!(
            sa.rmse_with_le.to_bits(),
            sb.rmse_with_le.to_bits(),
            "tick {tick}: estimated RMSE not bit-identical"
        );
        assert_eq!(
            sa.rmse_without_le.to_bits(),
            sb.rmse_without_le.to_bits(),
            "tick {tick}: raw RMSE not bit-identical"
        );
    }

    // The cumulative accounting agrees too, including network effects.
    assert_eq!(serial.cumulative_tally(), parallel.cumulative_tally());
    let (na, nb) = (
        serial.network().expect("attached"),
        parallel.network().expect("attached"),
    );
    assert_eq!(na.meter().messages(), nb.meter().messages());
    assert_eq!(na.meter().bytes(), nb.meter().bytes());
}
