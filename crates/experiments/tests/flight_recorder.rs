//! Acceptance tests for the causal flight recorder: a recorded campus
//! campaign must export a trace from which every node's LU lifecycle can
//! be reconstructed, the offline invariant replay must pass on healthy
//! runs (faultless and faulted) and flag doctored exports, and recording
//! must not disturb the determinism contract — exports stay bit-identical
//! at every thread count even with a full event ring.

use std::sync::OnceLock;

use mobigrid_experiments::campaign::run_campaign_recorded;
use mobigrid_experiments::cli::{self, Cli};
use mobigrid_experiments::config::ExperimentConfig;
use mobigrid_experiments::trace::{self, TraceCli};
use mobigrid_telemetry::{MemoryRecorder, MonitorKind};

/// A ring big enough that a short campaign drops nothing.
const FULL_RING: usize = 1 << 21;

fn recorded_export(threads: usize, campaign_threads: usize, ticks: u64) -> String {
    let mut cfg = ExperimentConfig {
        duration_ticks: ticks,
        ..ExperimentConfig::default()
    };
    cfg.runtime.threads = threads;
    cfg.runtime.campaign_threads = campaign_threads;
    let mut rec = MemoryRecorder::with_capacity(4096, FULL_RING);
    let _ = run_campaign_recorded(&cfg, &mut rec);
    rec.to_jsonl()
}

/// One shared 90-tick campus campaign export for the read-only tests.
fn shared_export() -> &'static str {
    static EXPORT: OnceLock<String> = OnceLock::new();
    EXPORT.get_or_init(|| recorded_export(2, 1, 90))
}

#[test]
fn campus_run_reconstructs_a_complete_chain_for_every_node() {
    let trace = trace::parse_trace(shared_export()).expect("export parses");
    assert_eq!(trace.events_dropped, 0, "ring too small for this test");
    let segments = trace.segments();
    // The campaign records the ideal arm plus three ADF arms in order.
    assert!(segments.len() >= 4, "got {} segments", segments.len());
    for (si, seg) in segments.iter().enumerate() {
        let chains = trace::chains(seg);
        let nodes = chains
            .keys()
            .map(|(node, _)| *node as usize + 1)
            .max()
            .unwrap_or(0);
        assert_eq!(nodes, 140, "segment {} is not the campus population", si + 1);
        let mut complete = vec![false; nodes];
        for ((node, _), chain) in &chains {
            if chain.is_complete(true) {
                complete[*node as usize] = true;
            }
        }
        for (node, ok) in complete.iter().enumerate() {
            assert!(
                ok,
                "segment {}: node {node} has no complete causal chain",
                si + 1
            );
        }
    }
}

#[test]
fn offline_invariant_replay_passes_a_healthy_campaign() {
    let trace = trace::parse_trace(shared_export()).expect("export parses");
    let report = trace::check(&trace);
    assert!(report.ticks_checked >= 4 * 89, "checked {}", report.ticks_checked);
    assert_eq!(report.stream_violations, 0, "online monitors fired");
    assert!(report.is_clean(), "offline replay found: {:?}", report.violations);

    let check_cli = TraceCli {
        path: "unused".into(),
        check: true,
        ..TraceCli::default()
    };
    let (out, code) = trace::run_queries(&check_cli, &trace);
    assert_eq!(code, 0, "clean trace must exit 0:\n{out}");
    assert!(out.contains("all invariants hold"), "{out}");
}

#[test]
fn offline_replay_flags_a_doctored_export() {
    let export = shared_export();
    // Erase one filter decision: its tick now generates more updates than
    // it decides about, breaking filter conservation.
    let victim = export
        .lines()
        .position(|l| l.contains("\"kind\":\"lu_decision\""))
        .expect("export contains decisions");
    let doctored: String = export
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, l)| format!("{l}\n"))
        .collect();

    let trace = trace::parse_trace(&doctored).expect("doctored export still parses");
    let report = trace::check(&trace);
    assert!(!report.is_clean(), "the doctored trace must not pass");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.monitor == MonitorKind::FilterConservation),
        "expected a filter-conservation violation, got {:?}",
        report.violations
    );

    let check_cli = TraceCli {
        path: "unused".into(),
        check: true,
        ..TraceCli::default()
    };
    let (out, code) = trace::run_queries(&check_cli, &trace);
    assert_eq!(code, 1, "violations must exit non-zero");
    assert!(out.contains("VIOLATION"), "{out}");
}

#[test]
fn offline_replay_passes_a_faulted_run() {
    // The fault matrix exercises drops, corruption, delay and duplication
    // with retries — the replay must follow deferred frames, late
    // arrivals and staleness episodes without false positives.
    let dir = std::env::temp_dir().join("mobigrid-flight-recorder-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("faults.jsonl");
    let run_cli = Cli {
        config: ExperimentConfig {
            duration_ticks: 60,
            ..ExperimentConfig::default()
        },
        telemetry: Some(path.to_string_lossy().into_owned()),
        events: Some(FULL_RING),
        ..Cli::default()
    };
    cli::execute(&run_cli, "fault_matrix").expect("fault matrix runs");
    let exported = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let trace = trace::parse_trace(&exported).expect("export parses");
    let retries = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                mobigrid_telemetry::EventKind::LuChannel { attempt, .. } if attempt > 0
            )
        })
        .count();
    assert!(retries > 0, "the fault matrix injected no retries");
    let report = trace::check(&trace);
    assert!(report.is_clean(), "faulted replay found: {:?}", report.violations);
}

#[test]
fn trace_cli_end_to_end_over_a_recorded_file() {
    let dir = std::env::temp_dir().join("mobigrid-flight-recorder-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campus.jsonl");
    std::fs::write(&path, shared_export()).unwrap();
    let arg = path.to_string_lossy().into_owned();

    let (summary, code) = trace::run_main([arg.clone()]).expect("summary runs");
    assert_eq!(code, 0);
    assert!(summary.contains("complete"), "{summary}");

    let (checked, code) =
        trace::run_main([arg.clone(), "--check".to_string()]).expect("check runs");
    assert_eq!(code, 0, "{checked}");

    let (node0, code) = trace::run_main([
        arg.clone(),
        "--node".to_string(),
        "0".to_string(),
    ])
    .expect("node timeline runs");
    assert_eq!(code, 0);
    assert!(node0.contains("tick"), "{node0}");

    let (stats, code) = trace::run_main([
        arg,
        "--latency".to_string(),
        "--suppression".to_string(),
        "--staleness".to_string(),
    ])
    .expect("stat queries run");
    assert_eq!(code, 0);
    assert!(stats.contains("delivery latency"), "{stats}");
    assert!(stats.contains("suppression runs"), "{stats}");
    assert!(stats.contains("staleness episodes"), "{stats}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn recorded_exports_stay_bit_identical_across_thread_counts() {
    let baseline = recorded_export(1, 1, 60);
    for (threads, campaign_threads) in [(2, 1), (4, 2)] {
        assert_eq!(
            recorded_export(threads, campaign_threads, 60),
            baseline,
            "threads={threads} campaign_threads={campaign_threads} changed the event stream"
        );
    }
}
