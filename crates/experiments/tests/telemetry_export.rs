//! Conformance tests for the telemetry subsystem at the experiment level:
//! the exported counters must mirror the `TickStats` the experiments are
//! built on, the JSONL export must be syntactically valid, and — like
//! every other observable of this codebase — the whole export must be
//! bit-identical at every thread count.

use mobigrid_experiments::campaign::{run_campaign_recorded, CampaignData};
use mobigrid_experiments::config::ExperimentConfig;
use mobigrid_telemetry::{json, MemoryRecorder};

fn quick(threads: usize, campaign_threads: usize) -> ExperimentConfig {
    let mut cfg = ExperimentConfig {
        duration_ticks: 90,
        ..ExperimentConfig::default()
    };
    cfg.runtime.threads = threads;
    cfg.runtime.campaign_threads = campaign_threads;
    cfg
}

fn record(threads: usize, campaign_threads: usize) -> (CampaignData, MemoryRecorder) {
    let mut rec = MemoryRecorder::new();
    let data = run_campaign_recorded(&quick(threads, campaign_threads), &mut rec);
    (data, rec)
}

#[test]
fn counters_mirror_tick_stats_exactly() {
    let (data, rec) = record(1, 1);
    let runs = std::iter::once(&data.ideal).chain(data.adf.iter().map(|(_, r)| r));
    let mut sent = 0u64;
    let mut observed = 0u64;
    let mut lost = 0u64;
    let mut late = 0u64;
    let mut retries = 0u64;
    let mut ticks = 0u64;
    for run in runs {
        ticks += run.ticks.len() as u64;
        for t in &run.ticks {
            sent += u64::from(t.sent);
            observed += u64::from(t.observed);
            lost += u64::from(t.lost);
            late += u64::from(t.late);
            retries += u64::from(t.retries);
        }
    }
    assert_eq!(rec.counter("sim.ticks"), ticks);
    assert_eq!(rec.counter("sim.sent"), sent);
    assert_eq!(rec.counter("sim.observed"), observed);
    assert_eq!(rec.counter("sim.lost"), lost);
    assert_eq!(rec.counter("sim.late"), late);
    assert_eq!(rec.counter("sim.retries"), retries);
    // The per-kind split covers every observation and every send.
    assert_eq!(
        rec.counter("sim.road.observed") + rec.counter("sim.building.observed"),
        observed
    );
    assert_eq!(
        rec.counter("sim.road.sent") + rec.counter("sim.building.sent"),
        sent
    );
    // One error sample per observation lands in each histogram.
    for name in ["sim.err_with_le", "sim.err_without_le"] {
        let hist = rec.histogram(name).expect("recorded histogram");
        assert_eq!(hist.count(), observed, "{name} sample count");
    }
}

#[test]
fn jsonl_export_is_valid_and_csv_is_rectangular() {
    let (_, rec) = record(1, 1);
    let jsonl = rec.to_jsonl();
    let lines = json::validate_jsonl(&jsonl).expect("well-formed JSONL");
    assert!(lines > 10, "suspiciously small export: {lines} lines");
    assert!(jsonl.contains("\"sim.sent\""));
    assert!(jsonl.contains("\"sim.err_with_le\""));

    let csv = rec.to_csv();
    let mut rows = csv.lines();
    let header = rows.next().expect("header row");
    let cols = header.split(',').count();
    for row in rows {
        assert_eq!(row.split(',').count(), cols, "ragged CSV row: {row}");
    }
}

/// The telemetry determinism contract at full depth: tick-level threads,
/// campaign-level threads, and both together must leave every exported
/// byte unchanged.
#[test]
fn telemetry_export_is_bit_identical_across_thread_counts() {
    let (_, baseline) = record(1, 1);
    let baseline_jsonl = baseline.to_jsonl();
    let baseline_csv = baseline.to_csv();
    for (threads, campaign_threads) in [(2, 1), (4, 1), (1, 2), (1, 4), (4, 4)] {
        let (_, rec) = record(threads, campaign_threads);
        assert_eq!(
            rec.to_jsonl(),
            baseline_jsonl,
            "threads={threads} campaign_threads={campaign_threads} changed the JSONL export"
        );
        assert_eq!(
            rec.to_csv(),
            baseline_csv,
            "threads={threads} campaign_threads={campaign_threads} changed the CSV export"
        );
    }
}
