//! The executable contract behind the columnar node-state engine
//! (`crates/adf/src/columns.rs`): decomposing `MobileNode`s into
//! structure-of-arrays columns and dispatching mobility through the
//! `MobilityEngine` enum must be **invisible** in every observable.
//!
//! The reference implementation here is deliberately archaic — one
//! `Box<dyn MobilityModel + Send>` plus one `StdRng` per node, stepped
//! node-by-node the way `MobileNode::step` worked before the columnar
//! refactor. Proptest drives arbitrary small populations, seeds and tick
//! counts through both the reference and the real pipeline and demands:
//!
//! * bit-identical per-node positions every tick (the movement kernel),
//! * bit-identical filter decisions when the reference observation
//!   stream is fed to a standalone policy (the observation order),
//! * `TickStats`-equality and byte-identical telemetry exports across
//!   worker-thread counts 1/2/4 (every downstream observable).

use mobigrid_adf::{AdaptiveDistanceFilter, AdfConfig, FilterPolicy, MobileGridSim, MobileNode, SimBuilder};
use mobigrid_campus::{RegionId, RegionKind};
use mobigrid_geo::{Point, Polyline, Rect};
use mobigrid_mobility::{
    LoopMode, MobilityModel, MobilityPattern, NodeType, PathFollower, RandomWalk, StopModel,
};
use mobigrid_telemetry::MemoryRecorder;
use mobigrid_wireless::MnId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The concrete mobility model node `i` gets: a deterministic mix of
/// parked, random-walking and path-following nodes. Called twice per
/// node — once for the simulation, once for the AoS reference — so both
/// sides start from identical model state.
fn model_for(i: u32, seed: u64) -> Box<dyn MobilityModel + Send> {
    let y = f64::from(i) * 11.0;
    match (i.wrapping_add(seed as u32)) % 3 {
        0 => Box::new(StopModel::new(Point::new(40.0, y))),
        1 => {
            let room = Rect::centered(Point::new(30.0, y + 5.0), 60.0, 10.0);
            let start = room.center();
            let max_speed = 0.3 + f64::from(i % 5) * 0.2;
            Box::new(RandomWalk::new(room, start, max_speed))
        }
        _ => {
            let path = Polyline::new(vec![Point::new(0.0, y), Point::new(700.0, y)])
                .expect("two distinct points");
            let speed = 0.5 + f64::from(i % 7);
            Box::new(PathFollower::new(path, speed, LoopMode::PingPong))
        }
    }
}

fn pattern_for(i: u32, seed: u64) -> MobilityPattern {
    match (i.wrapping_add(seed as u32)) % 3 {
        0 => MobilityPattern::Stop,
        1 => MobilityPattern::Random,
        _ => MobilityPattern::Linear,
    }
}

fn rng_seed_for(i: u32, seed: u64) -> u64 {
    seed ^ (u64::from(i) << 17)
}

fn population(node_count: usize, seed: u64) -> Vec<MobileNode> {
    (0..node_count as u32)
        .map(|i| {
            MobileNode::new(
                MnId::new(i),
                RegionId::from_index(0),
                RegionKind::Building,
                NodeType::Human,
                pattern_for(i, seed),
                model_for(i, seed),
                rng_seed_for(i, seed),
            )
        })
        .collect()
}

fn build_sim(node_count: usize, seed: u64, threads: usize) -> MobileGridSim {
    SimBuilder::new()
        .nodes(population(node_count, seed))
        .policy(AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid"))
        .threads(threads)
        .build()
        .expect("valid simulation")
}

/// The pre-columnar array-of-structs driver: per-node boxed model +
/// `StdRng`, stepped sequentially in node order.
struct AosReference {
    models: Vec<Box<dyn MobilityModel + Send>>,
    rngs: Vec<StdRng>,
}

impl AosReference {
    fn new(node_count: usize, seed: u64) -> Self {
        AosReference {
            models: (0..node_count as u32).map(|i| model_for(i, seed)).collect(),
            rngs: (0..node_count as u32)
                .map(|i| StdRng::seed_from_u64(rng_seed_for(i, seed)))
                .collect(),
        }
    }

    /// One tick of ground truth: returns the observation stream in node
    /// order, exactly as `MobileNode::step` produced it.
    fn tick(&mut self, dt: f64) -> Vec<(MnId, Point)> {
        self.models
            .iter_mut()
            .zip(self.rngs.iter_mut())
            .enumerate()
            .map(|(i, (model, rng))| (MnId::new(i as u32), model.step(dt, rng)))
            .collect()
    }
}

proptest! {
    /// The columnar movement kernel and the per-column `SplitMix64` RNG
    /// reproduce the boxed-model/`StdRng` trajectories bit for bit, and
    /// feeding the reference observation stream to a standalone policy
    /// reproduces the pipeline's per-tick sent counts.
    #[test]
    fn columnar_engine_matches_the_aos_reference(
        node_count in 1usize..48,
        seed in any::<u64>(),
        ticks in 1u64..30,
    ) {
        let mut sim = build_sim(node_count, seed, 1);
        let mut reference = AosReference::new(node_count, seed);
        let mut policy = AdaptiveDistanceFilter::new(AdfConfig::new(1.0)).expect("valid");
        let dt = 1.0;

        for t in 1..=ticks {
            let stats = sim.step();
            let obs = reference.tick(dt);

            // Movement: every node's position, bit for bit.
            for (id, pos) in &obs {
                let node = sim.node(id.index());
                prop_assert_eq!(
                    node.position().x.to_bits(), pos.x.to_bits(),
                    "node {} x at tick {}", id, t
                );
                prop_assert_eq!(
                    node.position().y.to_bits(), pos.y.to_bits(),
                    "node {} y at tick {}", id, t
                );
            }

            // Filtering: the reference stream drives a fresh policy to the
            // same per-tick decision split the pipeline reported.
            let decisions = policy.decide_tick(t as f64 * dt, &obs);
            let sent = decisions.iter().filter(|d| d.is_sent()).count() as u32;
            prop_assert_eq!(sent, stats.sent, "sent split diverged at tick {}", t);
            prop_assert_eq!(stats.observed as usize, node_count);
        }
    }

    /// Worker-thread counts 1/2/4 are invisible: every `TickStats` field
    /// (the struct is compared whole) and every exported telemetry byte.
    #[test]
    fn tick_stats_and_telemetry_are_thread_invariant(
        node_count in 1usize..80,
        seed in any::<u64>(),
        ticks in 1u64..25,
    ) {
        let run = |threads: usize| {
            let mut sim = build_sim(node_count, seed, threads);
            let mut rec = MemoryRecorder::new();
            let stats: Vec<_> = (0..ticks).map(|_| sim.step_recorded(&mut rec)).collect();
            (stats, rec.to_jsonl(), rec.to_csv())
        };
        let (base_stats, base_jsonl, base_csv) = run(1);
        for threads in [2usize, 4] {
            let (stats, jsonl, csv) = run(threads);
            prop_assert_eq!(&stats, &base_stats, "TickStats diverged at threads={}", threads);
            prop_assert_eq!(&jsonl, &base_jsonl, "JSONL diverged at threads={}", threads);
            prop_assert_eq!(&csv, &base_csv, "CSV diverged at threads={}", threads);
        }
    }
}
