//! The [`Recorder`] sink trait and its two implementations.

use std::any::Any;
use std::collections::BTreeMap;

use crate::clock::TickClock;
use crate::event::{Event, EventKind, EventRing, Phase, SpanRecord};
use crate::hist::HistogramDelta;

/// A sink for simulation telemetry.
///
/// Every recording method defaults to a no-op, so implementors only
/// override what they store and the pipeline can call the trait
/// unconditionally — producers may still skip whole recording loops when
/// [`Recorder::enabled`] is false (the [`NoopRecorder`] contract keeps the
/// steady-state tick path zero-allocation).
///
/// Metric names are `&'static str` so recording never allocates; the
/// [`MemoryRecorder`] keys its maps by those names directly.
///
/// [`Recorder::fork`] / [`Recorder::absorb`] support deterministic fan-out:
/// a parent hands each parallel unit of work (a campaign run, a matrix
/// cell) a fresh child recorder and absorbs the children back **in
/// submission order** — the same fixed-order reduction the pipeline uses
/// for `BrokerDelta`, so recorded telemetry is bit-identical for every
/// thread count.
pub trait Recorder: Send + Sync {
    /// True when this recorder actually stores samples. Producers may skip
    /// optional recording loops (per-node events, per-shard histograms)
    /// when false.
    fn enabled(&self) -> bool {
        false
    }

    /// Advances the monotonic tick clock; call once at the start of every
    /// simulation tick.
    fn tick_start(&mut self, _tick: u64) {}

    /// Adds `delta` to the named counter.
    fn counter_add(&mut self, _name: &'static str, _delta: u64) {}

    /// Sets the named gauge (last write wins).
    fn gauge_set(&mut self, _name: &'static str, _value: f64) {}

    /// Folds a histogram delta into the named histogram. Callers merging
    /// per-shard deltas must do so in shard order.
    fn histogram_merge(&mut self, _name: &'static str, _delta: &HistogramDelta) {}

    /// Records one per-phase timing span at the current logical stamp.
    fn span(&mut self, _phase: Phase, _items: u64) {}

    /// Records one structured event at the current logical stamp.
    fn event(&mut self, _kind: EventKind) {}

    /// A fresh, empty recorder of the same kind for one parallel unit of
    /// work; pair with [`Recorder::absorb`].
    fn fork(&self) -> Box<dyn Recorder>;

    /// Folds a forked child back in. Children must be absorbed in
    /// submission order to keep the merged trace deterministic.
    fn absorb(&mut self, _child: Box<dyn Recorder>) {}

    /// Type-erasure escape hatch for [`Recorder::absorb`] implementations.
    fn into_any(self: Box<Self>) -> Box<dyn Any + Send>;
}

/// The zero-sized default recorder: stores nothing, reports
/// `enabled() == false`, and lets the steady-state tick path stay
/// zero-allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn fork(&self) -> Box<dyn Recorder> {
        Box::new(NoopRecorder)
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

/// Default capacity of the structured event ring.
const EVENT_CAPACITY: usize = 4096;
/// Default capacity of the span ring.
const SPAN_CAPACITY: usize = 4096;

/// The in-memory recorder behind `--telemetry`: ordered maps for
/// counters, gauges and histograms, bounded rings for spans and events,
/// and JSONL/CSV exporters (see [`MemoryRecorder::to_jsonl`] and
/// [`MemoryRecorder::to_csv`]).
///
/// All storage is keyed by the `&'static str` metric names and the maps
/// are `BTreeMap`s, so iteration — and therefore every export — is in a
/// stable name order regardless of recording order.
#[derive(Debug, Clone)]
pub struct MemoryRecorder {
    pub(crate) clock: TickClock,
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, f64>,
    pub(crate) histograms: BTreeMap<&'static str, HistogramDelta>,
    pub(crate) spans: EventRing<SpanRecord>,
    pub(crate) events: EventRing<Event>,
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        MemoryRecorder::new()
    }
}

impl MemoryRecorder {
    /// A recorder with the default ring capacities (4096 spans, 4096
    /// events).
    #[must_use]
    pub fn new() -> Self {
        MemoryRecorder::with_capacity(SPAN_CAPACITY, EVENT_CAPACITY)
    }

    /// A recorder with explicit span / event ring capacities.
    #[must_use]
    pub fn with_capacity(span_capacity: usize, event_capacity: usize) -> Self {
        MemoryRecorder {
            clock: TickClock::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: EventRing::new(span_capacity),
            events: EventRing::new(event_capacity),
        }
    }

    /// The named counter's total (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(n, v)| (*n, *v))
    }

    /// The named gauge's last value, if it was ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(n, v)| (*n, *v))
    }

    /// The named histogram, if anything was recorded into it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramDelta> {
        self.histograms.get(name)
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &HistogramDelta)> + '_ {
        self.histograms.iter().map(|(n, v)| (*n, v))
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Events overwritten because the event ring was full.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events.dropped()
    }

    /// Spans overwritten because the span ring was full.
    #[must_use]
    pub fn spans_dropped(&self) -> u64 {
        self.spans.dropped()
    }

    /// Folds `other`'s state into `self`: counters and histograms merge
    /// exactly, `other`'s gauges win, and `other`'s spans/events append in
    /// their recorded order (subject to this ring's capacity).
    pub fn merge_from(&mut self, other: &MemoryRecorder) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name, *v);
        }
        for (name, delta) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(h) => h.merge(delta),
                None => {
                    self.histograms.insert(name, *delta);
                }
            }
        }
        for span in other.spans.iter() {
            self.spans.push(*span);
        }
        for event in other.events.iter() {
            self.events.push(*event);
        }
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn tick_start(&mut self, tick: u64) {
        self.clock.start_tick(tick);
    }

    fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    fn histogram_merge(&mut self, name: &'static str, delta: &HistogramDelta) {
        match self.histograms.get_mut(name) {
            Some(h) => h.merge(delta),
            None => {
                self.histograms.insert(name, *delta);
            }
        }
    }

    fn span(&mut self, phase: Phase, items: u64) {
        let stamp = self.clock.stamp();
        self.spans.push(SpanRecord {
            stamp,
            phase,
            items,
        });
    }

    fn event(&mut self, kind: EventKind) {
        let stamp = self.clock.stamp();
        self.events.push(Event { stamp, kind });
    }

    fn fork(&self) -> Box<dyn Recorder> {
        Box::new(MemoryRecorder::with_capacity(
            self.spans.capacity(),
            self.events.capacity(),
        ))
    }

    fn absorb(&mut self, child: Box<dyn Recorder>) {
        if let Ok(mem) = child.into_any().downcast::<MemoryRecorder>() {
            self.merge_from(&mem);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any + Send> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::BucketSpec;
    use crate::LinkFate;

    #[test]
    fn noop_records_nothing_and_forks_noops() {
        let mut noop = NoopRecorder;
        assert!(!noop.enabled());
        noop.counter_add("x", 1);
        noop.event(EventKind::LuDecision {
            node: 0,
            seq: 0,
            sent: true,
            displacement: f64::NAN,
            dth: f64::NAN,
        });
        let child = noop.fork();
        assert!(!child.enabled());
    }

    #[test]
    fn memory_recorder_stores_and_reads_back() {
        let mut rec = MemoryRecorder::new();
        rec.tick_start(3);
        rec.counter_add("sim.sent", 2);
        rec.counter_add("sim.sent", 1);
        rec.gauge_set("g", 0.5);
        rec.span(Phase::Observe, 10);
        rec.event(EventKind::LuChannel {
            node: 7,
            seq: 3,
            wire_seq: 0,
            attempt: 0,
            fate: LinkFate::Delivered,
            due_tick: 0,
        });
        assert_eq!(rec.counter("sim.sent"), 3);
        assert_eq!(rec.gauge("g"), Some(0.5));
        let spans: Vec<_> = rec.spans().collect();
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].stamp.tick, spans[0].stamp.seq), (3, 0));
        let events: Vec<_> = rec.events().collect();
        assert_eq!(events[0].stamp.seq, 1, "spans and events share the clock");
    }

    #[test]
    fn fork_absorb_round_trips() {
        let mut parent = MemoryRecorder::new();
        parent.counter_add("c", 1);
        let mut child = parent.fork();
        assert!(child.enabled());
        child.counter_add("c", 2);
        child.tick_start(9);
        child.event(EventKind::StalenessTransition {
            stale_nodes: 1,
            previous: 0,
        });
        let spec = BucketSpec::log_spaced(1.0, 2.0, 4);
        let mut d = HistogramDelta::new(spec);
        d.record(3.0);
        child.histogram_merge("h", &d);
        parent.absorb(child);
        assert_eq!(parent.counter("c"), 3);
        assert_eq!(parent.histogram("h").unwrap().count(), 1);
        assert_eq!(parent.events().count(), 1);
    }

    #[test]
    fn absorbing_a_noop_child_is_harmless() {
        let mut parent = MemoryRecorder::new();
        parent.counter_add("c", 5);
        parent.absorb(Box::new(NoopRecorder));
        assert_eq!(parent.counter("c"), 5);
    }
}
