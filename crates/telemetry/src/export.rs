//! JSONL and CSV exporters for [`MemoryRecorder`].
//!
//! Both formats are hand-rendered (the hermetic build carries no JSON
//! dependency) and deterministic: metrics in name order, spans and events
//! in recorded order. Exporting the same recorder twice — or recorders
//! from runs at different thread counts — yields byte-identical output.

use std::fmt::Write as _;

use crate::event::EventKind;
use crate::hist::HistogramDelta;
use crate::recorder::MemoryRecorder;

/// A finite `f64` as a JSON number, anything else as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// An `Option<f64>` bound as a JSON number or `null`.
fn json_bound(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

fn write_histogram(out: &mut String, name: &str, h: &HistogramDelta) {
    let _ = write!(
        out,
        "{{\"type\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"min\":{},\"max\":{},\"buckets\":[",
        h.count(),
        json_bound(h.min()),
        json_bound(h.max()),
    );
    let spec = h.spec();
    let mut first = true;
    for slot in 0..spec.slots() {
        let count = h.bucket(slot);
        if count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "[{},{},{count}]",
            json_bound(spec.lower_bound(slot)),
            json_bound(spec.upper_bound(slot)),
        );
    }
    out.push_str("]}\n");
}

fn write_event_kind(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::FilterDecision { node, sent } => {
            let _ = write!(out, "\"kind\":\"filter_decision\",\"node\":{node},\"sent\":{sent}");
        }
        EventKind::LinkFate { node, fate } => {
            let _ = write!(out, "\"kind\":\"link_fate\",\"node\":{node},\"fate\":\"{}\"", fate.name());
        }
        EventKind::StalenessTransition {
            stale_nodes,
            previous,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"staleness\",\"stale_nodes\":{stale_nodes},\"previous\":{previous}"
            );
        }
    }
}

impl MemoryRecorder {
    /// The whole recorder as JSON Lines: one `meta` line, then counters,
    /// gauges and histograms in name order, then spans and events in
    /// recorded order. Every line is a standalone JSON object.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"format\":\"mobigrid-telemetry/1\",\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{},\"events\":{},\"spans_dropped\":{},\"events_dropped\":{}}}",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len(),
            self.spans.len(),
            self.events.len(),
            self.spans_dropped(),
            self.events_dropped(),
        );
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}");
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{}}}",
                json_f64(v)
            );
        }
        for (name, h) in self.histograms() {
            write_histogram(&mut out, name, h);
        }
        for span in self.spans() {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"tick\":{},\"seq\":{},\"phase\":\"{}\",\"items\":{}}}",
                span.stamp.tick,
                span.stamp.seq,
                span.phase.name(),
                span.items,
            );
        }
        for event in self.events() {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"tick\":{},\"seq\":{},",
                event.stamp.tick, event.stamp.seq
            );
            write_event_kind(&mut out, &event.kind);
            out.push_str("}\n");
        }
        out
    }

    /// Counters, gauges and histogram buckets as one CSV table
    /// (`kind,name,bucket_lo,bucket_hi,value`). Spans and events are
    /// JSONL-only.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,bucket_lo,bucket_hi,value\n");
        for (name, v) in self.counters() {
            let _ = writeln!(out, "counter,{name},,,{v}");
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(out, "gauge,{name},,,{v:?}");
        }
        for (name, h) in self.histograms() {
            let spec = h.spec();
            for slot in 0..spec.slots() {
                let count = h.bucket(slot);
                if count == 0 {
                    continue;
                }
                let lo = spec.lower_bound(slot).map_or(String::new(), |b| format!("{b:?}"));
                let hi = spec.upper_bound(slot).map_or(String::new(), |b| format!("{b:?}"));
                let _ = writeln!(out, "histogram,{name},{lo},{hi},{count}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LinkFate, Phase};
    use crate::hist::BucketSpec;
    use crate::json;
    use crate::recorder::Recorder;

    fn sample() -> MemoryRecorder {
        let mut rec = MemoryRecorder::new();
        rec.tick_start(1);
        rec.counter_add("sim.sent", 4);
        rec.gauge_set("sim.rmse_with_le", 1.5);
        rec.gauge_set("broker.nan", f64::NAN);
        let mut h = HistogramDelta::new(BucketSpec::log_spaced(0.5, 2.0, 6));
        h.record(0.1);
        h.record(3.0);
        h.record(1e9);
        rec.histogram_merge("sim.err_with_le", &h);
        rec.span(Phase::Observe, 140);
        rec.event(EventKind::FilterDecision { node: 3, sent: false });
        rec.event(EventKind::LinkFate {
            node: 3,
            fate: LinkFate::DroppedFault,
        });
        rec.event(EventKind::StalenessTransition {
            stale_nodes: 1,
            previous: 0,
        });
        rec
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let text = sample().to_jsonl();
        let lines = json::validate_jsonl(&text).expect("every line must be valid JSON");
        // meta + counter + 2 gauges + histogram + span + 3 events.
        assert_eq!(lines, 9);
        assert!(text.contains("\"name\":\"sim.sent\",\"value\":4"));
        assert!(text.contains("\"fate\":\"dropped_fault\""));
        assert!(text.contains("\"phase\":\"observe\""));
        assert!(text.contains("\"value\":null"), "NaN gauge must render as null");
    }

    #[test]
    fn csv_has_one_row_per_nonzero_cell() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,bucket_lo,bucket_hi,value");
        // 1 counter + 2 gauges + 3 non-zero buckets (under, mid, over).
        assert_eq!(lines.len(), 1 + 1 + 2 + 3);
        assert!(csv.contains("counter,sim.sent,,,4"));
        assert!(csv.lines().any(|l| l.starts_with("histogram,sim.err_with_le,,0.5,")));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(sample().to_jsonl(), sample().to_jsonl());
        assert_eq!(sample().to_csv(), sample().to_csv());
    }
}
