//! JSONL and CSV exporters for [`MemoryRecorder`].
//!
//! Both formats are hand-rendered (the hermetic build carries no JSON
//! dependency) and deterministic: metrics in name order, spans and events
//! in recorded order. Exporting the same recorder twice — or recorders
//! from runs at different thread counts — yields byte-identical output.

use std::fmt::Write as _;

use crate::event::EventKind;
use crate::hist::HistogramDelta;
use crate::recorder::MemoryRecorder;

/// A finite `f64` as a JSON number, anything else as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// An `Option<f64>` bound as a JSON number or `null`.
fn json_bound(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

fn write_histogram(out: &mut String, name: &str, h: &HistogramDelta) {
    let _ = write!(
        out,
        "{{\"type\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"min\":{},\"max\":{},\"buckets\":[",
        h.count(),
        json_bound(h.min()),
        json_bound(h.max()),
    );
    let spec = h.spec();
    let mut first = true;
    for slot in 0..spec.slots() {
        let count = h.bucket(slot);
        if count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "[{},{},{count}]",
            json_bound(spec.lower_bound(slot)),
            json_bound(spec.upper_bound(slot)),
        );
    }
    out.push_str("]}\n");
}

fn write_event_kind(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::LuGenerated { node, seq, x, y } => {
            let _ = write!(
                out,
                "\"kind\":\"lu_generated\",\"node\":{node},\"seq\":{seq},\"x\":{},\"y\":{}",
                json_f64(*x),
                json_f64(*y)
            );
        }
        EventKind::LuClassified {
            node,
            seq,
            class,
            cluster,
            dth,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"lu_classified\",\"node\":{node},\"seq\":{seq},\"class\":\"{}\",\"cluster\":{cluster},\"dth\":{}",
                class.name(),
                json_f64(*dth)
            );
        }
        EventKind::LuDecision {
            node,
            seq,
            sent,
            displacement,
            dth,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"lu_decision\",\"node\":{node},\"seq\":{seq},\"sent\":{sent},\"displacement\":{},\"dth\":{}",
                json_f64(*displacement),
                json_f64(*dth)
            );
        }
        EventKind::LuChannel {
            node,
            seq,
            wire_seq,
            attempt,
            fate,
            due_tick,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"lu_channel\",\"node\":{node},\"seq\":{seq},\"wire_seq\":{wire_seq},\"attempt\":{attempt},\"fate\":\"{}\",\"due_tick\":{due_tick}",
                fate.name()
            );
        }
        EventKind::LuApply {
            node,
            seq,
            outcome,
            staleness,
            blend,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"lu_apply\",\"node\":{node},\"seq\":{seq},\"outcome\":\"{}\",\"staleness\":{staleness},\"blend\":{}",
                outcome.name(),
                json_f64(*blend)
            );
        }
        EventKind::LuError {
            node,
            seq,
            err_le,
            err_raw,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"lu_error\",\"node\":{node},\"seq\":{seq},\"err_le\":{},\"err_raw\":{}",
                json_f64(*err_le),
                json_f64(*err_raw)
            );
        }
        EventKind::InvariantViolation {
            monitor,
            node,
            expected,
            actual,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"invariant_violation\",\"monitor\":\"{}\",\"node\":{node},\"expected\":{expected},\"actual\":{actual}",
                monitor.name()
            );
        }
        EventKind::StalenessTransition {
            stale_nodes,
            previous,
        } => {
            let _ = write!(
                out,
                "\"kind\":\"staleness\",\"stale_nodes\":{stale_nodes},\"previous\":{previous}"
            );
        }
    }
}

impl MemoryRecorder {
    /// The whole recorder as JSON Lines: one `meta` line, then counters,
    /// gauges and histograms in name order, then spans and events in
    /// recorded order. Every line is a standalone JSON object.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"format\":\"mobigrid-telemetry/2\",\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{},\"events\":{},\"spans_dropped\":{},\"events_dropped\":{}}}",
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len(),
            self.spans.len(),
            self.events.len(),
            self.spans_dropped(),
            self.events_dropped(),
        );
        for (name, v) in self.counters() {
            let _ = writeln!(out, "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}");
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{}}}",
                json_f64(v)
            );
        }
        for (name, h) in self.histograms() {
            write_histogram(&mut out, name, h);
        }
        for span in self.spans() {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"tick\":{},\"seq\":{},\"phase\":\"{}\",\"items\":{}}}",
                span.stamp.tick,
                span.stamp.seq,
                span.phase.name(),
                span.items,
            );
        }
        for event in self.events() {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"tick\":{},\"seq\":{},",
                event.stamp.tick, event.stamp.seq
            );
            write_event_kind(&mut out, &event.kind);
            out.push_str("}\n");
        }
        out
    }

    /// Counters, gauges and histogram buckets as one CSV table
    /// (`kind,name,bucket_lo,bucket_hi,value`). Spans and events are
    /// JSONL-only.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,bucket_lo,bucket_hi,value\n");
        for (name, v) in self.counters() {
            let _ = writeln!(out, "counter,{name},,,{v}");
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(out, "gauge,{name},,,{v:?}");
        }
        for (name, h) in self.histograms() {
            let spec = h.spec();
            for slot in 0..spec.slots() {
                let count = h.bucket(slot);
                if count == 0 {
                    continue;
                }
                let lo = spec.lower_bound(slot).map_or(String::new(), |b| format!("{b:?}"));
                let hi = spec.upper_bound(slot).map_or(String::new(), |b| format!("{b:?}"));
                let _ = writeln!(out, "histogram,{name},{lo},{hi},{count}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ApplyOutcome, LinkFate, MobilityClass, Phase};
    use crate::hist::BucketSpec;
    use crate::json;
    use crate::monitor::MonitorKind;
    use crate::recorder::Recorder;

    fn sample() -> MemoryRecorder {
        let mut rec = MemoryRecorder::new();
        rec.tick_start(1);
        rec.counter_add("sim.sent", 4);
        rec.gauge_set("sim.rmse_with_le", 1.5);
        rec.gauge_set("broker.nan", f64::NAN);
        let mut h = HistogramDelta::new(BucketSpec::log_spaced(0.5, 2.0, 6));
        h.record(0.1);
        h.record(3.0);
        h.record(1e9);
        rec.histogram_merge("sim.err_with_le", &h);
        rec.span(Phase::Observe, 140);
        rec.event(EventKind::LuGenerated {
            node: 3,
            seq: 1,
            x: 10.0,
            y: -2.5,
        });
        rec.event(EventKind::LuClassified {
            node: 3,
            seq: 1,
            class: MobilityClass::Linear,
            cluster: 2,
            dth: 40.0,
        });
        rec.event(EventKind::LuDecision {
            node: 3,
            seq: 1,
            sent: true,
            displacement: f64::NAN,
            dth: 40.0,
        });
        rec.event(EventKind::LuChannel {
            node: 3,
            seq: 1,
            wire_seq: 7,
            attempt: 0,
            fate: LinkFate::DroppedFault,
            due_tick: 0,
        });
        rec.event(EventKind::LuApply {
            node: 3,
            seq: 1,
            outcome: ApplyOutcome::Degraded,
            staleness: 2,
            blend: 0.875,
        });
        rec.event(EventKind::LuError {
            node: 3,
            seq: 1,
            err_le: 1.25,
            err_raw: 3.5,
        });
        rec.event(EventKind::InvariantViolation {
            monitor: MonitorKind::FilterConservation,
            node: u32::MAX,
            expected: 140,
            actual: 139,
        });
        rec.event(EventKind::StalenessTransition {
            stale_nodes: 1,
            previous: 0,
        });
        rec
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let text = sample().to_jsonl();
        let lines = json::validate_jsonl(&text).expect("every line must be valid JSON");
        // meta + counter + 2 gauges + histogram + span + 8 events.
        assert_eq!(lines, 14);
        assert!(text.contains("\"format\":\"mobigrid-telemetry/2\""));
        assert!(text.contains("\"name\":\"sim.sent\",\"value\":4"));
        assert!(text.contains("\"kind\":\"lu_generated\",\"node\":3,\"seq\":1,\"x\":10.0,\"y\":-2.5"));
        assert!(text.contains("\"class\":\"linear\",\"cluster\":2"));
        assert!(
            text.contains("\"sent\":true,\"displacement\":null"),
            "NaN displacement must render as null"
        );
        assert!(text.contains("\"wire_seq\":7,\"attempt\":0,\"fate\":\"dropped_fault\""));
        assert!(text.contains("\"outcome\":\"degraded\",\"staleness\":2,\"blend\":0.875"));
        assert!(text.contains("\"err_le\":1.25,\"err_raw\":3.5"));
        assert!(text.contains(
            "\"kind\":\"invariant_violation\",\"monitor\":\"filter_conservation\",\"node\":4294967295,\"expected\":140,\"actual\":139"
        ));
        assert!(text.contains("\"phase\":\"observe\""));
        assert!(text.contains("\"value\":null"), "NaN gauge must render as null");
    }

    #[test]
    fn csv_has_one_row_per_nonzero_cell() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,bucket_lo,bucket_hi,value");
        // 1 counter + 2 gauges + 3 non-zero buckets (under, mid, over).
        assert_eq!(lines.len(), 1 + 1 + 2 + 3);
        assert!(csv.contains("counter,sim.sent,,,4"));
        assert!(csv.lines().any(|l| l.starts_with("histogram,sim.err_with_le,,0.5,")));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(sample().to_jsonl(), sample().to_jsonl());
        assert_eq!(sample().to_csv(), sample().to_csv());
    }
}
