//! Deterministic, thread-count-invariant observability for the mobigrid
//! stack.
//!
//! The simulation pipeline's determinism contract — bit-identical results
//! for every worker-thread count — extends to everything this crate
//! records. Three rules make that work:
//!
//! 1. **Logical time only.** Samples are stamped by a monotonic
//!    [`TickClock`] (`tick` plus a per-tick sequence number), never by wall
//!    time, so a recorded trace replays identically.
//! 2. **Order-free or order-fixed.** Counter increments and
//!    [`HistogramDelta`] merges are exactly associative and commutative
//!    (integer adds plus `f64` min/max — deliberately no floating-point
//!    sums), so per-shard partials can be merged in shard order with the
//!    same algebra as the pipeline's `BrokerDelta`. Everything that is
//!    *not* order-free (events, spans, gauges) is only ever recorded from
//!    sequential phases or merged in a fixed submission order.
//! 3. **No feedback.** Recorders observe the simulation; they never
//!    influence it. The default [`NoopRecorder`] is a zero-sized no-op, so
//!    the steady-state tick path stays zero-allocation and golden traces
//!    stay bit-exact.
//!
//! The pieces:
//!
//! * [`Recorder`] — the sink trait the pipeline talks to; every method
//!   defaults to a no-op.
//! * [`NoopRecorder`] / [`MemoryRecorder`] — the zero-cost default and the
//!   in-memory implementation behind `--telemetry`.
//! * [`BucketSpec`] / [`HistogramDelta`] — fixed log-spaced histograms
//!   whose merge is exact.
//! * [`Phase`], [`EventKind`], [`EventRing`] — per-phase timing spans and
//!   a bounded structured event ring carrying the per-LU flight-recorder
//!   chain (generated → classified → filter decision → channel fate →
//!   broker apply → error sample) plus invariant-violation events.
//! * [`monitor`] — online invariant monitors ([`MonitorSet`]) replaying
//!   conservation laws over per-tick vitals, both live in the pipeline and
//!   offline from an exported trace.
//! * JSONL / CSV exporters on [`MemoryRecorder`], plus a tiny dependency-
//!   free [`json`] validator/parser used by the tests, the trace CLI and
//!   the CI smoke step.
//!
//! # Examples
//!
//! ```
//! use mobigrid_telemetry::{MemoryRecorder, Phase, Recorder};
//!
//! let mut rec = MemoryRecorder::new();
//! rec.tick_start(1);
//! rec.counter_add("sim.sent", 3);
//! rec.span(Phase::Filter, 140);
//! assert_eq!(rec.counter("sim.sent"), 3);
//! assert!(rec.to_jsonl().lines().count() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod event;
mod export;
mod hist;
pub mod json;
pub mod monitor;
mod recorder;

pub use clock::{Stamp, TickClock};
pub use event::{
    ApplyOutcome, Event, EventKind, EventRing, LinkFate, MobilityClass, Phase, SpanRecord,
};
pub use hist::{BucketSpec, HistogramDelta, MAX_BUCKETS};
pub use monitor::{Monitor, MonitorKind, MonitorSet, NodeFate, TickVitals, Violation};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder};
