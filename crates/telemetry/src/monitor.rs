//! Online invariant monitors: conservation laws checked every tick.
//!
//! The pipeline assembles a [`TickVitals`] snapshot at the end of every
//! tick and runs a [`MonitorSet`] over it — with *any* recorder, including
//! the no-op one, because the monitors observe the simulation without
//! feeding back into it. Violations are surfaced as typed
//! [`Violation`] errors (collected by the simulation, assertable in tests
//! and CI) and, when a recorder is enabled, as
//! [`EventKind::InvariantViolation`](crate::EventKind::InvariantViolation)
//! events in the exported stream.
//!
//! The standard set checks four laws:
//!
//! 1. **Filter conservation** — every generated observation is either
//!    sent or suppressed: `generated == filter_sent + suppressed`.
//! 2. **Channel conservation** — every frame on the air is accounted
//!    for: `on_air == delivered + lost + no_coverage`, and the in-flight
//!    queue evolves exactly by `deferred - arrived_late`.
//! 3. **Seq monotonicity** — each node's wire sequence numbers advance by
//!    exactly one per transmission.
//! 4. **Staleness consistency** — each node's consecutive-loss counter
//!    matches the last-accepted-tick model: reset on acceptance,
//!    incremented on a loss, untouched otherwise; and the population
//!    stale count equals the number of nodes with positive staleness.
//!
//! Monitors keep per-node state across ticks. [`MonitorSet::standard`]
//! starts *strict* (sequence numbers and staleness are known to start at
//! zero); [`MonitorSet::resuming`] starts *lazy* (the first sighting of
//! each node establishes its baseline) — that is what the offline
//! `trace --check` replay uses, because a bounded event ring may have
//! dropped the head of the stream.

use std::fmt;

/// Which invariant monitor fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// `generated == filter_sent + suppressed`.
    FilterConservation,
    /// `on_air == delivered + lost + no_coverage` plus in-flight
    /// continuity.
    ChannelConservation,
    /// Per-node wire sequence numbers advance by one per transmission.
    SeqMonotonicity,
    /// Per-node staleness counters match the loss/acceptance history.
    StalenessConsistency,
}

impl MonitorKind {
    /// The monitor's stable snake_case name, as used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MonitorKind::FilterConservation => "filter_conservation",
            MonitorKind::ChannelConservation => "channel_conservation",
            MonitorKind::SeqMonotonicity => "seq_monotonicity",
            MonitorKind::StalenessConsistency => "staleness_consistency",
        }
    }

    /// Parses the exporter name back (see [`MonitorKind::name`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "filter_conservation" => Some(MonitorKind::FilterConservation),
            "channel_conservation" => Some(MonitorKind::ChannelConservation),
            "seq_monotonicity" => Some(MonitorKind::SeqMonotonicity),
            "staleness_consistency" => Some(MonitorKind::StalenessConsistency),
            _ => None,
        }
    }
}

/// One detected invariant violation — a typed error for tests and CI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The monitor that fired.
    pub monitor: MonitorKind,
    /// The tick the violation was detected on.
    pub tick: u64,
    /// The offending node, when the invariant is per-node.
    pub node: Option<u32>,
    /// The value the invariant required.
    pub expected: i64,
    /// The value actually observed.
    pub actual: i64,
    /// A short fixed description of the broken relation.
    pub detail: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] tick {}", self.monitor.name(), self.tick)?;
        if let Some(node) = self.node {
            write!(f, " node {node}")?;
        }
        write!(
            f,
            ": {} (expected {}, got {})",
            self.detail, self.expected, self.actual
        )
    }
}

impl std::error::Error for Violation {}

/// What happened to one node's location update this tick, as seen by the
/// apply phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeFate {
    /// Nothing transmitted (suppressed, or no observation).
    #[default]
    Idle,
    /// Transmitted and delivered to the broker this tick.
    Accepted,
    /// Transmitted but lost in flight (dropped, corrupted or deferred).
    LostInFlight,
    /// Transmission attempted with no gateway coverage — never on the air
    /// as far as the broker is concerned.
    NoCoverage,
}

/// One tick's conservation-law inputs.
///
/// Aggregate fields are always meaningful. The per-node slices may be
/// empty (e.g. when a trace replay cannot reconstruct them); monitors
/// skip their per-node checks then. When non-empty they must all have the
/// population length, indexed by dense node id — except `wire_seqs`,
/// which may be empty on its own when transmitted sequence numbers are
/// unknown (a no-network trace export).
#[derive(Debug, Clone, Copy, Default)]
pub struct TickVitals<'a> {
    /// The tick these vitals describe.
    pub tick: u64,
    /// Observations generated this tick.
    pub generated: u64,
    /// Filter decisions that said "send".
    pub filter_sent: u64,
    /// Filter decisions that said "suppress".
    pub suppressed: u64,
    /// Frames that entered the network phase (first sends and retries,
    /// including out-of-coverage attempts).
    pub on_air: u64,
    /// Frames delivered to the broker this tick.
    pub delivered: u64,
    /// Frames transmitted but not delivered this tick (dropped, corrupted
    /// or deferred).
    pub lost: u64,
    /// Transmission attempts outside any gateway's coverage.
    pub no_coverage: u64,
    /// Frames newly deferred into the in-flight queue this tick.
    pub deferred: u64,
    /// Previously deferred frames that arrived this tick.
    pub arrived_late: u64,
    /// Frames still in the in-flight queue after this tick.
    pub in_flight: u64,
    /// Nodes the with-LE broker marks stale after this tick.
    pub stale_nodes: u32,
    /// Per-node apply fate (empty = skip per-node checks).
    pub node_fates: &'a [NodeFate],
    /// Per-node transmitted wire sequence number, valid where
    /// `node_fates` records a transmission (empty = skip the seq check).
    pub wire_seqs: &'a [u32],
    /// Per-node staleness counters after this tick.
    pub staleness: &'a [u32],
    /// Per-node flag: a late (previously deferred) frame was accepted for
    /// this node earlier in this tick, resetting its staleness.
    pub late_accepted: &'a [bool],
}

/// An online invariant monitor, run once per tick from the pipeline.
///
/// Implementations may keep cross-tick state (previous counters, per-node
/// baselines); they must push one [`Violation`] per broken relation and
/// never panic — violations are data, not aborts, so a monitor bug cannot
/// take down a release run.
pub trait Monitor: Send {
    /// The monitor's stable name.
    fn kind(&self) -> MonitorKind;

    /// Checks one tick, appending any violations to `out`.
    fn check_tick(&mut self, vitals: &TickVitals<'_>, out: &mut Vec<Violation>);
}

/// Checks `generated == filter_sent + suppressed`.
#[derive(Debug, Default)]
pub struct FilterConservation;

impl Monitor for FilterConservation {
    fn kind(&self) -> MonitorKind {
        MonitorKind::FilterConservation
    }

    fn check_tick(&mut self, v: &TickVitals<'_>, out: &mut Vec<Violation>) {
        let accounted = v.filter_sent + v.suppressed;
        if accounted != v.generated {
            out.push(Violation {
                monitor: self.kind(),
                tick: v.tick,
                node: None,
                expected: v.generated as i64,
                actual: accounted as i64,
                detail: "filter_sent + suppressed must equal generated",
            });
        }
    }
}

/// Checks `on_air == delivered + lost + no_coverage` and the in-flight
/// queue's tick-to-tick continuity.
#[derive(Debug, Default)]
pub struct ChannelConservation {
    prev_in_flight: Option<u64>,
}

impl Monitor for ChannelConservation {
    fn kind(&self) -> MonitorKind {
        MonitorKind::ChannelConservation
    }

    fn check_tick(&mut self, v: &TickVitals<'_>, out: &mut Vec<Violation>) {
        let accounted = v.delivered + v.lost + v.no_coverage;
        if accounted != v.on_air {
            out.push(Violation {
                monitor: self.kind(),
                tick: v.tick,
                node: None,
                expected: v.on_air as i64,
                actual: accounted as i64,
                detail: "delivered + lost + no_coverage must equal on_air",
            });
        }
        if v.deferred > v.lost {
            out.push(Violation {
                monitor: self.kind(),
                tick: v.tick,
                node: None,
                expected: v.lost as i64,
                actual: v.deferred as i64,
                detail: "deferred frames are a subset of lost frames",
            });
        }
        if let Some(prev) = self.prev_in_flight {
            let expected = prev as i64 + v.deferred as i64 - v.arrived_late as i64;
            if v.in_flight as i64 != expected {
                out.push(Violation {
                    monitor: self.kind(),
                    tick: v.tick,
                    node: None,
                    expected,
                    actual: v.in_flight as i64,
                    detail: "in_flight must grow by deferred and shrink by late arrivals",
                });
            }
        }
        self.prev_in_flight = Some(v.in_flight);
    }
}

/// Checks that each node's transmitted wire sequence numbers advance by
/// exactly one per transmission (wrapping).
#[derive(Debug)]
pub struct SeqMonotonicity {
    strict: bool,
    expected: Vec<u32>,
    sighted: Vec<bool>,
}

impl SeqMonotonicity {
    /// Strict mode: sequence numbers are known to start at 0 (a run
    /// observed from its first tick).
    #[must_use]
    pub fn new() -> Self {
        SeqMonotonicity {
            strict: true,
            expected: Vec::new(),
            sighted: Vec::new(),
        }
    }

    /// Lazy mode: the first transmission seen per node establishes its
    /// baseline (a stream whose head may have been dropped).
    #[must_use]
    pub fn resuming() -> Self {
        SeqMonotonicity {
            strict: false,
            ..SeqMonotonicity::new()
        }
    }
}

impl Default for SeqMonotonicity {
    fn default() -> Self {
        SeqMonotonicity::new()
    }
}

impl Monitor for SeqMonotonicity {
    fn kind(&self) -> MonitorKind {
        MonitorKind::SeqMonotonicity
    }

    fn check_tick(&mut self, v: &TickVitals<'_>, out: &mut Vec<Violation>) {
        if v.node_fates.is_empty() || v.wire_seqs.len() != v.node_fates.len() {
            return;
        }
        if self.expected.len() < v.node_fates.len() {
            self.expected.resize(v.node_fates.len(), 0);
            self.sighted.resize(v.node_fates.len(), self.strict);
        }
        for (i, fate) in v.node_fates.iter().enumerate() {
            if *fate == NodeFate::Idle {
                continue;
            }
            let seq = v.wire_seqs[i];
            if self.sighted[i] && seq != self.expected[i] {
                out.push(Violation {
                    monitor: self.kind(),
                    tick: v.tick,
                    node: Some(i as u32),
                    expected: i64::from(self.expected[i]),
                    actual: i64::from(seq),
                    detail: "wire seq must advance by one per transmission",
                });
            }
            self.sighted[i] = true;
            self.expected[i] = seq.wrapping_add(1);
        }
    }
}

/// Checks that per-node staleness counters match the loss/acceptance
/// model and that the population stale count agrees with them.
#[derive(Debug)]
pub struct StalenessConsistency {
    strict: bool,
    prev: Vec<u32>,
    sighted: Vec<bool>,
}

impl StalenessConsistency {
    /// Strict mode: staleness is known to start at 0 everywhere.
    #[must_use]
    pub fn new() -> Self {
        StalenessConsistency {
            strict: true,
            prev: Vec::new(),
            sighted: Vec::new(),
        }
    }

    /// Lazy mode: the first staleness value seen per node is its baseline.
    #[must_use]
    pub fn resuming() -> Self {
        StalenessConsistency {
            strict: false,
            ..StalenessConsistency::new()
        }
    }
}

impl Default for StalenessConsistency {
    fn default() -> Self {
        StalenessConsistency::new()
    }
}

impl Monitor for StalenessConsistency {
    fn kind(&self) -> MonitorKind {
        MonitorKind::StalenessConsistency
    }

    fn check_tick(&mut self, v: &TickVitals<'_>, out: &mut Vec<Violation>) {
        if v.staleness.is_empty() {
            return;
        }
        let stale = v.staleness.iter().filter(|s| **s > 0).count() as u32;
        if stale != v.stale_nodes {
            out.push(Violation {
                monitor: self.kind(),
                tick: v.tick,
                node: None,
                expected: i64::from(stale),
                actual: i64::from(v.stale_nodes),
                detail: "stale_nodes must count the nodes with positive staleness",
            });
        }
        if v.node_fates.len() != v.staleness.len() || v.late_accepted.len() != v.staleness.len() {
            return;
        }
        if self.prev.len() < v.staleness.len() {
            self.prev.resize(v.staleness.len(), 0);
            self.sighted.resize(v.staleness.len(), self.strict);
        }
        for (i, fate) in v.node_fates.iter().enumerate() {
            let actual = v.staleness[i];
            if self.sighted[i] {
                // A late acceptance earlier in the tick reset the counter
                // before the apply phase ran.
                let base = if v.late_accepted[i] { 0 } else { self.prev[i] };
                let expected = match fate {
                    NodeFate::Accepted => 0,
                    NodeFate::LostInFlight => base.saturating_add(1),
                    NodeFate::Idle | NodeFate::NoCoverage => base,
                };
                if actual != expected {
                    out.push(Violation {
                        monitor: self.kind(),
                        tick: v.tick,
                        node: Some(i as u32),
                        expected: i64::from(expected),
                        actual: i64::from(actual),
                        detail: "staleness must follow the loss/acceptance history",
                    });
                }
            }
            self.sighted[i] = true;
            self.prev[i] = actual;
        }
    }
}

/// The monitor battery the pipeline runs every tick.
pub struct MonitorSet {
    monitors: Vec<Box<dyn Monitor>>,
    scratch: Vec<Violation>,
}

impl fmt::Debug for MonitorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorSet")
            .field("monitors", &self.monitors.len())
            .finish()
    }
}

impl MonitorSet {
    /// The standard four-law battery in strict mode, for online checking
    /// from the first tick of a run.
    #[must_use]
    pub fn standard() -> Self {
        MonitorSet::with_monitors(vec![
            Box::new(FilterConservation),
            Box::new(ChannelConservation::default()),
            Box::new(SeqMonotonicity::new()),
            Box::new(StalenessConsistency::new()),
        ])
    }

    /// The standard battery in lazy-baseline mode, for replaying a stream
    /// whose head may have been truncated (the offline `trace --check`).
    #[must_use]
    pub fn resuming() -> Self {
        MonitorSet::with_monitors(vec![
            Box::new(FilterConservation),
            Box::new(ChannelConservation::default()),
            Box::new(SeqMonotonicity::resuming()),
            Box::new(StalenessConsistency::resuming()),
        ])
    }

    /// A set with an explicit monitor list.
    #[must_use]
    pub fn with_monitors(monitors: Vec<Box<dyn Monitor>>) -> Self {
        MonitorSet {
            monitors,
            scratch: Vec::new(),
        }
    }

    /// An empty set (checks nothing).
    #[must_use]
    pub fn empty() -> Self {
        MonitorSet::with_monitors(Vec::new())
    }

    /// Adds a monitor to the battery.
    pub fn push(&mut self, monitor: Box<dyn Monitor>) {
        self.monitors.push(monitor);
    }

    /// Number of monitors in the battery.
    #[must_use]
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// True when the battery is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Runs every monitor over one tick's vitals and returns the
    /// violations found this tick (empty on a healthy tick). The returned
    /// slice is valid until the next call.
    pub fn check_tick(&mut self, vitals: &TickVitals<'_>) -> &[Violation] {
        self.scratch.clear();
        for monitor in &mut self.monitors {
            monitor.check_tick(vitals, &mut self.scratch);
        }
        &self.scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy<'a>() -> TickVitals<'a> {
        TickVitals {
            tick: 5,
            generated: 10,
            filter_sent: 4,
            suppressed: 6,
            on_air: 4,
            delivered: 3,
            lost: 1,
            no_coverage: 0,
            deferred: 1,
            arrived_late: 0,
            in_flight: 1,
            ..TickVitals::default()
        }
    }

    #[test]
    fn healthy_tick_raises_nothing() {
        let mut set = MonitorSet::standard();
        assert!(set.check_tick(&healthy()).is_empty());
    }

    #[test]
    fn filter_conservation_fires_on_unaccounted_observations() {
        let mut set = MonitorSet::standard();
        let v = TickVitals {
            suppressed: 5, // 4 + 5 != 10
            ..healthy()
        };
        let violations = set.check_tick(&v);
        assert_eq!(violations.len(), 1);
        let violation = violations[0];
        assert_eq!(violation.monitor, MonitorKind::FilterConservation);
        assert_eq!((violation.expected, violation.actual), (10, 9));
        assert_eq!(violation.tick, 5);
        let msg = violation.to_string();
        assert!(msg.contains("filter_conservation"), "{msg}");
        assert!(msg.contains("tick 5"), "{msg}");
    }

    #[test]
    fn channel_conservation_fires_on_leaked_frames() {
        let mut set = MonitorSet::standard();
        let v = TickVitals {
            delivered: 2, // 2 + 1 + 0 != 4
            ..healthy()
        };
        let violations = set.check_tick(&v);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].monitor, MonitorKind::ChannelConservation);
    }

    #[test]
    fn in_flight_continuity_is_tracked_across_ticks() {
        let mut set = MonitorSet::standard();
        assert!(set.check_tick(&healthy()).is_empty()); // in_flight = 1
        let v = TickVitals {
            tick: 6,
            deferred: 0,
            arrived_late: 0,
            lost: 1,
            in_flight: 3, // should still be 1
            ..healthy()
        };
        let violations = set.check_tick(&v);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].monitor, MonitorKind::ChannelConservation);
        assert_eq!((violations[0].expected, violations[0].actual), (1, 3));
    }

    #[test]
    fn deferred_must_not_exceed_lost() {
        let mut set = MonitorSet::standard();
        let v = TickVitals {
            deferred: 2,
            lost: 1,
            delivered: 3,
            in_flight: 2,
            ..healthy()
        };
        let violations = set.check_tick(&v);
        assert!(violations
            .iter()
            .any(|x| x.detail.contains("subset of lost")));
    }

    #[test]
    fn seq_monotonicity_accepts_the_strict_start_and_flags_gaps() {
        let mut set = MonitorSet::standard();
        let fates = [NodeFate::Accepted, NodeFate::Idle];
        let stale = [0u32, 0];
        let late = [false, false];
        let good = TickVitals {
            generated: 2,
            filter_sent: 1,
            suppressed: 1,
            on_air: 1,
            delivered: 1,
            lost: 0,
            deferred: 0,
            in_flight: 0,
            node_fates: &fates,
            wire_seqs: &[0, 0],
            staleness: &stale,
            late_accepted: &late,
            ..TickVitals::default()
        };
        assert!(set.check_tick(&good).is_empty());
        // The next transmission must carry seq 1; a replayed 0 is flagged.
        let bad = TickVitals {
            tick: 2,
            wire_seqs: &[0, 0],
            ..good
        };
        let violations = set.check_tick(&bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].monitor, MonitorKind::SeqMonotonicity);
        assert_eq!(violations[0].node, Some(0));
    }

    #[test]
    fn resuming_seq_monitor_adopts_the_first_seen_baseline() {
        let mut set = MonitorSet::resuming();
        let fates = [NodeFate::Accepted];
        let stale = [0u32];
        let late = [false];
        let mid_stream = TickVitals {
            generated: 1,
            filter_sent: 1,
            on_air: 1,
            delivered: 1,
            node_fates: &fates,
            wire_seqs: &[41], // head of the stream was dropped
            staleness: &stale,
            late_accepted: &late,
            ..TickVitals::default()
        };
        assert!(set.check_tick(&mid_stream).is_empty());
        let next = TickVitals {
            tick: 1,
            wire_seqs: &[42],
            ..mid_stream
        };
        assert!(set.check_tick(&next).is_empty());
        let broken = TickVitals {
            tick: 2,
            wire_seqs: &[44], // skipped 43
            ..mid_stream
        };
        assert_eq!(set.check_tick(&broken).len(), 1);
    }

    #[test]
    fn staleness_model_tracks_losses_accepts_and_late_resets() {
        let mut set = MonitorSet::standard();
        let fates = [NodeFate::LostInFlight];
        let late = [false];
        let tick1 = TickVitals {
            generated: 1,
            filter_sent: 1,
            on_air: 1,
            lost: 1,
            stale_nodes: 1,
            node_fates: &fates,
            wire_seqs: &[0],
            staleness: &[1],
            late_accepted: &late,
            ..TickVitals::default()
        };
        assert!(set.check_tick(&tick1).is_empty());
        // A second loss must make it 2 — a frozen counter is a violation.
        // This loss defers the frame so a late arrival exists for tick 3.
        let tick2 = TickVitals {
            tick: 1,
            wire_seqs: &[1],
            staleness: &[1],
            deferred: 1,
            in_flight: 1,
            ..tick1
        };
        let violations = set.check_tick(&tick2);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].monitor, MonitorKind::StalenessConsistency);
        assert_eq!((violations[0].expected, violations[0].actual), (2, 1));
        // The deferred frame arrives late and is accepted, resetting the
        // baseline before this tick's fresh loss bumps it back to 1.
        let tick3 = TickVitals {
            tick: 2,
            wire_seqs: &[2],
            staleness: &[1],
            arrived_late: 1,
            in_flight: 0,
            late_accepted: &[true],
            ..tick1
        };
        assert!(set.check_tick(&tick3).is_empty());
    }

    #[test]
    fn stale_count_must_match_per_node_counters() {
        let mut set = MonitorSet::standard();
        let v = TickVitals {
            generated: 2,
            suppressed: 2,
            stale_nodes: 0, // but one node is stale below
            node_fates: &[NodeFate::Idle, NodeFate::Idle],
            wire_seqs: &[0, 0],
            staleness: &[3, 0],
            late_accepted: &[false, false],
            ..TickVitals::default()
        };
        let violations = set.check_tick(&v);
        assert!(violations
            .iter()
            .any(|x| x.monitor == MonitorKind::StalenessConsistency && x.node.is_none()));
    }

    #[test]
    fn empty_slices_skip_per_node_checks() {
        let mut set = MonitorSet::standard();
        // Aggregates only — per-node monitors must not fire or panic.
        assert!(set.check_tick(&healthy()).is_empty());
    }

    #[test]
    fn monitor_kind_names_round_trip() {
        for kind in [
            MonitorKind::FilterConservation,
            MonitorKind::ChannelConservation,
            MonitorKind::SeqMonotonicity,
            MonitorKind::StalenessConsistency,
        ] {
            assert_eq!(MonitorKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(MonitorKind::from_name("nope"), None);
    }
}
