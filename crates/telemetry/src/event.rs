//! Structured events, per-phase spans and the bounded ring they live in.
//!
//! The flight-recorder events give every generated location update a
//! stable `(node, seq)` identity — `seq` is the tick the update was
//! generated on — and record its whole lifecycle as linked events:
//! [`EventKind::LuGenerated`] → [`EventKind::LuClassified`] →
//! [`EventKind::LuDecision`] → [`EventKind::LuChannel`] (one per
//! transmission attempt) → [`EventKind::LuApply`] →
//! [`EventKind::LuError`]. The trace CLI in `mobigrid-experiments`
//! reconstructs per-update causal chains from the exported stream.

use crate::clock::Stamp;

/// The pipeline phase a timing span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Ground-truth advancement (phase 1).
    Observe,
    /// Filter-policy evaluation (phase 2).
    Filter,
    /// Network routing and fault-channel traversal (phase 2b).
    Transmit,
    /// Broker apply / estimate / measure (phases 3+4).
    Estimate,
}

impl Phase {
    /// The phase's stable lowercase name, as used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Observe => "observe",
            Phase::Filter => "filter",
            Phase::Transmit => "transmit",
            Phase::Estimate => "estimate",
        }
    }
}

/// What the link did to one transmitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Delivered to the brokers this tick.
    Delivered,
    /// Delivered along with a duplicate copy.
    DeliveredDuplicate,
    /// Deferred in flight; it will arrive on a later tick.
    Deferred,
    /// A previously deferred frame arrived this tick.
    ArrivedLate,
    /// Never reached the air: no gateway covered the sender.
    DroppedNoCoverage,
    /// Lost in flight by the fault channel.
    DroppedFault,
    /// Arrived but failed its checksum and was discarded.
    DroppedCorrupted,
}

impl LinkFate {
    /// The fate's stable snake_case name, as used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LinkFate::Delivered => "delivered",
            LinkFate::DeliveredDuplicate => "delivered_duplicate",
            LinkFate::Deferred => "deferred",
            LinkFate::ArrivedLate => "arrived_late",
            LinkFate::DroppedNoCoverage => "dropped_no_coverage",
            LinkFate::DroppedFault => "dropped_fault",
            LinkFate::DroppedCorrupted => "dropped_corrupted",
        }
    }

    /// Parses the exporter name back (see [`LinkFate::name`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "delivered" => Some(LinkFate::Delivered),
            "delivered_duplicate" => Some(LinkFate::DeliveredDuplicate),
            "deferred" => Some(LinkFate::Deferred),
            "arrived_late" => Some(LinkFate::ArrivedLate),
            "dropped_no_coverage" => Some(LinkFate::DroppedNoCoverage),
            "dropped_fault" => Some(LinkFate::DroppedFault),
            "dropped_corrupted" => Some(LinkFate::DroppedCorrupted),
            _ => None,
        }
    }
}

/// The mobility class the ADF assigned a node — the paper's SS / RMS /
/// LMS taxonomy, mirrored here so classification events carry a fixed-size
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilityClass {
    /// Stationary State (SS).
    Stop,
    /// Random Movement State (RMS).
    Random,
    /// Linear Movement State (LMS).
    Linear,
}

impl MobilityClass {
    /// The class's stable snake_case name, as used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MobilityClass::Stop => "stop",
            MobilityClass::Random => "random",
            MobilityClass::Linear => "linear",
        }
    }

    /// Parses the exporter name back (see [`MobilityClass::name`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "stop" => Some(MobilityClass::Stop),
            "random" => Some(MobilityClass::Random),
            "linear" => Some(MobilityClass::Linear),
            _ => None,
        }
    }
}

/// What the broker did when one location update (or its absence) reached
/// the apply phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// A received update was stored and fed to the estimator.
    Accepted,
    /// A received frame was an exact copy of the last accepted one
    /// (channel duplicate) and was rejected.
    Duplicate,
    /// A received frame was older than the last accepted one (a reordered
    /// late frame) and was rejected.
    Stale,
    /// A suppressed update: the broker stored the estimator's position.
    Estimated,
    /// An expected-but-lost update: the broker stored a degraded estimate
    /// blended toward the last confirmed fix.
    Degraded,
    /// The broker had nothing to apply (node never heard from, or no
    /// estimate available).
    NoRecord,
}

impl ApplyOutcome {
    /// The outcome's stable snake_case name, as used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ApplyOutcome::Accepted => "accepted",
            ApplyOutcome::Duplicate => "duplicate",
            ApplyOutcome::Stale => "stale",
            ApplyOutcome::Estimated => "estimated",
            ApplyOutcome::Degraded => "degraded",
            ApplyOutcome::NoRecord => "no_record",
        }
    }

    /// Parses the exporter name back (see [`ApplyOutcome::name`]).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "accepted" => Some(ApplyOutcome::Accepted),
            "duplicate" => Some(ApplyOutcome::Duplicate),
            "stale" => Some(ApplyOutcome::Stale),
            "estimated" => Some(ApplyOutcome::Estimated),
            "degraded" => Some(ApplyOutcome::Degraded),
            "no_record" => Some(ApplyOutcome::NoRecord),
            _ => None,
        }
    }
}

/// One structured event. All variants are `Copy` and fixed-size so the
/// ring never touches the heap after construction.
///
/// The `Lu*` variants share the flight-recorder identity `(node, seq)`:
/// `node` is the dense node index and `seq` is the tick the location
/// update was *generated* on (each node generates exactly one observation
/// per tick, so the generation tick identifies the update without
/// perturbing the wire sequence numbers the fault channel hashes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A node's ground-truth observation was generated this tick.
    LuGenerated {
        /// The node's dense index.
        node: u32,
        /// The flight-recorder sequence (generation tick).
        seq: u32,
        /// Ground-truth x in metres.
        x: f64,
        /// Ground-truth y in metres.
        y: f64,
    },
    /// The classification/cluster state in force when the update was
    /// filtered (only policies that classify emit this).
    LuClassified {
        /// The node's dense index.
        node: u32,
        /// The flight-recorder sequence (generation tick).
        seq: u32,
        /// The node's mobility class (SS / RMS / LMS).
        class: MobilityClass,
        /// The velocity cluster the node was assigned (`-1` = none, e.g.
        /// a stopped node excluded from clustering).
        cluster: i32,
        /// The distance threshold in force, in metres.
        dth: f64,
    },
    /// The filter policy decided whether one node's observation transmits.
    LuDecision {
        /// The node's dense index.
        node: u32,
        /// The flight-recorder sequence (generation tick).
        seq: u32,
        /// True when the update was sent, false when suppressed.
        sent: bool,
        /// Displacement against the filter's reference in metres (NaN —
        /// exported as `null` — when the policy exposes none, e.g. a
        /// node's first observation).
        displacement: f64,
        /// The distance threshold compared against, in metres (NaN when
        /// the policy has none).
        dth: f64,
    },
    /// The access network / fault channel resolved one transmission
    /// attempt's fate.
    LuChannel {
        /// The sending node's dense index.
        node: u32,
        /// The flight-recorder sequence (generation tick; for
        /// [`LinkFate::ArrivedLate`] this is the tick the frame was
        /// originally generated, not the arrival tick).
        seq: u32,
        /// The wire sequence number the frame carried.
        wire_seq: u32,
        /// The attempt number (0 = first transmission, >0 = retry).
        attempt: u32,
        /// What happened to the frame.
        fate: LinkFate,
        /// For [`LinkFate::Deferred`], the tick the frame will arrive;
        /// for [`LinkFate::ArrivedLate`], the arrival tick; 0 otherwise.
        due_tick: u64,
    },
    /// The broker (with-LE arm) applied this node's tick: a received
    /// update, an estimate for a suppressed one, or a degraded estimate
    /// for a lost one.
    LuApply {
        /// The node's dense index.
        node: u32,
        /// The flight-recorder sequence (generation tick of the applied
        /// update; for a late frame this is older than the current tick).
        seq: u32,
        /// What the broker did.
        outcome: ApplyOutcome,
        /// Consecutive-loss staleness counter after the apply.
        staleness: u32,
        /// Trust-window blend weight toward pure extrapolation (1.0 when
        /// no blending happened).
        blend: f64,
    },
    /// The estimation-error sample for this node at this tick.
    LuError {
        /// The node's dense index.
        node: u32,
        /// The flight-recorder sequence (generation tick).
        seq: u32,
        /// Broker-with-LE error against ground truth, in metres.
        err_le: f64,
        /// Broker-without-LE error against ground truth, in metres.
        err_raw: f64,
    },
    /// An online invariant monitor detected a conservation-law violation.
    InvariantViolation {
        /// The monitor that fired (see `monitor::MonitorKind::name`).
        monitor: crate::monitor::MonitorKind,
        /// The offending node's dense index, or `u32::MAX` for a
        /// population-wide violation.
        node: u32,
        /// The value the invariant required.
        expected: i64,
        /// The value actually observed.
        actual: i64,
    },
    /// The with-LE broker's stale-node count changed.
    StalenessTransition {
        /// Stale nodes after this tick.
        stale_nodes: u32,
        /// Stale nodes after the previous tick.
        previous: u32,
    },
}

/// An [`EventKind`] plus the logical stamp it was recorded at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// When the event was recorded (logical time).
    pub stamp: Stamp,
    /// What happened.
    pub kind: EventKind,
}

/// One per-phase timing span: which phase ran, at which logical stamp,
/// over how many items. Spans are sampled from the monotonic tick clock —
/// never from wall time — so a recorded trace is replay-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// When the span was recorded (logical time).
    pub stamp: Stamp,
    /// The phase that ran.
    pub phase: Phase,
    /// Items the phase processed (nodes, frames, shards — phase-specific).
    pub items: u64,
}

/// A bounded ring buffer that keeps the most recent `capacity` items and
/// counts how many older ones it overwrote.
///
/// # Examples
///
/// ```
/// use mobigrid_telemetry::EventRing;
///
/// let mut ring: EventRing<u32> = EventRing::new(2);
/// ring.push(1);
/// ring.push(2);
/// ring.push(3);
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    buf: Vec<T>,
    capacity: usize,
    start: usize,
    dropped: u64,
}

impl<T> EventRing<T> {
    /// An empty ring holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            start: 0,
            dropped: 0,
        }
    }

    /// Appends an item, overwriting (and counting) the oldest one when
    /// full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.start] = item;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.start..].iter().chain(&self.buf[..self.start])
    }

    /// Items currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_items_in_order() {
        let mut ring: EventRing<u32> = EventRing::new(3);
        for v in 0..7 {
            ring.push(v);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn ring_below_capacity_preserves_everything() {
        let mut ring: EventRing<u32> = EventRing::new(8);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_counts_drops_across_multiple_full_wraps() {
        let mut ring: EventRing<u32> = EventRing::new(4);
        // 3 full wraps plus a partial one: 4 retained, the rest dropped.
        for v in 0..19 {
            ring.push(v);
        }
        assert_eq!(ring.dropped(), 15);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![15, 16, 17, 18]);
        // Dropped keeps counting monotonically on further wraps.
        for v in 19..27 {
            ring.push(v);
        }
        assert_eq!(ring.dropped(), 23);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![23, 24, 25, 26]);
    }

    #[test]
    fn ring_capacity_zero_clamps_to_one() {
        let mut ring: EventRing<u32> = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        assert!(ring.is_empty());
        ring.push(10);
        assert_eq!(ring.dropped(), 0);
        ring.push(11);
        ring.push(12);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![12]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn ring_iterates_oldest_first_at_every_overflow_offset() {
        // After overflow the ring's physical start rotates; iteration must
        // stay oldest-first no matter where the seam lands.
        for extra in 0..10u32 {
            let mut ring: EventRing<u32> = EventRing::new(3);
            let total = 3 + extra;
            for v in 0..total {
                ring.push(v);
            }
            let got: Vec<u32> = ring.iter().copied().collect();
            let want: Vec<u32> = (total - 3..total).collect();
            assert_eq!(got, want, "after {total} pushes");
            assert_eq!(ring.dropped(), u64::from(extra));
        }
    }
}
