//! Structured events, per-phase spans and the bounded ring they live in.

use crate::clock::Stamp;

/// The pipeline phase a timing span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Ground-truth advancement (phase 1).
    Observe,
    /// Filter-policy evaluation (phase 2).
    Filter,
    /// Network routing and fault-channel traversal (phase 2b).
    Transmit,
    /// Broker apply / estimate / measure (phases 3+4).
    Estimate,
}

impl Phase {
    /// The phase's stable lowercase name, as used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Observe => "observe",
            Phase::Filter => "filter",
            Phase::Transmit => "transmit",
            Phase::Estimate => "estimate",
        }
    }
}

/// What the link did to one transmitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFate {
    /// Delivered to the brokers this tick.
    Delivered,
    /// Delivered along with a duplicate copy.
    DeliveredDuplicate,
    /// Deferred in flight; it will arrive on a later tick.
    Deferred,
    /// A previously deferred frame arrived this tick.
    ArrivedLate,
    /// Never reached the air: no gateway covered the sender.
    DroppedNoCoverage,
    /// Lost in flight by the fault channel.
    DroppedFault,
    /// Arrived but failed its checksum and was discarded.
    DroppedCorrupted,
}

impl LinkFate {
    /// The fate's stable snake_case name, as used by the exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LinkFate::Delivered => "delivered",
            LinkFate::DeliveredDuplicate => "delivered_duplicate",
            LinkFate::Deferred => "deferred",
            LinkFate::ArrivedLate => "arrived_late",
            LinkFate::DroppedNoCoverage => "dropped_no_coverage",
            LinkFate::DroppedFault => "dropped_fault",
            LinkFate::DroppedCorrupted => "dropped_corrupted",
        }
    }
}

/// One structured event. All variants are `Copy` and fixed-size so the
/// ring never touches the heap after construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The filter policy decided whether one node's observation transmits.
    FilterDecision {
        /// The node's dense index.
        node: u32,
        /// True when the update was sent, false when filtered.
        sent: bool,
    },
    /// The access network / fault channel resolved one frame's fate.
    LinkFate {
        /// The sending node's dense index.
        node: u32,
        /// What happened to the frame.
        fate: LinkFate,
    },
    /// The with-LE broker's stale-node count changed.
    StalenessTransition {
        /// Stale nodes after this tick.
        stale_nodes: u32,
        /// Stale nodes after the previous tick.
        previous: u32,
    },
}

/// An [`EventKind`] plus the logical stamp it was recorded at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// When the event was recorded (logical time).
    pub stamp: Stamp,
    /// What happened.
    pub kind: EventKind,
}

/// One per-phase timing span: which phase ran, at which logical stamp,
/// over how many items. Spans are sampled from the monotonic tick clock —
/// never from wall time — so a recorded trace is replay-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// When the span was recorded (logical time).
    pub stamp: Stamp,
    /// The phase that ran.
    pub phase: Phase,
    /// Items the phase processed (nodes, frames, shards — phase-specific).
    pub items: u64,
}

/// A bounded ring buffer that keeps the most recent `capacity` items and
/// counts how many older ones it overwrote.
///
/// # Examples
///
/// ```
/// use mobigrid_telemetry::EventRing;
///
/// let mut ring: EventRing<u32> = EventRing::new(2);
/// ring.push(1);
/// ring.push(2);
/// ring.push(3);
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    buf: Vec<T>,
    capacity: usize,
    start: usize,
    dropped: u64,
}

impl<T> EventRing<T> {
    /// An empty ring holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            start: 0,
            dropped: 0,
        }
    }

    /// Appends an item, overwriting (and counting) the oldest one when
    /// full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() < self.capacity {
            self.buf.push(item);
        } else {
            self.buf[self.start] = item;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.start..].iter().chain(&self.buf[..self.start])
    }

    /// Items currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_items_in_order() {
        let mut ring: EventRing<u32> = EventRing::new(3);
        for v in 0..7 {
            ring.push(v);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn ring_below_capacity_preserves_everything() {
        let mut ring: EventRing<u32> = EventRing::new(8);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(ring.dropped(), 0);
    }
}
