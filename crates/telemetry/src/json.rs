//! A minimal, dependency-free JSON validator.
//!
//! The hermetic offline build carries no JSON crate, so the telemetry
//! tests and the CI smoke step validate exported JSONL with this ~100-line
//! recursive-descent checker instead. It validates syntax only (RFC 8259
//! grammar); it builds no value tree.

/// Validates that `s` is exactly one JSON value (with optional surrounding
/// whitespace).
///
/// # Errors
///
/// Returns the byte offset and a short description of the first syntax
/// error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// Validates every non-empty line of `s` as standalone JSON and returns
/// the number of lines checked.
///
/// # Errors
///
/// Returns the 1-based line number and the underlying error for the first
/// invalid line.
pub fn validate_jsonl(s: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b[pos..].starts_with(lit) {
        Ok(pos + lit.len())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // consume '{'
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        pos = string(b, pos).map_err(|e| format!("object key: {e}"))?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = skip_ws(b, value(b, pos)?);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // consume '['
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, value(b, pos)?);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: usize) -> Result<usize, String> {
    if b.get(pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    let mut i = pos + 1;
    while let Some(&c) = b.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => {
                match b.get(i + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                    Some(b'u') => {
                        let hex = b.get(i + 2..i + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        i += 6;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1F => return Err(format!("unescaped control byte at {i}")),
            _ => i += 1,
        }
    }
    Err(format!("unterminated string starting at byte {pos}"))
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut p: usize| -> usize {
        while p < b.len() && b[p].is_ascii_digit() {
            p += 1;
        }
        p
    };
    let int_end = digits(b, pos);
    if int_end == pos {
        return Err(format!("expected digit at byte {pos}"));
    }
    if b[pos] == b'0' && int_end > pos + 1 {
        return Err(format!("leading zero at byte {pos}"));
    }
    pos = int_end;
    if b.get(pos) == Some(&b'.') {
        let frac_end = digits(b, pos + 1);
        if frac_end == pos + 1 {
            return Err(format!("expected fraction digit at byte {pos}"));
        }
        pos = frac_end;
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        let exp_end = digits(b, pos);
        if exp_end == pos {
            return Err(format!("expected exponent digit at byte {start}"));
        }
        pos = exp_end;
    }
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-0.5e+3",
            "1e-10",
            r#"{"a":[1,2.5,{"b":"x\ny"},true,null],"c":"é"}"#,
            r#"  {"padded": [ 1 , 2 ] }  "#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "nul",
            "{} extra",
            "NaN",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be invalid");
        }
    }

    #[test]
    fn jsonl_counts_nonempty_lines() {
        assert_eq!(validate_jsonl("{}\n\n[1]\n").unwrap(), 2);
        assert!(validate_jsonl("{}\nbad\n").is_err());
    }
}
