//! A minimal, dependency-free JSON validator and parser.
//!
//! The hermetic offline build carries no JSON crate, so the telemetry
//! tests and the CI smoke step validate exported JSONL with this
//! recursive-descent checker instead ([`validate`] / [`validate_jsonl`]
//! check syntax only and build no tree), and the trace-analysis CLI reads
//! exported lines back through [`parse`] into a [`Value`] tree.

/// Validates that `s` is exactly one JSON value (with optional surrounding
/// whitespace).
///
/// # Errors
///
/// Returns the byte offset and a short description of the first syntax
/// error.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// Validates every non-empty line of `s` as standalone JSON and returns
/// the number of lines checked.
///
/// # Errors
///
/// Returns the 1-based line number and the underlying error for the first
/// invalid line.
pub fn validate_jsonl(s: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, String> {
    match b.get(pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, String> {
    if b[pos..].starts_with(lit) {
        Ok(pos + lit.len())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // consume '{'
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        pos = string(b, pos).map_err(|e| format!("object key: {e}"))?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        pos = skip_ws(b, value(b, pos)?);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], mut pos: usize) -> Result<usize, String> {
    pos = skip_ws(b, pos + 1); // consume '['
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = skip_ws(b, value(b, pos)?);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: usize) -> Result<usize, String> {
    if b.get(pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    let mut i = pos + 1;
    while let Some(&c) = b.get(i) {
        match c {
            b'"' => return Ok(i + 1),
            b'\\' => {
                match b.get(i + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                    Some(b'u') => {
                        let hex = b.get(i + 2..i + 6).ok_or("truncated \\u escape")?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        i += 6;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1F => return Err(format!("unescaped control byte at {i}")),
            _ => i += 1,
        }
    }
    Err(format!("unterminated string starting at byte {pos}"))
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, String> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut p: usize| -> usize {
        while p < b.len() && b[p].is_ascii_digit() {
            p += 1;
        }
        p
    };
    let int_end = digits(b, pos);
    if int_end == pos {
        return Err(format!("expected digit at byte {pos}"));
    }
    if b[pos] == b'0' && int_end > pos + 1 {
        return Err(format!("leading zero at byte {pos}"));
    }
    pos = int_end;
    if b.get(pos) == Some(&b'.') {
        let frac_end = digits(b, pos + 1);
        if frac_end == pos + 1 {
            return Err(format!("expected fraction digit at byte {pos}"));
        }
        pos = frac_end;
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        let exp_end = digits(b, pos);
        if exp_end == pos {
            return Err(format!("expected exponent digit at byte {start}"));
        }
        pos = exp_end;
    }
    Ok(pos)
}

/// A parsed JSON value.
///
/// Objects keep their members in document order as a plain pair list —
/// the exporters emit few, fixed keys per line, so a linear [`Value::get`]
/// beats a map.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The named member of an object (`None` for other variants or a
    /// missing key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions and
    /// out-of-range numbers).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 1.8446744073709552e19 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer (rejects fractions and out-of-range
    /// numbers).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(v)
                if v.fract() == 0.0 && *v >= -9.223372036854776e18 && *v <= 9.223372036854776e18 =>
            {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses `s` as exactly one JSON value (with optional surrounding
/// whitespace) into a [`Value`] tree.
///
/// # Errors
///
/// Returns the byte offset and a short description of the first syntax
/// error.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let pos = skip_ws(b, 0);
    let (v, pos) = parse_value(b, pos)?;
    let pos = skip_ws(b, pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value(b: &[u8], pos: usize) -> Result<(Value, usize), String> {
    match b.get(pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => {
            let (s, end) = parse_string(b, pos)?;
            Ok((Value::Str(s), end))
        }
        Some(b't') => literal(b, pos, b"true").map(|end| (Value::Bool(true), end)),
        Some(b'f') => literal(b, pos, b"false").map(|end| (Value::Bool(false), end)),
        Some(b'n') => literal(b, pos, b"null").map(|end| (Value::Null, end)),
        Some(c) if *c == b'-' || c.is_ascii_digit() => {
            let end = number(b, pos)?;
            let text = std::str::from_utf8(&b[pos..end]).map_err(|_| "non-utf8 number")?;
            let v: f64 = text.parse().map_err(|_| format!("bad number at byte {pos}"))?;
            Ok((Value::Num(v), end))
        }
        Some(c) => Err(format!("unexpected byte {:?} at {pos}", *c as char)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn parse_object(b: &[u8], mut pos: usize) -> Result<(Value, usize), String> {
    let mut members = Vec::new();
    pos = skip_ws(b, pos + 1); // consume '{'
    if b.get(pos) == Some(&b'}') {
        return Ok((Value::Obj(members), pos + 1));
    }
    loop {
        let (key, end) = parse_string(b, pos).map_err(|e| format!("object key: {e}"))?;
        pos = skip_ws(b, end);
        if b.get(pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        pos = skip_ws(b, pos + 1);
        let (v, end) = parse_value(b, pos)?;
        members.push((key, v));
        pos = skip_ws(b, end);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok((Value::Obj(members), pos + 1)),
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], mut pos: usize) -> Result<(Value, usize), String> {
    let mut items = Vec::new();
    pos = skip_ws(b, pos + 1); // consume '['
    if b.get(pos) == Some(&b']') {
        return Ok((Value::Arr(items), pos + 1));
    }
    loop {
        let (v, end) = parse_value(b, pos)?;
        items.push(v);
        pos = skip_ws(b, end);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok((Value::Arr(items), pos + 1)),
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: usize) -> Result<(String, usize), String> {
    // Validate first so the decode loop below only sees well-formed input.
    let end = string(b, pos)?;
    let body = &b[pos + 1..end - 1];
    let mut out = String::with_capacity(body.len());
    let mut i = 0;
    while i < body.len() {
        if body[i] == b'\\' {
            match body[i + 1] {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'u' => {
                    let hex = std::str::from_utf8(&body[i + 2..i + 6]).unwrap_or("0");
                    let code = u32::from_str_radix(hex, 16).unwrap_or(0);
                    // Surrogates and other invalid scalars decode to the
                    // replacement character; the exporters never emit them.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    i += 6;
                    continue;
                }
                _ => unreachable!("escape validated above"),
            }
            i += 2;
        } else {
            let ch_len = match body[i] {
                0x00..=0x7F => 1,
                0xC0..=0xDF => 2,
                0xE0..=0xEF => 3,
                _ => 4,
            };
            let ch = std::str::from_utf8(&body[i..i + ch_len])
                .map_err(|_| format!("non-utf8 string at byte {pos}"))?;
            out.push_str(ch);
            i += ch_len;
        }
    }
    Ok((out, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-0.5e+3",
            "1e-10",
            r#"{"a":[1,2.5,{"b":"x\ny"},true,null],"c":"é"}"#,
            r#"  {"padded": [ 1 , 2 ] }  "#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "\"unterminated",
            "nul",
            "{} extra",
            "NaN",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be invalid");
        }
    }

    #[test]
    fn jsonl_counts_nonempty_lines() {
        assert_eq!(validate_jsonl("{}\n\n[1]\n").unwrap(), 2);
        assert!(validate_jsonl("{}\nbad\n").is_err());
    }

    #[test]
    fn jsonl_truncated_object_reports_its_line() {
        let err = validate_jsonl("{\"a\":1}\n{\"b\":2\n{\"c\":3}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn jsonl_bare_nan_reports_its_line() {
        let err = validate_jsonl("{\"ok\":null}\n{\"v\":NaN}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        assert!(err.contains('N'), "{err}");
    }

    #[test]
    fn jsonl_unterminated_string_reports_its_line() {
        let err = validate_jsonl("{}\n{}\n{\"name\":\"oops}\n").unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("unterminated"), "{err}");
    }

    #[test]
    fn jsonl_accepts_crlf_line_endings() {
        // \r is stripped by str::lines for \r\n endings, and a stray \r
        // inside a line is plain whitespace to the validator either way.
        assert_eq!(validate_jsonl("{\"a\":1}\r\n{\"b\":2}\r\n").unwrap(), 2);
        assert_eq!(validate_jsonl("{\"a\":1}\r\n{\"b\":2}").unwrap(), 2);
        let err = validate_jsonl("{\"a\":1}\r\n{\"b\":\r\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse(r#"{"name":"sim.sent","value":4,"nested":[1,-2.5,null,true],"t":"a\nb"}"#)
            .unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("sim.sent"));
        assert_eq!(v.get("value").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("t").and_then(Value::as_str), Some("a\nb"));
        match v.get("nested") {
            Some(Value::Arr(items)) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].as_f64(), Some(-2.5));
                assert_eq!(items[1].as_u64(), None);
                assert_eq!(items[1].as_i64(), None, "fractions are not integers");
                assert_eq!(items[2], Value::Null);
                assert_eq!(items[3].as_bool(), Some(true));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_decodes_unicode_escapes() {
        let v = parse(r#""café ✓""#).unwrap();
        assert_eq!(v.as_str(), Some("café ✓"));
    }

    #[test]
    fn parse_rejects_what_validate_rejects() {
        for doc in ["", "{", "[1,]", "NaN", "\"unterminated", "{} extra"] {
            assert!(parse(doc).is_err(), "{doc:?} should fail to parse");
        }
    }

    #[test]
    fn parse_round_trips_exporter_lines() {
        // A realistic exporter line: negative ints, nulls, bools, strings.
        let line = "{\"type\":\"event\",\"tick\":42,\"seq\":3,\"kind\":\"lu_decision\",\"node\":7,\"seq2\":-1,\"sent\":false,\"displacement\":null,\"dth\":38.5}";
        let v = parse(line).unwrap();
        assert_eq!(v.get("tick").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("seq2").and_then(Value::as_i64), Some(-1));
        assert_eq!(v.get("sent").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("displacement"), Some(&Value::Null));
        assert_eq!(v.get("dth").and_then(Value::as_f64), Some(38.5));
    }
}
