//! Fixed log-spaced histograms with an exactly mergeable delta type.

/// Maximum number of slots a histogram can use, including the underflow
/// and overflow slots. Fixing the array size keeps [`HistogramDelta`]
/// `Copy` so per-shard partials can live in plain per-shard output structs
/// with no heap traffic.
pub const MAX_BUCKETS: usize = 24;

/// Fixed log-spaced bucket boundaries: slot 0 catches values below `min`
/// (and non-finite values), slots `1..=len` cover
/// `[min·growthⁱ⁻¹, min·growthⁱ)`, and slot `len + 1` catches everything
/// at or above `min·growthˡᵉⁿ`.
///
/// The boundaries are part of the spec and never move at runtime, so two
/// deltas with the same spec merge bucket by bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSpec {
    min: f64,
    growth: f64,
    len: u8,
}

impl BucketSpec {
    /// `len` log-spaced buckets starting at `min` with ratio `growth`.
    ///
    /// # Panics
    ///
    /// Panics if `min` or `growth` is not finite and positive, if
    /// `growth <= 1`, or if `len + 2` exceeds [`MAX_BUCKETS`].
    #[must_use]
    pub fn log_spaced(min: f64, growth: f64, len: u8) -> Self {
        assert!(min.is_finite() && min > 0.0, "min must be positive");
        assert!(growth.is_finite() && growth > 1.0, "growth must exceed 1");
        assert!(
            usize::from(len) + 2 <= MAX_BUCKETS,
            "len + 2 must fit in MAX_BUCKETS"
        );
        BucketSpec { min, growth, len }
    }

    /// Total slots in use: `len` log buckets plus underflow and overflow.
    #[must_use]
    pub fn slots(&self) -> usize {
        usize::from(self.len) + 2
    }

    /// The slot a value lands in.
    #[must_use]
    pub fn slot(&self, v: f64) -> usize {
        if !v.is_finite() || v < self.min {
            return 0;
        }
        let i = (v / self.min).log(self.growth).floor();
        if i < 0.0 {
            // Rounding at the first boundary: v >= min always belongs to
            // slot 1 or later.
            return 1;
        }
        let i = i as usize;
        if i >= usize::from(self.len) {
            self.slots() - 1
        } else {
            i + 1
        }
    }

    /// The slot's inclusive lower bound (`None` for the underflow slot,
    /// which starts at negative infinity).
    #[must_use]
    pub fn lower_bound(&self, slot: usize) -> Option<f64> {
        match slot {
            0 => None,
            s if s < self.slots() => Some(self.min * self.growth.powi(s as i32 - 1)),
            _ => None,
        }
    }

    /// The slot's exclusive upper bound (`None` for the overflow slot,
    /// which extends to infinity).
    #[must_use]
    pub fn upper_bound(&self, slot: usize) -> Option<f64> {
        if slot + 1 >= self.slots() {
            None
        } else {
            Some(self.min * self.growth.powi(slot as i32))
        }
    }
}

/// One histogram's mergeable state: per-slot counts plus total count and
/// running min/max.
///
/// The merge is **exactly associative and commutative** — integer adds
/// plus `f64` min/max, deliberately no floating-point sum — so per-shard
/// deltas can be combined under any grouping and still produce identical
/// bits. This is the same algebra as the pipeline's `BrokerDelta`.
///
/// # Examples
///
/// ```
/// use mobigrid_telemetry::{BucketSpec, HistogramDelta};
///
/// let spec = BucketSpec::log_spaced(1.0, 2.0, 8);
/// let mut a = HistogramDelta::new(spec);
/// let mut b = HistogramDelta::new(spec);
/// a.record(1.5);
/// b.record(100.0);
/// a.merge(&b);
/// assert_eq!(a.count(), 2);
/// assert_eq!(a.min(), Some(1.5));
/// assert_eq!(a.max(), Some(100.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramDelta {
    spec: BucketSpec,
    counts: [u64; MAX_BUCKETS],
    count: u64,
    min: f64,
    max: f64,
}

impl HistogramDelta {
    /// An empty delta over `spec`.
    #[must_use]
    pub fn new(spec: BucketSpec) -> Self {
        HistogramDelta {
            spec,
            counts: [0; MAX_BUCKETS],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.counts[self.spec.slot(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Folds `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two deltas were built over different [`BucketSpec`]s.
    pub fn merge(&mut self, other: &HistogramDelta) {
        assert_eq!(
            self.spec, other.spec,
            "histogram deltas with different bucket specs cannot merge"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The bucket spec this delta was built over.
    #[must_use]
    pub fn spec(&self) -> BucketSpec {
        self.spec
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in one slot (0 = underflow, last = overflow).
    #[must_use]
    pub fn bucket(&self, slot: usize) -> u64 {
        self.counts[slot]
    }

    /// Smallest finite sample seen, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min.is_finite().then_some(self.min)
    }

    /// Largest finite sample seen, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max.is_finite().then_some(self.max)
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_cover_the_whole_line() {
        let spec = BucketSpec::log_spaced(0.5, 2.0, 4); // 0.5 1 2 4 8
        assert_eq!(spec.slots(), 6);
        assert_eq!(spec.slot(0.0), 0);
        assert_eq!(spec.slot(f64::NAN), 0);
        assert_eq!(spec.slot(0.5), 1);
        assert_eq!(spec.slot(0.9), 1);
        assert_eq!(spec.slot(1.0), 2);
        assert_eq!(spec.slot(7.9), 4);
        assert_eq!(spec.slot(8.0), 5);
        assert_eq!(spec.slot(1e12), 5);
    }

    #[test]
    fn bounds_match_slots() {
        let spec = BucketSpec::log_spaced(0.5, 2.0, 4);
        assert_eq!(spec.lower_bound(0), None);
        assert_eq!(spec.upper_bound(0), Some(0.5));
        assert_eq!(spec.lower_bound(1), Some(0.5));
        assert_eq!(spec.upper_bound(1), Some(1.0));
        assert_eq!(spec.lower_bound(5), Some(8.0));
        assert_eq!(spec.upper_bound(5), None);
    }

    #[test]
    fn record_and_merge_agree() {
        let spec = BucketSpec::log_spaced(1.0, 2.0, 8);
        let values = [0.3, 1.0, 2.5, 2.5, 77.0, 1e9];
        let mut whole = HistogramDelta::new(spec);
        for v in values {
            whole.record(v);
        }
        let mut left = HistogramDelta::new(spec);
        let mut right = HistogramDelta::new(spec);
        for v in &values[..3] {
            left.record(*v);
        }
        for v in &values[3..] {
            right.record(*v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    #[should_panic(expected = "different bucket specs")]
    fn mismatched_specs_refuse_to_merge() {
        let mut a = HistogramDelta::new(BucketSpec::log_spaced(1.0, 2.0, 4));
        let b = HistogramDelta::new(BucketSpec::log_spaced(2.0, 2.0, 4));
        a.merge(&b);
    }
}
