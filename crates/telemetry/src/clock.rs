//! The monotonic logical clock telemetry samples are stamped with.

/// A logical timestamp: the simulation tick plus a per-tick sequence
/// number.
///
/// Stamps are totally ordered (`tick` first, then `seq`) and are a pure
/// function of *what* was recorded in *which order* — never of wall time
/// or scheduling — so a recorded trace replays bit-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stamp {
    /// The simulation tick the sample belongs to.
    pub tick: u64,
    /// Position of the sample within its tick (0, 1, 2, …).
    pub seq: u32,
}

/// A monotonic tick clock: advanced once per simulation tick, handing out
/// consecutive [`Stamp`]s within it.
///
/// # Examples
///
/// ```
/// use mobigrid_telemetry::TickClock;
///
/// let mut clock = TickClock::new();
/// clock.start_tick(7);
/// let a = clock.stamp();
/// let b = clock.stamp();
/// assert_eq!((a.tick, a.seq), (7, 0));
/// assert_eq!((b.tick, b.seq), (7, 1));
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickClock {
    tick: u64,
    seq: u32,
}

impl TickClock {
    /// A clock at tick 0, sequence 0.
    #[must_use]
    pub fn new() -> Self {
        TickClock::default()
    }

    /// Enters `tick`, resetting the per-tick sequence counter.
    pub fn start_tick(&mut self, tick: u64) {
        self.tick = tick;
        self.seq = 0;
    }

    /// The current tick.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Issues the next stamp within the current tick.
    pub fn stamp(&mut self) -> Stamp {
        let s = Stamp {
            tick: self.tick,
            seq: self.seq,
        };
        self.seq = self.seq.wrapping_add(1);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone_within_and_across_ticks() {
        let mut c = TickClock::new();
        c.start_tick(1);
        let a = c.stamp();
        let b = c.stamp();
        c.start_tick(2);
        let d = c.stamp();
        assert!(a < b && b < d);
        assert_eq!(d.seq, 0);
    }
}
