//! Property tests for the telemetry merge algebra.
//!
//! The pipeline merges per-shard telemetry partials in shard order with
//! the same algebra as `BrokerDelta`; these properties pin that the
//! algebra is *exactly* associative and commutative, so any shard split
//! (and any grouping of merges) produces identical bits.

use mobigrid_telemetry::{BucketSpec, HistogramDelta, MemoryRecorder, Recorder};
use proptest::prelude::*;

fn spec() -> BucketSpec {
    BucketSpec::log_spaced(0.125, 2.0, 18)
}

fn delta_from(values: &[f64]) -> HistogramDelta {
    let mut d = HistogramDelta::new(spec());
    for &v in values {
        d.record(v);
    }
    d
}

proptest! {
    /// Recording a value stream in one delta equals splitting the stream
    /// at any point into per-shard deltas and merging those — the exact
    /// shard-split invariance the pipeline relies on.
    #[test]
    fn histogram_merge_is_shard_split_invariant(
        values in prop::collection::vec(0.0f64..1e7, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let whole = delta_from(&values);
        let mut left = delta_from(&values[..split]);
        let right = delta_from(&values[split..]);
        left.merge(&right);
        prop_assert_eq!(left, whole);
    }

    /// Merge grouping never matters: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0.0f64..1e7, 0..60),
        b in prop::collection::vec(0.0f64..1e7, 0..60),
        c in prop::collection::vec(0.0f64..1e7, 0..60),
    ) {
        let (da, db, dc) = (delta_from(&a), delta_from(&b), delta_from(&c));
        let mut left = da;
        left.merge(&db);
        left.merge(&dc);
        let mut bc = db;
        bc.merge(&dc);
        let mut right = da;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merge order never matters: a ⊕ b == b ⊕ a.
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0.0f64..1e7, 0..60),
        b in prop::collection::vec(0.0f64..1e7, 0..60),
    ) {
        let (da, db) = (delta_from(&a), delta_from(&b));
        let mut ab = da;
        ab.merge(&db);
        let mut ba = db;
        ba.merge(&da);
        prop_assert_eq!(ab, ba);
    }

    /// Counter totals are split-invariant through the recorder's
    /// fork/absorb path: incrementing in one recorder equals splitting the
    /// increments across forked children absorbed back in order.
    #[test]
    fn counter_fork_absorb_is_shard_split_invariant(
        deltas in prop::collection::vec(0u64..1000, 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(deltas.len());
        let mut whole = MemoryRecorder::new();
        for &d in &deltas {
            whole.counter_add("c", d);
        }
        let mut parent = MemoryRecorder::new();
        let mut left = parent.fork();
        for &d in &deltas[..split] {
            left.counter_add("c", d);
        }
        let mut right = parent.fork();
        for &d in &deltas[split..] {
            right.counter_add("c", d);
        }
        parent.absorb(left);
        parent.absorb(right);
        prop_assert_eq!(parent.counter("c"), whole.counter("c"));
    }
}
