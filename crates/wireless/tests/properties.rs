//! Property-based tests for the wireless access substrate.

use mobigrid_geo::Point;
use mobigrid_wireless::{
    AccessNetwork, Battery, EnergyModel, FaultChannel, FaultPlan, Gateway, GatewayKind, LinkEvent,
    LocationUpdate, MnId,
};
use proptest::prelude::*;

fn grid_network(cells: u32, range: f64) -> AccessNetwork {
    let gateways = (0..cells)
        .map(|i| {
            Gateway::new(
                i,
                GatewayKind::BaseStation,
                Point::new(f64::from(i) * 100.0, 0.0),
                range,
            )
        })
        .collect();
    AccessNetwork::new(gateways)
}

proptest! {
    #[test]
    fn lu_wire_format_round_trips(
        node in any::<u32>(),
        seq in any::<u32>(),
        t in -1.0e6..1.0e6f64,
        x in -1.0e6..1.0e6f64,
        y in -1.0e6..1.0e6f64,
    ) {
        let lu = LocationUpdate::new(MnId::new(node), t, Point::new(x, y), seq);
        let wire = lu.encode();
        prop_assert_eq!(wire.len(), LocationUpdate::WIRE_SIZE);
        prop_assert_eq!(LocationUpdate::decode(&wire).unwrap(), lu);
    }

    #[test]
    fn association_always_picks_a_covering_gateway(
        x in 0.0..400.0f64,
        y in -50.0..50.0f64,
    ) {
        let net = grid_network(5, 120.0);
        let p = Point::new(x, y);
        let best = net.best_gateway(p);
        // Coverage is contiguous with this spacing, so a gateway exists…
        let gw = best.expect("grid covers the strip");
        // …it covers the point…
        prop_assert!(gw.covers(p));
        // …and no other gateway is strictly nearer.
        for other in net.gateways() {
            if other.covers(p) {
                prop_assert!(gw.distance_to(p) <= other.distance_to(p) + 1e-9);
            }
        }
    }

    #[test]
    fn traffic_meter_counts_every_successful_transmit(
        xs in prop::collection::vec(0.0..400.0f64, 1..50),
    ) {
        let mut net = grid_network(5, 120.0);
        let mut expected = 0u64;
        for (i, x) in xs.iter().enumerate() {
            let lu = LocationUpdate::new(MnId::new(0), i as f64, Point::new(*x, 0.0), i as u32);
            if net.transmit(&lu).is_ok() {
                expected += 1;
            }
        }
        prop_assert_eq!(net.meter().messages(), expected);
        prop_assert_eq!(net.meter().bytes(), expected * LocationUpdate::WIRE_SIZE as u64);
        prop_assert_eq!(net.dropped() + expected, xs.len() as u64);
    }

    #[test]
    fn battery_never_goes_negative_and_counts_frames(
        capacity in 0.0..10.0f64,
        frames in 1usize..200,
    ) {
        let model = EnergyModel::default();
        let mut battery = Battery::new(capacity, model);
        let mut sent = 0u64;
        for _ in 0..frames {
            if battery.transmit(LocationUpdate::WIRE_SIZE) {
                sent += 1;
            }
        }
        prop_assert!(battery.remaining_j() >= 0.0);
        prop_assert_eq!(battery.frames_sent(), sent);
        let cost = model.frame_cost_j(LocationUpdate::WIRE_SIZE);
        prop_assert!((battery.consumed_j() - sent as f64 * cost).abs() < 1e-9);
    }

    #[test]
    fn lossless_channel_delivers_everything_in_order(
        seed in any::<u64>(),
        sends in prop::collection::vec((0u32..8, 0.0..400.0f64), 1..60),
    ) {
        // Drop rate 0.0 (and every other rate 0.0): the channel is the
        // identity — every frame is delivered immediately, exactly once,
        // in submission order.
        let mut net = grid_network(5, 250.0);
        let mut ch = FaultChannel::new(FaultPlan::lossless(), seed).unwrap();
        let mut delivered = Vec::new();
        for (tick, (node, x)) in sends.iter().enumerate() {
            let lu = LocationUpdate::new(
                MnId::new(*node),
                tick as f64,
                Point::new(*x, 0.0),
                tick as u32,
            );
            match ch.transmit(&mut net, &lu, 0, tick as u64) {
                LinkEvent::Delivered { duplicate, .. } => {
                    prop_assert!(!duplicate);
                    delivered.push(lu);
                }
                LinkEvent::Dropped { .. } => {} // out of coverage only
                LinkEvent::Deferred { .. } => {
                    prop_assert!(false, "lossless channel must never defer");
                }
            }
        }
        prop_assert_eq!(ch.in_flight(), 0);
        prop_assert_eq!(ch.stats().delivered, delivered.len() as u64);
        prop_assert_eq!(ch.stats().dropped + ch.stats().corrupted
            + ch.stats().delayed + ch.stats().duplicated, 0);
        // Delivery order is submission order (times strictly increase).
        for pair in delivered.windows(2) {
            prop_assert!(pair[0].time_s < pair[1].time_s);
        }
    }

    #[test]
    fn full_loss_channel_delivers_nothing(
        seed in any::<u64>(),
        sends in prop::collection::vec(0.0..400.0f64, 1..60),
    ) {
        let plan = FaultPlan { drop_rate: 1.0, ..FaultPlan::lossless() };
        let mut net = grid_network(5, 250.0);
        let mut ch = FaultChannel::new(plan, seed).unwrap();
        for (tick, x) in sends.iter().enumerate() {
            let lu = LocationUpdate::new(MnId::new(0), tick as f64, Point::new(*x, 0.0), tick as u32);
            let event = ch.transmit(&mut net, &lu, 0, tick as u64);
            prop_assert!(matches!(event, LinkEvent::Dropped { .. }));
        }
        prop_assert_eq!(ch.stats().delivered, 0);
        prop_assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn duplication_never_invents_bytes(
        seed in any::<u64>(),
        node in any::<u32>(),
        seq in any::<u32>(),
        t in -1.0e6..1.0e6f64,
        x in 0.0..400.0f64,
    ) {
        // A duplicated delivery is a byte-for-byte copy: re-encoding the
        // delivered update reproduces the original frame exactly, so the
        // duplicate carries no bytes the sender didn't transmit.
        let plan = FaultPlan { duplicate_rate: 1.0, ..FaultPlan::lossless() };
        let mut net = grid_network(5, 250.0);
        let mut ch = FaultChannel::new(plan, seed).unwrap();
        let lu = LocationUpdate::new(MnId::new(node), t, Point::new(x, 0.0), seq);
        match ch.transmit(&mut net, &lu, 0, 0) {
            LinkEvent::Delivered { duplicate, .. } => {
                prop_assert!(duplicate);
                // Both copies decode back to the transmitted update.
                let frame = lu.encode_to_array();
                let copy = LocationUpdate::decode_from(&frame).unwrap();
                prop_assert_eq!(copy, lu);
                prop_assert_eq!(copy.encode_to_array(), frame);
                prop_assert_eq!(ch.stats().delivered, 2);
                prop_assert_eq!(ch.stats().duplicated, 1);
            }
            other => prop_assert!(false, "expected duplicated delivery, got {:?}", other),
        }
    }

    #[test]
    fn checksum_catches_every_single_byte_flip(
        node in any::<u32>(),
        seq in any::<u32>(),
        t in -1.0e6..1.0e6f64,
        x in -1.0e6..1.0e6f64,
        y in -1.0e6..1.0e6f64,
        index in 0usize..LocationUpdate::WIRE_SIZE,
        flip in 1u8..=255,
    ) {
        let lu = LocationUpdate::new(MnId::new(node), t, Point::new(x, y), seq);
        let mut frame = lu.encode_to_array();
        frame[index] ^= flip;
        prop_assert!(
            LocationUpdate::decode_from(&frame).is_err(),
            "flip {flip:#04x} at byte {index} must not decode"
        );
    }

    #[test]
    fn handoffs_never_exceed_transmissions(
        xs in prop::collection::vec(0.0..400.0f64, 1..80),
    ) {
        let mut net = grid_network(5, 250.0);
        let mut ok = 0u64;
        for (i, x) in xs.iter().enumerate() {
            let lu = LocationUpdate::new(MnId::new(1), i as f64, Point::new(*x, 0.0), i as u32);
            if net.transmit(&lu).is_ok() {
                ok += 1;
            }
        }
        prop_assert!(net.handoffs() <= ok.saturating_sub(1));
    }
}
