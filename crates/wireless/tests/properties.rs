//! Property-based tests for the wireless access substrate.

use mobigrid_geo::Point;
use mobigrid_wireless::{
    AccessNetwork, Battery, EnergyModel, Gateway, GatewayKind, LocationUpdate, MnId,
};
use proptest::prelude::*;

fn grid_network(cells: u32, range: f64) -> AccessNetwork {
    let gateways = (0..cells)
        .map(|i| {
            Gateway::new(
                i,
                GatewayKind::BaseStation,
                Point::new(f64::from(i) * 100.0, 0.0),
                range,
            )
        })
        .collect();
    AccessNetwork::new(gateways)
}

proptest! {
    #[test]
    fn lu_wire_format_round_trips(
        node in any::<u32>(),
        seq in any::<u32>(),
        t in -1.0e6..1.0e6f64,
        x in -1.0e6..1.0e6f64,
        y in -1.0e6..1.0e6f64,
    ) {
        let lu = LocationUpdate::new(MnId::new(node), t, Point::new(x, y), seq);
        let wire = lu.encode();
        prop_assert_eq!(wire.len(), LocationUpdate::WIRE_SIZE);
        prop_assert_eq!(LocationUpdate::decode(&wire).unwrap(), lu);
    }

    #[test]
    fn association_always_picks_a_covering_gateway(
        x in 0.0..400.0f64,
        y in -50.0..50.0f64,
    ) {
        let net = grid_network(5, 120.0);
        let p = Point::new(x, y);
        let best = net.best_gateway(p);
        // Coverage is contiguous with this spacing, so a gateway exists…
        let gw = best.expect("grid covers the strip");
        // …it covers the point…
        prop_assert!(gw.covers(p));
        // …and no other gateway is strictly nearer.
        for other in net.gateways() {
            if other.covers(p) {
                prop_assert!(gw.distance_to(p) <= other.distance_to(p) + 1e-9);
            }
        }
    }

    #[test]
    fn traffic_meter_counts_every_successful_transmit(
        xs in prop::collection::vec(0.0..400.0f64, 1..50),
    ) {
        let mut net = grid_network(5, 120.0);
        let mut expected = 0u64;
        for (i, x) in xs.iter().enumerate() {
            let lu = LocationUpdate::new(MnId::new(0), i as f64, Point::new(*x, 0.0), i as u32);
            if net.transmit(&lu).is_ok() {
                expected += 1;
            }
        }
        prop_assert_eq!(net.meter().messages(), expected);
        prop_assert_eq!(net.meter().bytes(), expected * LocationUpdate::WIRE_SIZE as u64);
        prop_assert_eq!(net.dropped() + expected, xs.len() as u64);
    }

    #[test]
    fn battery_never_goes_negative_and_counts_frames(
        capacity in 0.0..10.0f64,
        frames in 1usize..200,
    ) {
        let model = EnergyModel::default();
        let mut battery = Battery::new(capacity, model);
        let mut sent = 0u64;
        for _ in 0..frames {
            if battery.transmit(LocationUpdate::WIRE_SIZE) {
                sent += 1;
            }
        }
        prop_assert!(battery.remaining_j() >= 0.0);
        prop_assert_eq!(battery.frames_sent(), sent);
        let cost = model.frame_cost_j(LocationUpdate::WIRE_SIZE);
        prop_assert!((battery.consumed_j() - sent as f64 * cost).abs() < 1e-9);
    }

    #[test]
    fn handoffs_never_exceed_transmissions(
        xs in prop::collection::vec(0.0..400.0f64, 1..80),
    ) {
        let mut net = grid_network(5, 250.0);
        let mut ok = 0u64;
        for (i, x) in xs.iter().enumerate() {
            let lu = LocationUpdate::new(MnId::new(1), i as f64, Point::new(*x, 0.0), i as u32);
            if net.transmit(&lu).is_ok() {
                ok += 1;
            }
        }
        prop_assert!(net.handoffs() <= ok.saturating_sub(1));
    }
}
