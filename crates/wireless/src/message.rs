use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use mobigrid_geo::Point;

use crate::WirelessError;

/// Identity of a mobile node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MnId(u32);

impl MnId {
    /// Creates an id from its raw value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        MnId(raw)
    }

    /// The raw numeric id.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a dense array index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mn#{}", self.0)
    }
}

impl From<u32> for MnId {
    fn from(raw: u32) -> Self {
        MnId(raw)
    }
}

/// A location update (LU): the message a mobile node sends to report where
/// it is.
///
/// The entire evaluation of the paper is about how many of these can be
/// *not* sent. Each LU has a fixed 32-byte wire encoding
/// ([`LocationUpdate::WIRE_SIZE`]) so the traffic meters can report bytes as
/// well as message counts.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::{LocationUpdate, MnId};
/// use mobigrid_geo::Point;
///
/// let lu = LocationUpdate::new(MnId::new(3), 12.0, Point::new(1.5, -2.5), 41);
/// let wire = lu.encode();
/// assert_eq!(wire.len(), LocationUpdate::WIRE_SIZE);
/// assert_eq!(LocationUpdate::decode(&wire).unwrap(), lu);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationUpdate {
    /// The reporting node.
    pub node: MnId,
    /// Simulation time of the report, in seconds.
    pub time_s: f64,
    /// Reported position.
    pub position: Point,
    /// Per-node sequence number (wraps at `u32::MAX`).
    pub seq: u32,
}

impl LocationUpdate {
    /// Size of the wire encoding in bytes: node(4) + seq(4) + time(8) +
    /// x(8) + y(8).
    pub const WIRE_SIZE: usize = 32;

    /// Creates a location update.
    #[must_use]
    pub const fn new(node: MnId, time_s: f64, position: Point, seq: u32) -> Self {
        LocationUpdate {
            node,
            time_s,
            position,
            seq,
        }
    }

    /// Serialises to the fixed 32-byte big-endian wire format.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::WIRE_SIZE);
        buf.put_u32(self.node.raw());
        buf.put_u32(self.seq);
        buf.put_f64(self.time_s);
        buf.put_f64(self.position.x);
        buf.put_f64(self.position.y);
        buf.freeze()
    }

    /// Parses a frame produced by [`LocationUpdate::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::MalformedFrame`] for frames shorter than
    /// [`LocationUpdate::WIRE_SIZE`].
    pub fn decode(mut frame: &[u8]) -> Result<Self, WirelessError> {
        if frame.len() < Self::WIRE_SIZE {
            return Err(WirelessError::MalformedFrame {
                got: frame.len(),
                needed: Self::WIRE_SIZE,
            });
        }
        let node = MnId::new(frame.get_u32());
        let seq = frame.get_u32();
        let time_s = frame.get_f64();
        let x = frame.get_f64();
        let y = frame.get_f64();
        Ok(LocationUpdate {
            node,
            time_s,
            position: Point::new(x, y),
            seq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let lu = LocationUpdate::new(MnId::new(42), 3.25, Point::new(-7.5, 1e6), 9);
        let wire = lu.encode();
        assert_eq!(wire.len(), LocationUpdate::WIRE_SIZE);
        assert_eq!(LocationUpdate::decode(&wire).unwrap(), lu);
    }

    #[test]
    fn decode_rejects_short_frames() {
        let err = LocationUpdate::decode(&[0u8; 10]).unwrap_err();
        assert_eq!(
            err,
            WirelessError::MalformedFrame {
                got: 10,
                needed: 32
            }
        );
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let lu = LocationUpdate::new(MnId::new(1), 1.0, Point::new(2.0, 3.0), 4);
        let mut wire = lu.encode().to_vec();
        wire.extend_from_slice(&[0xFF; 8]);
        assert_eq!(LocationUpdate::decode(&wire).unwrap(), lu);
    }

    #[test]
    fn mn_id_accessors() {
        let id = MnId::new(17);
        assert_eq!(id.raw(), 17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "mn#17");
        assert_eq!(MnId::from(17u32), id);
    }
}
