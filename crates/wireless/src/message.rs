use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use mobigrid_geo::Point;

use crate::WirelessError;

/// Identity of a mobile node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MnId(u32);

impl MnId {
    /// Creates an id from its raw value.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        MnId(raw)
    }

    /// The raw numeric id.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a dense array index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mn#{}", self.0)
    }
}

impl From<u32> for MnId {
    fn from(raw: u32) -> Self {
        MnId(raw)
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, generated at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE over `data` — the checksum protecting the LU wire frame.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// A location update (LU): the message a mobile node sends to report where
/// it is.
///
/// The entire evaluation of the paper is about how many of these can be
/// *not* sent. Each LU has a fixed 36-byte wire encoding
/// ([`LocationUpdate::WIRE_SIZE`]) — a 32-byte payload plus a CRC-32
/// trailer — so the traffic meters can report bytes as well as message
/// counts, and receivers can detect frames corrupted in flight.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::{LocationUpdate, MnId};
/// use mobigrid_geo::Point;
///
/// let lu = LocationUpdate::new(MnId::new(3), 12.0, Point::new(1.5, -2.5), 41);
/// let wire = lu.encode();
/// assert_eq!(wire.len(), LocationUpdate::WIRE_SIZE);
/// assert_eq!(LocationUpdate::decode(&wire).unwrap(), lu);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationUpdate {
    /// The reporting node.
    pub node: MnId,
    /// Simulation time of the report, in seconds.
    pub time_s: f64,
    /// Reported position.
    pub position: Point,
    /// Per-node sequence number (wraps at `u32::MAX`).
    pub seq: u32,
}

impl LocationUpdate {
    /// Size of the wire encoding in bytes: node(4) + seq(4) + time(8) +
    /// x(8) + y(8) + crc32(4).
    pub const WIRE_SIZE: usize = 36;

    /// Size of the checksummed payload (everything before the CRC trailer).
    pub const PAYLOAD_SIZE: usize = 32;

    /// Creates a location update.
    #[must_use]
    pub const fn new(node: MnId, time_s: f64, position: Point, seq: u32) -> Self {
        LocationUpdate {
            node,
            time_s,
            position,
            seq,
        }
    }

    /// Serialises to the fixed 36-byte big-endian wire format in a freshly
    /// allocated buffer. Hot paths should prefer
    /// [`LocationUpdate::encode_into`], which writes into caller-provided
    /// (typically stack) storage.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::WIRE_SIZE);
        buf.put_slice(&self.encode_to_array());
        buf.freeze()
    }

    /// Serialises into a caller-provided frame buffer — no heap traffic.
    /// The trailer bytes carry the CRC-32 of the 32-byte payload.
    pub fn encode_into(&self, frame: &mut [u8; Self::WIRE_SIZE]) {
        frame[0..4].copy_from_slice(&self.node.raw().to_be_bytes());
        frame[4..8].copy_from_slice(&self.seq.to_be_bytes());
        frame[8..16].copy_from_slice(&self.time_s.to_be_bytes());
        frame[16..24].copy_from_slice(&self.position.x.to_be_bytes());
        frame[24..32].copy_from_slice(&self.position.y.to_be_bytes());
        let crc = crc32(&frame[..Self::PAYLOAD_SIZE]);
        frame[32..36].copy_from_slice(&crc.to_be_bytes());
    }

    /// Serialises to a stack-allocated wire frame.
    #[must_use]
    pub fn encode_to_array(&self) -> [u8; Self::WIRE_SIZE] {
        let mut frame = [0u8; Self::WIRE_SIZE];
        self.encode_into(&mut frame);
        frame
    }

    /// Parses a frame produced by [`LocationUpdate::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::MalformedFrame`] for frames shorter than
    /// [`LocationUpdate::WIRE_SIZE`] and [`WirelessError::ChecksumMismatch`]
    /// when the CRC trailer does not match the payload.
    pub fn decode(frame: &[u8]) -> Result<Self, WirelessError> {
        Self::decode_from(frame)
    }

    /// Zero-copy parse of a borrowed wire frame: reads the fields straight
    /// out of the slice without an owned intermediate buffer. Trailing
    /// bytes beyond [`LocationUpdate::WIRE_SIZE`] are ignored.
    ///
    /// The payload CRC is verified before any field is interpreted, so a
    /// frame corrupted in flight is rejected rather than decoded into a
    /// plausible-looking bogus update.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::MalformedFrame`] for frames shorter than
    /// [`LocationUpdate::WIRE_SIZE`] and [`WirelessError::ChecksumMismatch`]
    /// when the CRC trailer does not match the payload.
    pub fn decode_from(frame: &[u8]) -> Result<Self, WirelessError> {
        if frame.len() < Self::WIRE_SIZE {
            return Err(WirelessError::MalformedFrame {
                got: frame.len(),
                needed: Self::WIRE_SIZE,
            });
        }
        let be_u32 = |r: std::ops::Range<usize>| {
            u32::from_be_bytes(frame[r].try_into().expect("4-byte field"))
        };
        let be_f64 = |r: std::ops::Range<usize>| {
            f64::from_be_bytes(frame[r].try_into().expect("8-byte field"))
        };
        let stored = be_u32(32..36);
        let computed = crc32(&frame[..Self::PAYLOAD_SIZE]);
        if stored != computed {
            return Err(WirelessError::ChecksumMismatch { stored, computed });
        }
        Ok(LocationUpdate {
            node: MnId::new(be_u32(0..4)),
            seq: be_u32(4..8),
            time_s: be_f64(8..16),
            position: Point::new(be_f64(16..24), be_f64(24..32)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        let lu = LocationUpdate::new(MnId::new(42), 3.25, Point::new(-7.5, 1e6), 9);
        let wire = lu.encode();
        assert_eq!(wire.len(), LocationUpdate::WIRE_SIZE);
        assert_eq!(LocationUpdate::decode(&wire).unwrap(), lu);
    }

    #[test]
    fn decode_rejects_short_frames() {
        let err = LocationUpdate::decode(&[0u8; 10]).unwrap_err();
        assert_eq!(
            err,
            WirelessError::MalformedFrame {
                got: 10,
                needed: 36
            }
        );
    }

    #[test]
    fn decode_rejects_corrupted_frames() {
        let lu = LocationUpdate::new(MnId::new(8), 2.5, Point::new(10.0, -4.0), 3);
        let mut frame = lu.encode_to_array();
        frame[17] ^= 0x40; // flip one payload bit
        assert!(matches!(
            LocationUpdate::decode_from(&frame).unwrap_err(),
            WirelessError::ChecksumMismatch { .. }
        ));
        // A damaged trailer is caught too.
        let mut frame = lu.encode_to_array();
        frame[35] ^= 0x01;
        assert!(matches!(
            LocationUpdate::decode_from(&frame).unwrap_err(),
            WirelessError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn crc_matches_the_ieee_reference_vector() {
        // CRC-32/IEEE of "123456789" is the classic check value 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        // Zero-copy path: encode into a stack frame with trailing garbage,
        // decode straight from the borrowed slice — no owned round-trip.
        let lu = LocationUpdate::new(MnId::new(1), 1.0, Point::new(2.0, 3.0), 4);
        let mut wire = [0xFFu8; LocationUpdate::WIRE_SIZE + 8];
        lu.encode_into(
            (&mut wire[..LocationUpdate::WIRE_SIZE])
                .try_into()
                .expect("frame-sized prefix"),
        );
        assert_eq!(LocationUpdate::decode_from(&wire).unwrap(), lu);
    }

    #[test]
    fn stack_and_heap_encodings_agree() {
        let lu = LocationUpdate::new(MnId::new(77), 123.5, Point::new(-1.25, 9e3), 6);
        assert_eq!(lu.encode_to_array().as_slice(), lu.encode().as_ref());
        assert_eq!(
            LocationUpdate::decode_from(&lu.encode_to_array()).unwrap(),
            LocationUpdate::decode(&lu.encode()).unwrap()
        );
        // Short frames fail identically through both entry points.
        assert_eq!(
            LocationUpdate::decode_from(&[0u8; 35]).unwrap_err(),
            LocationUpdate::decode(&[0u8; 35]).unwrap_err()
        );
    }

    #[test]
    fn mn_id_accessors() {
        let id = MnId::new(17);
        assert_eq!(id.raw(), 17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "mn#17");
        assert_eq!(MnId::from(17u32), id);
    }
}
