//! Deterministic fault injection for the wireless channel.
//!
//! The paper lists "frequent disconnectivity" and constrained wireless
//! links among the mobile grid's defining properties, yet outside
//! scheduled gateway outages the [`AccessNetwork`] is lossless: every
//! transmitted LU arrives intact, in order, exactly once. This module adds
//! the lossy regime — probabilistic drop, byte corruption, bounded
//! delay/reordering, duplication and gateway flapping — without giving up
//! the workspace's determinism contract.
//!
//! # RNG stream isolation
//!
//! Fault fates are **not** drawn from a shared sequential RNG: that would
//! make them depend on transmission order and therefore on scheduling.
//! Instead every fate is a pure function of
//! `(channel seed, node, sequence number, attempt, salt)`, hashed through
//! a SplitMix64-style finaliser. Two runs with the same seed and the same
//! [`FaultPlan`] see bit-identical fault sequences at any `--threads` or
//! `--campaign-threads` setting, and an unrelated subsystem drawing more
//! or fewer random numbers can never perturb the channel.
//!
//! # Examples
//!
//! ```
//! use mobigrid_wireless::{
//!     AccessNetwork, FaultChannel, FaultPlan, Gateway, GatewayKind, LinkEvent,
//!     LocationUpdate, MnId,
//! };
//! use mobigrid_geo::Point;
//!
//! let mut net = AccessNetwork::new(vec![
//!     Gateway::new(0, GatewayKind::BaseStation, Point::new(0.0, 0.0), 500.0),
//! ]);
//! let plan = FaultPlan { drop_rate: 1.0, ..FaultPlan::lossless() };
//! let mut ch = FaultChannel::new(plan, 7).unwrap();
//! let lu = LocationUpdate::new(MnId::new(1), 0.0, Point::new(10.0, 0.0), 0);
//! // The frame reaches the air (and the meters) but never the broker.
//! assert!(matches!(ch.transmit(&mut net, &lu, 0, 0), LinkEvent::Dropped { .. }));
//! assert_eq!(net.meter().messages(), 1);
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{AccessNetwork, GatewayId, LocationUpdate, OutageSchedule, WirelessError};

/// SplitMix64 finaliser: a high-quality 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-event noise: a pure hash of the event coordinates.
///
/// Because the value depends only on `(seed, node, seq, attempt, salt)` —
/// never on when or on which thread the event is evaluated — fault fates
/// and retry jitter replay bit-identically under any parallel schedule.
#[must_use]
pub fn event_noise(seed: u64, node: u32, seq: u32, attempt: u32, salt: u64) -> u64 {
    let event = (u64::from(node) << 32) | u64::from(seq);
    mix(mix(mix(seed ^ salt) ^ event) ^ u64::from(attempt))
}

/// Maps noise onto a uniform float in `[0, 1)`.
fn unit_f64(noise: u64) -> f64 {
    (noise >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Salt namespaces, one per independent decision drawn for an event.
const SALT_DROP: u64 = 0xD0;
const SALT_CORRUPT: u64 = 0xC0;
const SALT_CORRUPT_BYTE: u64 = 0xC1;
const SALT_DELAY: u64 = 0xDE;
const SALT_DELAY_TICKS: u64 = 0xDF;
const SALT_DUPLICATE: u64 = 0xD7;
/// Salt for retry backoff jitter — shared with the sender-side policy.
pub const SALT_RETRY_JITTER: u64 = 0x4A;

/// A periodic up/down cycle for one gateway ("flapping").
///
/// Compiled into concrete [`OutageSchedule`] windows with
/// [`FaultPlan::flap_outages`]; routing then treats the gateway exactly
/// like one with scheduled maintenance, rerouting to other covering
/// gateways where possible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlapSpec {
    /// The flapping gateway.
    pub gateway: GatewayId,
    /// Full cycle length in seconds (up time + down time).
    pub period_s: f64,
    /// Downtime at the start of each cycle, in seconds.
    pub down_s: f64,
    /// Phase offset of the first downtime, in seconds.
    pub offset_s: f64,
}

impl FlapSpec {
    fn validate(&self) -> Result<(), WirelessError> {
        if !(self.period_s.is_finite() && self.down_s.is_finite() && self.offset_s.is_finite()) {
            return Err(WirelessError::InvalidFaultParameter {
                reason: "flap timings must be finite",
            });
        }
        if self.period_s <= 0.0 || self.down_s <= 0.0 || self.offset_s < 0.0 {
            return Err(WirelessError::InvalidFaultParameter {
                reason: "flap period and downtime must be positive, offset non-negative",
            });
        }
        if self.down_s >= self.period_s {
            return Err(WirelessError::InvalidFaultParameter {
                reason: "flap downtime must be shorter than its period",
            });
        }
        Ok(())
    }
}

/// A declarative description of how the channel misbehaves.
///
/// All probabilities are per-transmission and independent; fates are
/// checked in a fixed order (drop, corrupt, delay, duplicate), so e.g. a
/// dropped frame is never also delayed. [`FaultPlan::lossless`] is the
/// identity plan: a channel built from it delivers every frame exactly
/// once, immediately, intact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a transmitted frame is silently lost.
    pub drop_rate: f64,
    /// Probability a transmitted frame has one byte corrupted in flight
    /// (the receiver's CRC check then rejects it).
    pub corrupt_rate: f64,
    /// Probability a frame is deferred by 1..=[`FaultPlan::max_delay_ticks`]
    /// ticks, arriving late and possibly reordered.
    pub delay_rate: f64,
    /// Upper bound on the deferral, in ticks (must be ≥ 1 when
    /// [`FaultPlan::delay_rate`] is positive).
    pub max_delay_ticks: u64,
    /// Probability a delivered frame arrives twice.
    pub duplicate_rate: f64,
    /// Gateways that periodically flap down and up.
    pub flaps: Vec<FlapSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::lossless()
    }
}

impl FaultPlan {
    /// The identity plan: no faults of any kind.
    #[must_use]
    pub fn lossless() -> Self {
        FaultPlan {
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            delay_rate: 0.0,
            max_delay_ticks: 0,
            duplicate_rate: 0.0,
            flaps: Vec::new(),
        }
    }

    /// Validates every rate and flap spec.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidFaultRate`] for a probability
    /// outside `[0, 1]` and [`WirelessError::InvalidFaultParameter`] for a
    /// structurally invalid delay bound or flap spec.
    pub fn validate(&self) -> Result<(), WirelessError> {
        for (name, value) in [
            ("drop_rate", self.drop_rate),
            ("corrupt_rate", self.corrupt_rate),
            ("delay_rate", self.delay_rate),
            ("duplicate_rate", self.duplicate_rate),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(WirelessError::InvalidFaultRate { name, value });
            }
        }
        if self.delay_rate > 0.0 && self.max_delay_ticks == 0 {
            return Err(WirelessError::InvalidFaultParameter {
                reason: "max_delay_ticks must be >= 1 when delay_rate > 0",
            });
        }
        for flap in &self.flaps {
            flap.validate()?;
        }
        Ok(())
    }

    /// Whether the plan injects any fault at all.
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.drop_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.delay_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.flaps.is_empty()
    }

    /// Compiles the plan's flap specs into concrete outage windows covering
    /// `[0, horizon_s)`, ready to overlay onto an [`AccessNetwork`]'s
    /// schedule with [`OutageSchedule::extend`].
    ///
    /// # Errors
    ///
    /// Returns the flap specs' validation errors, or
    /// [`WirelessError::InvalidFaultParameter`] for a non-finite or
    /// negative horizon.
    pub fn flap_outages(&self, horizon_s: f64) -> Result<OutageSchedule, WirelessError> {
        if !horizon_s.is_finite() || horizon_s < 0.0 {
            return Err(WirelessError::InvalidFaultParameter {
                reason: "flap horizon must be finite and non-negative",
            });
        }
        let mut sched = OutageSchedule::new();
        for flap in &self.flaps {
            flap.validate()?;
            let mut start = flap.offset_s;
            while start < horizon_s {
                sched.add_window(flap.gateway, start, start + flap.down_s)?;
                start += flap.period_s;
            }
        }
        Ok(sched)
    }
}

/// Why the channel dropped a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// No gateway covered the sender — the frame never reached the air.
    NoCoverage,
    /// The frame was lost in flight.
    Fault,
    /// The frame arrived but its checksum failed and the receiver
    /// discarded it.
    Corrupted,
}

/// What happened to one transmitted frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEvent {
    /// The frame reached the broker this tick.
    Delivered {
        /// The carrying gateway.
        gateway: GatewayId,
        /// A duplicate copy arrives alongside the original.
        duplicate: bool,
    },
    /// The frame is in flight and will arrive at `due_tick` (collect it
    /// with [`FaultChannel::drain_due`]).
    Deferred {
        /// The carrying gateway.
        gateway: GatewayId,
        /// Tick at which the frame becomes deliverable.
        due_tick: u64,
    },
    /// The frame was lost.
    Dropped {
        /// Why it was lost.
        cause: DropCause,
    },
}

/// Aggregate counters of everything the channel did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Frames delivered (duplicate copies included).
    pub delivered: u64,
    /// Frames dropped in flight.
    pub dropped: u64,
    /// Frames corrupted in flight and rejected by the receiver's CRC.
    pub corrupted: u64,
    /// Frames deferred to a later tick.
    pub delayed: u64,
    /// Extra duplicate copies delivered.
    pub duplicated: u64,
}

/// A deterministic lossy channel wrapped around an [`AccessNetwork`].
///
/// Each transmission first routes through the network as usual (gateway
/// selection, traffic metering, handoff tracking), then rolls its fault
/// fates from the channel's isolated hash stream. Deferred frames are held
/// in flight, keyed by `(due tick, node, seq)`, and surface through
/// [`FaultChannel::drain_due`] in deterministic key order.
pub struct FaultChannel {
    plan: FaultPlan,
    seed: u64,
    in_flight: BTreeMap<(u64, u32, u32), [u8; LocationUpdate::WIRE_SIZE]>,
    stats: ChannelStats,
}

impl std::fmt::Debug for FaultChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultChannel")
            .field("plan", &self.plan)
            .field("seed", &self.seed)
            .field("in_flight", &self.in_flight.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FaultChannel {
    /// Creates a channel from a validated plan and a dedicated seed.
    ///
    /// # Errors
    ///
    /// Returns the plan's validation error.
    pub fn new(plan: FaultPlan, seed: u64) -> Result<Self, WirelessError> {
        plan.validate()?;
        Ok(FaultChannel {
            plan,
            seed,
            in_flight: BTreeMap::new(),
            stats: ChannelStats::default(),
        })
    }

    /// The channel's plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The channel's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Aggregate fault counters so far.
    #[must_use]
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Frames currently held in flight (deferred, not yet due).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Exports the channel's cumulative fate counters and in-flight depth
    /// as `channel.*` gauges on `rec`. Gauges are last-write-wins, so
    /// calling this once per tick leaves the run's final totals in the
    /// recorder.
    pub fn record_telemetry(&self, rec: &mut dyn mobigrid_telemetry::Recorder) {
        rec.gauge_set("channel.delivered", self.stats.delivered as f64);
        rec.gauge_set("channel.dropped", self.stats.dropped as f64);
        rec.gauge_set("channel.corrupted", self.stats.corrupted as f64);
        rec.gauge_set("channel.delayed", self.stats.delayed as f64);
        rec.gauge_set("channel.duplicated", self.stats.duplicated as f64);
        rec.gauge_set("channel.in_flight", self.in_flight.len() as f64);
    }

    fn roll(&self, lu: &LocationUpdate, attempt: u32, salt: u64) -> u64 {
        event_noise(self.seed, lu.node.raw(), lu.seq, attempt, salt)
    }

    /// A copy of `frame` with one deterministically chosen byte flipped —
    /// what the plan's `corrupt_rate` does to a frame in flight. The flip
    /// is never zero, so the copy always differs from the original in
    /// exactly one byte.
    #[must_use]
    pub fn corrupted_copy(
        &self,
        frame: &[u8; LocationUpdate::WIRE_SIZE],
        lu: &LocationUpdate,
        attempt: u32,
    ) -> [u8; LocationUpdate::WIRE_SIZE] {
        let noise = self.roll(lu, attempt, SALT_CORRUPT_BYTE);
        let index = (noise % LocationUpdate::WIRE_SIZE as u64) as usize;
        let flip = ((noise >> 8) % 255) as u8 + 1;
        let mut out = *frame;
        out[index] ^= flip;
        out
    }

    /// Transmits `lu` through `net` and rolls its fault fates.
    ///
    /// `attempt` is the sender's retransmission count (0 for the first
    /// try): each attempt gets an independent fate, so a retry of a
    /// dropped frame is not doomed to the same outcome. `tick` anchors
    /// deferrals.
    ///
    /// Routing failures ([`WirelessError::NoCoverage`]) surface as
    /// [`LinkEvent::Dropped`] with [`DropCause::NoCoverage`]; the network
    /// meters count every frame that reaches the air, including ones the
    /// channel then loses — airtime is consumed either way.
    pub fn transmit(
        &mut self,
        net: &mut AccessNetwork,
        lu: &LocationUpdate,
        attempt: u32,
        tick: u64,
    ) -> LinkEvent {
        let gateway = match net.transmit(lu) {
            Ok(gw) => gw,
            Err(_) => {
                return LinkEvent::Dropped {
                    cause: DropCause::NoCoverage,
                }
            }
        };
        if unit_f64(self.roll(lu, attempt, SALT_DROP)) < self.plan.drop_rate {
            self.stats.dropped += 1;
            return LinkEvent::Dropped {
                cause: DropCause::Fault,
            };
        }
        let mut frame = [0u8; LocationUpdate::WIRE_SIZE];
        lu.encode_into(&mut frame);
        if unit_f64(self.roll(lu, attempt, SALT_CORRUPT)) < self.plan.corrupt_rate {
            let damaged = self.corrupted_copy(&frame, lu, attempt);
            // The receiver validates the CRC before trusting any field; a
            // single-byte flip is always caught, so the frame is discarded.
            if LocationUpdate::decode_from(&damaged).is_err() {
                self.stats.corrupted += 1;
                return LinkEvent::Dropped {
                    cause: DropCause::Corrupted,
                };
            }
        }
        if unit_f64(self.roll(lu, attempt, SALT_DELAY)) < self.plan.delay_rate {
            let ticks = 1 + self.roll(lu, attempt, SALT_DELAY_TICKS) % self.plan.max_delay_ticks;
            let due_tick = tick + ticks;
            self.in_flight
                .insert((due_tick, lu.node.raw(), lu.seq), frame);
            self.stats.delayed += 1;
            return LinkEvent::Deferred { gateway, due_tick };
        }
        let duplicate =
            unit_f64(self.roll(lu, attempt, SALT_DUPLICATE)) < self.plan.duplicate_rate;
        self.stats.delivered += 1 + u64::from(duplicate);
        self.stats.duplicated += u64::from(duplicate);
        LinkEvent::Delivered { gateway, duplicate }
    }

    /// Removes every in-flight frame due at or before `tick` and appends
    /// the decoded updates to `out`, in `(due tick, node, seq)` order.
    ///
    /// Deferred frames were validated at transmit time, so decoding cannot
    /// fail here. Late arrivals may be stale relative to what the broker
    /// has since received — receiver-side ordering is the broker's job.
    pub fn drain_due(&mut self, tick: u64, out: &mut Vec<LocationUpdate>) {
        while let Some(entry) = self.in_flight.first_entry() {
            if entry.key().0 > tick {
                break;
            }
            let frame = entry.remove();
            let lu = LocationUpdate::decode_from(&frame)
                .expect("deferred frames were validated at transmit");
            self.stats.delivered += 1;
            out.push(lu);
        }
    }
}

/// Bounded retransmission with exponential backoff and deterministic
/// jitter, applied by the sender when a location update fails to deliver.
///
/// After the `n`-th consecutive failure (`n` starting at 1) the sender
/// waits `min(base_backoff_ticks * 2^(n-1), max_backoff_ticks)` ticks plus
/// a jitter of `0..=jitter_ticks` drawn from the same hashed event stream
/// as the channel fates, then retransmits its *current* position with a
/// fresh sequence number. After `max_retries` consecutive failures the
/// update is abandoned and the broker rides on its estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retransmissions per lost update (0 disables retries).
    pub max_retries: u32,
    /// Backoff after the first failure, in ticks (≥ 1).
    pub base_backoff_ticks: u64,
    /// Cap on the exponential backoff, in ticks.
    pub max_backoff_ticks: u64,
    /// Maximum additional jitter, in ticks.
    pub jitter_ticks: u64,
}

impl Default for RetryPolicy {
    /// Three retries, 1-tick base backoff capped at 8 ticks, ±1 tick
    /// jitter.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ticks: 1,
            max_backoff_ticks: 8,
            jitter_ticks: 1,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy's structure.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::InvalidFaultParameter`] when the base
    /// backoff is zero or exceeds the cap.
    pub fn validate(&self) -> Result<(), WirelessError> {
        if self.base_backoff_ticks == 0 {
            return Err(WirelessError::InvalidFaultParameter {
                reason: "base_backoff_ticks must be >= 1",
            });
        }
        if self.max_backoff_ticks < self.base_backoff_ticks {
            return Err(WirelessError::InvalidFaultParameter {
                reason: "max_backoff_ticks must be >= base_backoff_ticks",
            });
        }
        Ok(())
    }

    /// The wait before retry number `attempt` (1-based), in ticks:
    /// capped exponential backoff plus hashed jitter.
    #[must_use]
    pub fn backoff_ticks(&self, attempt: u32, noise: u64) -> u64 {
        debug_assert!(attempt >= 1, "attempt numbering starts at 1");
        let exp = attempt.saturating_sub(1).min(63);
        let backoff = self
            .base_backoff_ticks
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ticks);
        let jitter = if self.jitter_ticks == 0 {
            0
        } else {
            noise % (self.jitter_ticks + 1)
        };
        backoff + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gateway, GatewayKind, MnId};
    use mobigrid_geo::Point;

    fn wide_net() -> AccessNetwork {
        AccessNetwork::new(vec![Gateway::new(
            0,
            GatewayKind::BaseStation,
            Point::new(0.0, 0.0),
            1e6,
        )])
    }

    fn lu(node: u32, seq: u32) -> LocationUpdate {
        LocationUpdate::new(MnId::new(node), f64::from(seq), Point::new(5.0, 5.0), seq)
    }

    #[test]
    fn lossless_channel_is_transparent() {
        let mut net = wide_net();
        let mut ch = FaultChannel::new(FaultPlan::lossless(), 1).unwrap();
        for seq in 0..100 {
            let event = ch.transmit(&mut net, &lu(1, seq), 0, u64::from(seq));
            assert!(matches!(
                event,
                LinkEvent::Delivered {
                    duplicate: false,
                    ..
                }
            ));
        }
        assert_eq!(ch.stats().delivered, 100);
        assert_eq!(ch.stats(), ChannelStats {
            delivered: 100,
            ..ChannelStats::default()
        });
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn fates_are_a_pure_function_of_the_event() {
        let plan = FaultPlan {
            drop_rate: 0.3,
            corrupt_rate: 0.2,
            delay_rate: 0.2,
            max_delay_ticks: 4,
            duplicate_rate: 0.2,
            flaps: Vec::new(),
        };
        let run = |order: &[u32]| -> Vec<LinkEvent> {
            let mut net = wide_net();
            let mut ch = FaultChannel::new(plan.clone(), 99).unwrap();
            order
                .iter()
                .map(|&seq| ch.transmit(&mut net, &lu(seq % 7, seq), 0, 0))
                .collect()
        };
        // Same events in a different submission order: each event's fate
        // is unchanged, because fates ignore transmission order entirely.
        let forward: Vec<u32> = (0..50).collect();
        let backward: Vec<u32> = (0..50).rev().collect();
        let mut a = run(&forward);
        let mut b = run(&backward);
        b.reverse();
        // Deferral due-ticks depend only on the event too (tick was fixed).
        assert_eq!(a.len(), b.len());
        a.iter_mut().zip(b.iter_mut()).for_each(|(x, y)| {
            assert_eq!(x, y);
        });
    }

    #[test]
    fn different_attempts_get_independent_fates() {
        let plan = FaultPlan {
            drop_rate: 0.5,
            ..FaultPlan::lossless()
        };
        let mut net = wide_net();
        let mut ch = FaultChannel::new(plan, 12).unwrap();
        let outcomes: Vec<bool> = (0..64)
            .map(|attempt| {
                matches!(
                    ch.transmit(&mut net, &lu(3, 9), attempt, 0),
                    LinkEvent::Delivered { .. }
                )
            })
            .collect();
        assert!(outcomes.iter().any(|d| *d), "some attempt must survive");
        assert!(outcomes.iter().any(|d| !*d), "some attempt must drop");
    }

    #[test]
    fn deferred_frames_surface_in_due_order() {
        let plan = FaultPlan {
            delay_rate: 1.0,
            max_delay_ticks: 5,
            ..FaultPlan::lossless()
        };
        let mut net = wide_net();
        let mut ch = FaultChannel::new(plan, 5).unwrap();
        let mut dues = Vec::new();
        for seq in 0..20 {
            match ch.transmit(&mut net, &lu(2, seq), 0, 10) {
                LinkEvent::Deferred { due_tick, .. } => dues.push(due_tick),
                other => panic!("expected deferral, got {other:?}"),
            }
        }
        assert_eq!(ch.in_flight(), 20);
        assert!(dues.iter().all(|d| (11..=15).contains(d)));
        let mut out = Vec::new();
        ch.drain_due(12, &mut out);
        let early = out.len();
        assert_eq!(
            early,
            dues.iter().filter(|d| **d <= 12).count(),
            "drain must release exactly the due frames"
        );
        ch.drain_due(15, &mut out);
        assert_eq!(out.len(), 20);
        assert_eq!(ch.in_flight(), 0);
        // Round-trip: every drained update is one we sent.
        for lu_out in &out {
            assert_eq!(lu_out.node, MnId::new(2));
            assert_eq!(lu_out.position, Point::new(5.0, 5.0));
        }
    }

    #[test]
    fn corrupted_copies_differ_in_exactly_one_byte_and_never_decode() {
        let ch = FaultChannel::new(FaultPlan::lossless(), 77).unwrap();
        for seq in 0..200 {
            let update = lu(4, seq);
            let frame = update.encode_to_array();
            let damaged = ch.corrupted_copy(&frame, &update, 0);
            let diff = frame
                .iter()
                .zip(damaged.iter())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1, "seq {seq}: exactly one byte must change");
            assert!(
                LocationUpdate::decode_from(&damaged).is_err(),
                "seq {seq}: corrupted frame must not decode"
            );
        }
    }

    #[test]
    fn flap_outages_tile_the_horizon() {
        let plan = FaultPlan {
            flaps: vec![FlapSpec {
                gateway: GatewayId::new(1),
                period_s: 60.0,
                down_s: 10.0,
                offset_s: 5.0,
            }],
            ..FaultPlan::lossless()
        };
        let sched = plan.flap_outages(180.0).unwrap();
        assert_eq!(sched.window_count(), 3);
        assert!(sched.is_down(GatewayId::new(1), 5.0));
        assert!(sched.is_down(GatewayId::new(1), 70.0));
        assert!(!sched.is_down(GatewayId::new(1), 20.0));
        assert!((sched.total_downtime(GatewayId::new(1)) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let bad_rate = FaultPlan {
            drop_rate: 1.5,
            ..FaultPlan::lossless()
        };
        assert!(matches!(
            FaultChannel::new(bad_rate, 0).unwrap_err(),
            WirelessError::InvalidFaultRate {
                name: "drop_rate",
                ..
            }
        ));
        let bad_delay = FaultPlan {
            delay_rate: 0.5,
            max_delay_ticks: 0,
            ..FaultPlan::lossless()
        };
        assert!(matches!(
            FaultChannel::new(bad_delay, 0).unwrap_err(),
            WirelessError::InvalidFaultParameter { .. }
        ));
        let bad_flap = FaultPlan {
            flaps: vec![FlapSpec {
                gateway: GatewayId::new(0),
                period_s: 10.0,
                down_s: 10.0,
                offset_s: 0.0,
            }],
            ..FaultPlan::lossless()
        };
        assert!(bad_flap.validate().is_err());
    }

    #[test]
    fn retry_backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_retries: 6,
            base_backoff_ticks: 2,
            max_backoff_ticks: 12,
            jitter_ticks: 0,
        };
        policy.validate().unwrap();
        assert_eq!(policy.backoff_ticks(1, 0), 2);
        assert_eq!(policy.backoff_ticks(2, 0), 4);
        assert_eq!(policy.backoff_ticks(3, 0), 8);
        assert_eq!(policy.backoff_ticks(4, 0), 12, "capped");
        assert_eq!(policy.backoff_ticks(40, 0), 12, "no shift overflow");
    }

    #[test]
    fn retry_jitter_is_bounded_and_deterministic() {
        let policy = RetryPolicy {
            jitter_ticks: 3,
            ..RetryPolicy::default()
        };
        for node in 0..20u32 {
            let noise = event_noise(9, node, 0, 1, SALT_RETRY_JITTER);
            let wait = policy.backoff_ticks(1, noise);
            assert!((1..=4).contains(&wait), "wait {wait} out of bounds");
            assert_eq!(wait, policy.backoff_ticks(1, noise), "same noise, same wait");
        }
    }

    #[test]
    fn invalid_retry_policies_are_rejected() {
        assert!(RetryPolicy {
            base_backoff_ticks: 0,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            base_backoff_ticks: 4,
            max_backoff_ticks: 2,
            ..RetryPolicy::default()
        }
        .validate()
        .is_err());
    }
}
