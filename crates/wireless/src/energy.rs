//! Transmission energy accounting.
//!
//! The paper motivates traffic reduction with the mobile node's "low battery
//! capacity" but never quantifies the saving; this module closes that loop.
//! A simple linear radio model — a fixed per-frame cost plus a per-byte
//! cost — is accurate enough to rank policies, which is all the energy
//! experiment needs.

use serde::{Deserialize, Serialize};

/// A linear transmission-energy model: `energy(frame) = base + per_byte × n`.
///
/// Defaults approximate an 802.11b-era handheld radio (the paper's PDAs and
/// laptops): ~2 mJ fixed cost per frame and ~2 µJ per byte. Absolute values
/// only scale the results; the policy *ranking* is model-independent.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::EnergyModel;
///
/// let model = EnergyModel::default();
/// let cost = model.frame_cost_j(32);
/// assert!(cost > 0.0);
/// assert!(model.frame_cost_j(64) > cost);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Fixed cost per transmitted frame, in joules.
    pub base_j: f64,
    /// Marginal cost per transmitted byte, in joules.
    pub per_byte_j: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            base_j: 2.0e-3,
            per_byte_j: 2.0e-6,
        }
    }
}

impl EnergyModel {
    /// Creates a model with explicit costs.
    ///
    /// # Panics
    ///
    /// Panics when either cost is negative or non-finite.
    #[must_use]
    pub fn new(base_j: f64, per_byte_j: f64) -> Self {
        assert!(
            base_j.is_finite() && base_j >= 0.0 && per_byte_j.is_finite() && per_byte_j >= 0.0,
            "energy costs must be non-negative"
        );
        EnergyModel { base_j, per_byte_j }
    }

    /// Energy to transmit one frame of `bytes` length, in joules.
    #[must_use]
    pub fn frame_cost_j(&self, bytes: usize) -> f64 {
        self.base_j + self.per_byte_j * bytes as f64
    }
}

/// A node's transmission battery: a joule budget drained per frame.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::{Battery, EnergyModel};
///
/// let mut b = Battery::new(1.0, EnergyModel::default()); // 1 J for radio TX
/// let frames_possible = b.remaining_frames(32);
/// b.transmit(32);
/// assert_eq!(b.remaining_frames(32), frames_possible - 1);
/// assert!(b.remaining_j() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity_j: f64,
    remaining_j: f64,
    model: EnergyModel,
    frames_sent: u64,
}

impl Battery {
    /// Creates a full battery with `capacity_j` joules reserved for radio
    /// transmission, drained per `model`.
    ///
    /// # Panics
    ///
    /// Panics when `capacity_j` is negative or non-finite.
    #[must_use]
    pub fn new(capacity_j: f64, model: EnergyModel) -> Self {
        assert!(
            capacity_j.is_finite() && capacity_j >= 0.0,
            "capacity must be non-negative"
        );
        Battery {
            capacity_j,
            remaining_j: capacity_j,
            model,
            frames_sent: 0,
        }
    }

    /// The configured capacity in joules.
    #[must_use]
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Remaining energy in joules (floored at zero).
    #[must_use]
    pub fn remaining_j(&self) -> f64 {
        self.remaining_j
    }

    /// Remaining charge as a fraction of capacity in `[0, 1]`.
    #[must_use]
    pub fn remaining_fraction(&self) -> f64 {
        if self.capacity_j == 0.0 {
            0.0
        } else {
            self.remaining_j / self.capacity_j
        }
    }

    /// Whether the battery can still transmit a frame of `bytes` length.
    #[must_use]
    pub fn can_transmit(&self, bytes: usize) -> bool {
        self.remaining_j >= self.model.frame_cost_j(bytes)
    }

    /// How many more frames of `bytes` length the battery can carry.
    #[must_use]
    pub fn remaining_frames(&self, bytes: usize) -> u64 {
        let cost = self.model.frame_cost_j(bytes);
        if cost == 0.0 {
            u64::MAX
        } else {
            (self.remaining_j / cost).floor() as u64
        }
    }

    /// Drains the battery for one frame of `bytes` length; returns `false`
    /// (and drains nothing) when the charge is insufficient.
    pub fn transmit(&mut self, bytes: usize) -> bool {
        let cost = self.model.frame_cost_j(bytes);
        if self.remaining_j < cost {
            return false;
        }
        self.remaining_j -= cost;
        self.frames_sent += 1;
        true
    }

    /// Frames transmitted so far.
    #[must_use]
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Total energy consumed so far, in joules.
    #[must_use]
    pub fn consumed_j(&self) -> f64 {
        self.capacity_j - self.remaining_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_cost_is_linear_in_bytes() {
        let m = EnergyModel::new(1.0, 0.5);
        assert_eq!(m.frame_cost_j(0), 1.0);
        assert_eq!(m.frame_cost_j(4), 3.0);
    }

    #[test]
    fn battery_drains_and_stops() {
        let m = EnergyModel::new(1.0, 0.0);
        let mut b = Battery::new(2.5, m);
        assert!(b.transmit(32));
        assert!(b.transmit(32));
        assert!(!b.transmit(32), "0.5 J is not enough for a 1 J frame");
        assert_eq!(b.frames_sent(), 2);
        assert!((b.remaining_j() - 0.5).abs() < 1e-12);
        assert!((b.consumed_j() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn remaining_frames_counts_whole_frames() {
        let m = EnergyModel::new(1.0, 0.0);
        let b = Battery::new(3.7, m);
        assert_eq!(b.remaining_frames(32), 3);
        assert!(b.can_transmit(32));
    }

    #[test]
    fn remaining_fraction_tracks_charge() {
        let m = EnergyModel::new(1.0, 0.0);
        let mut b = Battery::new(4.0, m);
        b.transmit(0);
        assert!((b.remaining_fraction() - 0.75).abs() < 1e-12);
        let empty = Battery::new(0.0, m);
        assert_eq!(empty.remaining_fraction(), 0.0);
    }

    #[test]
    fn zero_cost_model_never_depletes() {
        let m = EnergyModel::new(0.0, 0.0);
        let mut b = Battery::new(1.0, m);
        for _ in 0..100 {
            assert!(b.transmit(1000));
        }
        assert_eq!(b.remaining_frames(1), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_costs_panic() {
        let _ = EnergyModel::new(-1.0, 0.0);
    }
}
