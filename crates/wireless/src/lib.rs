//! Wireless access substrate for the mobigrid workspace.
//!
//! The paper's system architecture (Figure 3) routes every location update
//! through the *mobile computing infrastructure*: a mobile node associates
//! with a wireless gateway (a cellular base station on the roads, an 802.11
//! access point inside buildings), and the gateway forwards the update
//! toward the adaptive distance filter. This crate models that layer:
//!
//! * [`MnId`] — mobile-node identity,
//! * [`LocationUpdate`] — the LU frame, with a fixed 36-byte checksummed
//!   wire encoding,
//! * [`Gateway`] — a coverage site (base station or access point),
//! * [`AccessNetwork`] — association, handoff and delivery with per-gateway
//!   traffic accounting,
//! * [`FaultChannel`] — deterministic fault injection (drop, corruption,
//!   delay, duplication, flapping) with [`RetryPolicy`] for sender-side
//!   recovery,
//! * [`TrafficMeter`] — message/byte counters the experiments read.
//!
//! # Examples
//!
//! ```
//! use mobigrid_wireless::{AccessNetwork, Gateway, GatewayKind, LocationUpdate, MnId};
//! use mobigrid_geo::Point;
//!
//! let mut net = AccessNetwork::new(vec![
//!     Gateway::new(0, GatewayKind::BaseStation, Point::new(0.0, 0.0), 500.0),
//! ]);
//! let lu = LocationUpdate::new(MnId::new(7), 1.0, Point::new(30.0, 40.0), 0);
//! let gw = net.transmit(&lu).expect("within coverage");
//! assert_eq!(gw.index(), 0);
//! assert_eq!(net.meter().messages(), 1);
//! assert_eq!(net.meter().bytes(), LocationUpdate::WIRE_SIZE as u64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod error;
mod fault;
mod gateway;
mod message;
mod network;
mod outage;
mod traffic;

pub use energy::{Battery, EnergyModel};
pub use error::WirelessError;
pub use fault::{
    event_noise, ChannelStats, DropCause, FaultChannel, FaultPlan, FlapSpec, LinkEvent,
    RetryPolicy, SALT_RETRY_JITTER,
};
pub use gateway::{Gateway, GatewayId, GatewayKind};
pub use message::{LocationUpdate, MnId};
pub use network::AccessNetwork;
pub use outage::OutageSchedule;
pub use traffic::TrafficMeter;
