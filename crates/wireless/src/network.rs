use std::collections::BTreeMap;

use mobigrid_geo::Point;

use crate::{
    Gateway, GatewayId, LocationUpdate, MnId, OutageSchedule, TrafficMeter, WirelessError,
};

/// A uniform-grid spatial index over gateway coverage discs.
///
/// The cell size is the largest coverage radius, so any point's covering
/// gateways all sit in the candidate list of the point's own cell: a
/// gateway covering `p` is within `range ≤ cell` of it, and each gateway is
/// inserted into every cell its coverage disc's bounding box overlaps.
/// Lookups therefore scan one cell's candidates instead of every gateway.
///
/// Per-cell candidate lists are stored in ascending gateway-id order
/// (insertion follows the dense id order), which keeps the nearest-gateway
/// tie-breaking identical to a linear scan over `gateways`. Outages are
/// filtered at query time, so the index never goes stale when the
/// [`OutageSchedule`] changes.
#[derive(Debug, Clone, Default, PartialEq)]
struct GatewayGrid {
    /// Cell edge length in metres (0 when there are no gateways).
    cell_m: f64,
    /// World coordinates of cell (0, 0)'s minimum corner.
    origin: Point,
    /// Candidate gateway indices per occupied cell.
    cells: BTreeMap<(i64, i64), Vec<u32>>,
}

impl GatewayGrid {
    fn build(gateways: &[Gateway]) -> Self {
        let Some(cell_m) = gateways
            .iter()
            .map(Gateway::range)
            .max_by(|a, b| a.partial_cmp(b).expect("finite ranges"))
        else {
            return GatewayGrid::default();
        };
        let origin = Point::new(
            gateways
                .iter()
                .map(|g| g.site().x - g.range())
                .fold(f64::INFINITY, f64::min),
            gateways
                .iter()
                .map(|g| g.site().y - g.range())
                .fold(f64::INFINITY, f64::min),
        );
        let mut cells: BTreeMap<(i64, i64), Vec<u32>> = BTreeMap::new();
        for (i, gw) in gateways.iter().enumerate() {
            let (lo_x, lo_y) = Self::cell_of(origin, cell_m, gw.site().x - gw.range(), gw.site().y - gw.range());
            let (hi_x, hi_y) = Self::cell_of(origin, cell_m, gw.site().x + gw.range(), gw.site().y + gw.range());
            for cx in lo_x..=hi_x {
                for cy in lo_y..=hi_y {
                    cells.entry((cx, cy)).or_default().push(i as u32);
                }
            }
        }
        GatewayGrid {
            cell_m,
            origin,
            cells,
        }
    }

    fn cell_of(origin: Point, cell_m: f64, x: f64, y: f64) -> (i64, i64) {
        (
            ((x - origin.x) / cell_m).floor() as i64,
            ((y - origin.y) / cell_m).floor() as i64,
        )
    }

    /// The candidate gateway indices for `p`'s cell. Every gateway covering
    /// `p` is in this list; the caller still filters by actual coverage.
    fn candidates(&self, p: Point) -> &[u32] {
        if self.cell_m <= 0.0 {
            return &[];
        }
        let cell = Self::cell_of(self.origin, self.cell_m, p.x, p.y);
        self.cells.get(&cell).map_or(&[], Vec::as_slice)
    }
}

/// The campus access network: a set of gateways with association, handoff
/// tracking and per-gateway traffic accounting.
///
/// A node transmits through the *nearest covering* gateway. The network
/// remembers each node's previous association so the experiments can count
/// handoffs — the events that force a fresh location update regardless of
/// the filter.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::{AccessNetwork, Gateway, GatewayKind, LocationUpdate, MnId};
/// use mobigrid_geo::Point;
///
/// let mut net = AccessNetwork::new(vec![
///     Gateway::new(0, GatewayKind::BaseStation, Point::new(0.0, 0.0), 100.0),
///     Gateway::new(1, GatewayKind::BaseStation, Point::new(300.0, 0.0), 100.0),
/// ]);
/// let mn = MnId::new(1);
/// net.transmit(&LocationUpdate::new(mn, 0.0, Point::new(10.0, 0.0), 0)).unwrap();
/// net.transmit(&LocationUpdate::new(mn, 1.0, Point::new(290.0, 0.0), 1)).unwrap();
/// assert_eq!(net.handoffs(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessNetwork {
    gateways: Vec<Gateway>,
    grid: GatewayGrid,
    meter: TrafficMeter,
    per_gateway: Vec<TrafficMeter>,
    associations: BTreeMap<MnId, GatewayId>,
    handoffs: u64,
    dropped: u64,
    outages: OutageSchedule,
}

impl AccessNetwork {
    /// Creates a network from its gateways.
    ///
    /// # Panics
    ///
    /// Panics when gateway ids are not the dense sequence `0..n` — dense ids
    /// let the per-gateway meters be plain vectors.
    #[must_use]
    pub fn new(gateways: Vec<Gateway>) -> Self {
        for (i, gw) in gateways.iter().enumerate() {
            assert_eq!(gw.id().index(), i, "gateway ids must be dense 0..n");
        }
        let per_gateway = vec![TrafficMeter::new(); gateways.len()];
        let grid = GatewayGrid::build(&gateways);
        AccessNetwork {
            gateways,
            grid,
            meter: TrafficMeter::new(),
            per_gateway,
            associations: BTreeMap::new(),
            handoffs: 0,
            dropped: 0,
            outages: OutageSchedule::new(),
        }
    }

    /// Attaches a gateway outage schedule ("frequent disconnectivity"):
    /// transmissions choose among gateways that are up at the frame's
    /// timestamp.
    #[must_use]
    pub fn with_outages(mut self, outages: OutageSchedule) -> Self {
        self.outages = outages;
        self
    }

    /// Overlays additional outage windows (e.g. compiled gateway flapping,
    /// see [`crate::FaultPlan::flap_outages`]) onto the attached schedule.
    pub fn extend_outages(&mut self, extra: &OutageSchedule) {
        self.outages.extend(extra);
    }

    /// The attached outage schedule.
    #[must_use]
    pub fn outages(&self) -> &OutageSchedule {
        &self.outages
    }

    /// The registered gateways.
    #[must_use]
    pub fn gateways(&self) -> &[Gateway] {
        &self.gateways
    }

    /// The gateway a node at `p` would associate with: nearest covering
    /// site, ties broken by lowest id. Ignores outages (see
    /// [`AccessNetwork::best_gateway_at`]).
    ///
    /// Lookup goes through the uniform-grid spatial index: only the
    /// gateways whose coverage disc can reach `p`'s grid cell are examined,
    /// not the whole gateway list. Candidates are visited in ascending id
    /// order, so the result — including distance ties — is identical to a
    /// linear scan.
    #[must_use]
    pub fn best_gateway(&self, p: Point) -> Option<&Gateway> {
        self.grid
            .candidates(p)
            .iter()
            .map(|i| &self.gateways[*i as usize])
            .filter(|g| g.covers(p))
            .min_by(|a, b| {
                a.distance_to(p)
                    .partial_cmp(&b.distance_to(p))
                    .expect("finite distances")
            })
    }

    /// The nearest covering gateway that is *up* at `time_s`.
    ///
    /// Uses the same indexed lookup as [`AccessNetwork::best_gateway`];
    /// outages are filtered per query, so the index stays valid when the
    /// [`OutageSchedule`] changes.
    #[must_use]
    pub fn best_gateway_at(&self, p: Point, time_s: f64) -> Option<&Gateway> {
        self.grid
            .candidates(p)
            .iter()
            .map(|i| &self.gateways[*i as usize])
            .filter(|g| g.covers(p) && !self.outages.is_down(g.id(), time_s))
            .min_by(|a, b| {
                a.distance_to(p)
                    .partial_cmp(&b.distance_to(p))
                    .expect("finite distances")
            })
    }

    /// Transmits a location update from its reported position, returning the
    /// gateway that carried it.
    ///
    /// The update crosses the air interface as its wire encoding: it is
    /// serialised into a stack frame and parsed back zero-copy with
    /// [`LocationUpdate::decode_from`], so routing and accounting see
    /// exactly what the wire carries and the path never touches the heap.
    ///
    /// Counts the frame in the aggregate and per-gateway meters and records
    /// a handoff when the node's association changed.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::NoCoverage`] (and counts a drop) when no
    /// gateway covers the position.
    pub fn transmit(&mut self, lu: &LocationUpdate) -> Result<GatewayId, WirelessError> {
        let mut frame = [0u8; LocationUpdate::WIRE_SIZE];
        lu.encode_into(&mut frame);
        let lu = LocationUpdate::decode_from(&frame).expect("self-encoded frame is well-formed");
        let Some(gw) = self.best_gateway_at(lu.position, lu.time_s).map(Gateway::id) else {
            self.dropped += 1;
            return Err(WirelessError::NoCoverage {
                position: lu.position,
            });
        };
        self.meter.count(frame.len());
        self.per_gateway[gw.index()].count(frame.len());
        match self.associations.insert(lu.node, gw) {
            Some(prev) if prev != gw => self.handoffs += 1,
            _ => {}
        }
        Ok(gw)
    }

    /// Aggregate traffic across all gateways.
    #[must_use]
    pub fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// Traffic carried by one gateway.
    ///
    /// # Panics
    ///
    /// Panics when `id` does not belong to this network.
    #[must_use]
    pub fn gateway_meter(&self, id: GatewayId) -> &TrafficMeter {
        &self.per_gateway[id.index()]
    }

    /// The gateway a node is currently associated with, if it has ever
    /// transmitted.
    #[must_use]
    pub fn association(&self, node: MnId) -> Option<GatewayId> {
        self.associations.get(&node).copied()
    }

    /// Number of association changes observed.
    #[must_use]
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Number of transmissions dropped for lack of coverage.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the network's cumulative accounting (messages, bytes,
    /// handoffs, coverage drops) as `net.*` gauges on `rec`. Gauges are
    /// last-write-wins, so calling this once per tick leaves the run's
    /// final totals in the recorder.
    pub fn record_telemetry(&self, rec: &mut dyn mobigrid_telemetry::Recorder) {
        rec.gauge_set("net.messages", self.meter.messages() as f64);
        rec.gauge_set("net.bytes", self.meter.bytes() as f64);
        rec.gauge_set("net.handoffs", self.handoffs as f64);
        rec.gauge_set("net.dropped", self.dropped as f64);
    }

    /// Resets meters, associations and counters; gateways stay, and with
    /// them the spatial index — it derives only from the gateway set, so a
    /// reset (or an outage-schedule change) never invalidates it.
    pub fn reset(&mut self) {
        self.meter.reset();
        for m in &mut self.per_gateway {
            m.reset();
        }
        self.associations.clear();
        self.handoffs = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GatewayKind;

    fn two_cell_network() -> AccessNetwork {
        AccessNetwork::new(vec![
            Gateway::new(0, GatewayKind::BaseStation, Point::new(0.0, 0.0), 100.0),
            Gateway::new(1, GatewayKind::BaseStation, Point::new(300.0, 0.0), 100.0),
        ])
    }

    fn lu(node: u32, t: f64, x: f64) -> LocationUpdate {
        LocationUpdate::new(MnId::new(node), t, Point::new(x, 0.0), 0)
    }

    #[test]
    fn nearest_covering_gateway_wins() {
        let net = two_cell_network();
        assert_eq!(
            net.best_gateway(Point::new(10.0, 0.0))
                .unwrap()
                .id()
                .index(),
            0
        );
        assert_eq!(
            net.best_gateway(Point::new(290.0, 0.0))
                .unwrap()
                .id()
                .index(),
            1
        );
        assert!(net.best_gateway(Point::new(150.0, 0.0)).is_none());
    }

    #[test]
    fn transmit_counts_traffic() {
        let mut net = two_cell_network();
        net.transmit(&lu(1, 0.0, 10.0)).unwrap();
        net.transmit(&lu(2, 0.0, 20.0)).unwrap();
        net.transmit(&lu(3, 0.0, 290.0)).unwrap();
        assert_eq!(net.meter().messages(), 3);
        assert_eq!(net.meter().bytes(), 3 * LocationUpdate::WIRE_SIZE as u64);
        assert_eq!(net.meter().bytes(), 108);
        assert_eq!(net.gateway_meter(GatewayId::new(0)).messages(), 2);
        assert_eq!(net.gateway_meter(GatewayId::new(1)).messages(), 1);
    }

    #[test]
    fn out_of_coverage_drops() {
        let mut net = two_cell_network();
        let err = net.transmit(&lu(1, 0.0, 150.0)).unwrap_err();
        assert!(matches!(err, WirelessError::NoCoverage { .. }));
        assert_eq!(net.dropped(), 1);
        assert_eq!(net.meter().messages(), 0);
    }

    #[test]
    fn handoff_detection() {
        let mut net = two_cell_network();
        let mn = 7;
        net.transmit(&lu(mn, 0.0, 10.0)).unwrap();
        assert_eq!(net.handoffs(), 0);
        net.transmit(&lu(mn, 1.0, 20.0)).unwrap(); // same cell
        assert_eq!(net.handoffs(), 0);
        net.transmit(&lu(mn, 2.0, 290.0)).unwrap(); // cell change
        assert_eq!(net.handoffs(), 1);
        assert_eq!(net.association(MnId::new(mn)), Some(GatewayId::new(1)));
    }

    #[test]
    fn reset_clears_state_but_keeps_gateways() {
        let mut net = two_cell_network();
        net.transmit(&lu(1, 0.0, 10.0)).unwrap();
        net.reset();
        assert_eq!(net.meter().messages(), 0);
        assert_eq!(net.handoffs(), 0);
        assert_eq!(net.association(MnId::new(1)), None);
        assert_eq!(net.gateways().len(), 2);
    }

    #[test]
    fn outages_reroute_or_drop_transmissions() {
        let mut sched = OutageSchedule::new();
        sched.add_window(GatewayId::new(0), 0.0, 10.0).unwrap();
        let mut net = two_cell_network().with_outages(sched);
        // During the outage the only covering gateway for x=10 is down.
        let err = net.transmit(&lu(1, 5.0, 10.0)).unwrap_err();
        assert!(matches!(err, WirelessError::NoCoverage { .. }));
        assert_eq!(net.dropped(), 1);
        // After the window the same transmission succeeds.
        let gw = net.transmit(&lu(1, 10.0, 10.0)).unwrap();
        assert_eq!(gw.index(), 0);
    }

    #[test]
    fn best_gateway_at_skips_down_gateways() {
        let mut sched = OutageSchedule::new();
        sched.add_window(GatewayId::new(0), 0.0, 100.0).unwrap();
        let net = two_cell_network().with_outages(sched);
        // x=10 is only covered by gateway 0, which is down.
        assert!(net.best_gateway_at(Point::new(10.0, 0.0), 50.0).is_none());
        // Time-unaware lookup still sees it.
        assert!(net.best_gateway(Point::new(10.0, 0.0)).is_some());
    }

    /// Reference implementation: the pre-index linear scan.
    fn linear_best_at(net: &AccessNetwork, p: Point, time_s: Option<f64>) -> Option<GatewayId> {
        net.gateways()
            .iter()
            .filter(|g| {
                g.covers(p) && time_s.is_none_or(|t| !net.outages().is_down(g.id(), t))
            })
            .min_by(|a, b| {
                a.distance_to(p)
                    .partial_cmp(&b.distance_to(p))
                    .expect("finite distances")
            })
            .map(Gateway::id)
    }

    #[test]
    fn down_gateway_excluded_by_index_exactly_as_by_linear_scan() {
        let mut sched = OutageSchedule::new();
        sched.add_window(GatewayId::new(0), 0.0, 100.0).unwrap();
        let net = two_cell_network().with_outages(sched);
        for x in [-50.0, 0.0, 10.0, 99.0, 150.0, 250.0, 290.0, 410.0] {
            let p = Point::new(x, 0.0);
            for t in [0.0, 50.0, 100.0, 200.0] {
                assert_eq!(
                    net.best_gateway_at(p, t).map(Gateway::id),
                    linear_best_at(&net, p, Some(t)),
                    "x={x} t={t}"
                );
            }
            assert_eq!(
                net.best_gateway(p).map(Gateway::id),
                linear_best_at(&net, p, None),
                "x={x}"
            );
        }
    }

    #[test]
    fn indexed_lookup_matches_linear_scan_on_dense_deployment() {
        // 25 overlapping gateways with mixed ranges plus outage windows:
        // the indexed lookup must agree with the linear scan everywhere,
        // including coverage holes and points outside the deployment.
        let gws: Vec<Gateway> = (0..25u32)
            .map(|i| {
                let kind = if i % 3 == 0 {
                    GatewayKind::BaseStation
                } else {
                    GatewayKind::AccessPoint
                };
                let site = Point::new(f64::from(i % 5) * 80.0, f64::from(i / 5) * 80.0);
                let range = if i % 2 == 0 { 110.0 } else { 45.0 };
                Gateway::new(i, kind, site, range)
            })
            .collect();
        let mut sched = OutageSchedule::new();
        sched.add_window(GatewayId::new(3), 0.0, 50.0).unwrap();
        sched.add_window(GatewayId::new(12), 20.0, 80.0).unwrap();
        sched.add_window(GatewayId::new(24), 0.0, 1000.0).unwrap();
        let net = AccessNetwork::new(gws).with_outages(sched);

        let mut px = -60.0;
        while px < 420.0 {
            let mut py = -60.0;
            while py < 420.0 {
                let p = Point::new(px, py);
                assert_eq!(
                    net.best_gateway(p).map(Gateway::id),
                    linear_best_at(&net, p, None),
                    "p=({px}, {py})"
                );
                for t in [0.0, 25.0, 60.0, 2000.0] {
                    assert_eq!(
                        net.best_gateway_at(p, t).map(Gateway::id),
                        linear_best_at(&net, p, Some(t)),
                        "p=({px}, {py}) t={t}"
                    );
                }
                py += 13.0;
            }
            px += 13.0;
        }
    }

    #[test]
    fn reset_keeps_spatial_index_consistent() {
        let fresh = two_cell_network();
        let mut net = two_cell_network();
        net.transmit(&lu(1, 0.0, 10.0)).unwrap();
        net.reset();
        // Post-reset lookups behave exactly like a freshly built network.
        for x in [0.0, 10.0, 150.0, 290.0, 500.0] {
            let p = Point::new(x, 0.0);
            assert_eq!(
                net.best_gateway(p).map(Gateway::id),
                fresh.best_gateway(p).map(Gateway::id)
            );
        }
        assert_eq!(net, fresh);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_panic() {
        let _ = AccessNetwork::new(vec![Gateway::new(
            5,
            GatewayKind::BaseStation,
            Point::ORIGIN,
            10.0,
        )]);
    }
}
