use std::error::Error;
use std::fmt;

use mobigrid_geo::Point;

/// Errors from the wireless access layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WirelessError {
    /// No gateway covers the transmitting node's position.
    NoCoverage {
        /// Where the node attempted to transmit from.
        position: Point,
    },
    /// A received frame was too short or malformed.
    MalformedFrame {
        /// Bytes received.
        got: usize,
        /// Bytes required.
        needed: usize,
    },
    /// A received frame's checksum did not match its payload — the frame
    /// was corrupted in flight and must be discarded.
    ChecksumMismatch {
        /// Checksum stored in the frame trailer.
        stored: u32,
        /// Checksum recomputed over the received payload.
        computed: u32,
    },
    /// An outage window's bounds were not finite numbers.
    NonFiniteOutageWindow {
        /// Requested window start, in seconds.
        start_s: f64,
        /// Requested window end, in seconds.
        end_s: f64,
    },
    /// An outage window was empty or reversed (`end_s <= start_s`).
    EmptyOutageWindow {
        /// Requested window start, in seconds.
        start_s: f64,
        /// Requested window end, in seconds.
        end_s: f64,
    },
    /// A fault-plan probability was outside `[0, 1]` or not finite.
    InvalidFaultRate {
        /// Which rate was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fault-plan or retry-policy parameter was structurally invalid.
    InvalidFaultParameter {
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for WirelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WirelessError::NoCoverage { position } => {
                write!(f, "no gateway coverage at {position}")
            }
            WirelessError::MalformedFrame { got, needed } => {
                write!(f, "malformed frame: got {got} bytes, needed {needed}")
            }
            WirelessError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            WirelessError::NonFiniteOutageWindow { start_s, end_s } => {
                write!(f, "outage window bounds must be finite: [{start_s}, {end_s})")
            }
            WirelessError::EmptyOutageWindow { start_s, end_s } => {
                write!(
                    f,
                    "outage window must be a non-empty forward interval: [{start_s}, {end_s})"
                )
            }
            WirelessError::InvalidFaultRate { name, value } => {
                write!(f, "fault rate {name} must be in [0, 1], got {value}")
            }
            WirelessError::InvalidFaultParameter { reason } => {
                write!(f, "invalid fault parameter: {reason}")
            }
        }
    }
}

impl Error for WirelessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = WirelessError::MalformedFrame { got: 3, needed: 36 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("36"));
    }

    #[test]
    fn checksum_message_shows_both_values() {
        let e = WirelessError::ChecksumMismatch {
            stored: 0xDEAD_BEEF,
            computed: 0x0BAD_F00D,
        };
        let s = e.to_string();
        assert!(s.contains("0xdeadbeef"));
        assert!(s.contains("0x0badf00d"));
    }

    #[test]
    fn outage_window_messages_show_bounds() {
        let e = WirelessError::EmptyOutageWindow {
            start_s: 5.0,
            end_s: 5.0,
        };
        assert!(e.to_string().contains("non-empty"));
        let e = WirelessError::NonFiniteOutageWindow {
            start_s: f64::NAN,
            end_s: 1.0,
        };
        assert!(e.to_string().contains("finite"));
    }
}
