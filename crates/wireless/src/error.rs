use std::error::Error;
use std::fmt;

use mobigrid_geo::Point;

/// Errors from the wireless access layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WirelessError {
    /// No gateway covers the transmitting node's position.
    NoCoverage {
        /// Where the node attempted to transmit from.
        position: Point,
    },
    /// A received frame was too short or malformed.
    MalformedFrame {
        /// Bytes received.
        got: usize,
        /// Bytes required.
        needed: usize,
    },
}

impl fmt::Display for WirelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WirelessError::NoCoverage { position } => {
                write!(f, "no gateway coverage at {position}")
            }
            WirelessError::MalformedFrame { got, needed } => {
                write!(f, "malformed frame: got {got} bytes, needed {needed}")
            }
        }
    }
}

impl Error for WirelessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_facts() {
        let e = WirelessError::MalformedFrame { got: 3, needed: 32 };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("32"));
    }
}
