/// Message and byte counters for a link or an aggregate.
///
/// The paper's Figures 4–6 are all derived from counters like these: how
/// many location updates crossed the air interface, in total and per region.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::TrafficMeter;
///
/// let mut m = TrafficMeter::new();
/// m.count(32);
/// m.count(32);
/// assert_eq!(m.messages(), 2);
/// assert_eq!(m.bytes(), 64);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficMeter {
    messages: u64,
    bytes: u64,
}

impl TrafficMeter {
    /// Creates a zeroed meter.
    #[must_use]
    pub fn new() -> Self {
        TrafficMeter::default()
    }

    /// Records one message of `bytes` length.
    pub fn count(&mut self, bytes: usize) {
        self.messages += 1;
        self.bytes += bytes as u64;
    }

    /// Messages recorded.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Bytes recorded.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Adds another meter's counts into this one.
    pub fn merge(&mut self, other: &TrafficMeter) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }

    /// Resets both counters to zero.
    pub fn reset(&mut self) {
        *self = TrafficMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut m = TrafficMeter::new();
        m.count(10);
        m.count(22);
        assert_eq!(m.messages(), 2);
        assert_eq!(m.bytes(), 32);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = TrafficMeter::new();
        a.count(8);
        let mut b = TrafficMeter::new();
        b.count(8);
        b.count(8);
        a.merge(&b);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.bytes(), 24);
    }

    #[test]
    fn reset_zeroes() {
        let mut m = TrafficMeter::new();
        m.count(100);
        m.reset();
        assert_eq!(m, TrafficMeter::new());
    }
}
