//! Gateway outage schedules.
//!
//! The paper lists "frequent disconnectivity" among the mobile grid's
//! defining constraints. This module models it at the infrastructure side:
//! gateways go down for scheduled windows, during which the nodes they
//! cover cannot deliver location updates — the broker must ride out the gap
//! on its estimator, exactly like a filtered update.

use serde::{Deserialize, Serialize};

use crate::{GatewayId, WirelessError};

/// A per-gateway schedule of downtime windows.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::{GatewayId, OutageSchedule};
///
/// let mut sched = OutageSchedule::new();
/// sched.add_window(GatewayId::new(0), 10.0, 20.0).unwrap();
/// assert!(sched.is_down(GatewayId::new(0), 15.0));
/// assert!(!sched.is_down(GatewayId::new(0), 25.0));
/// assert!(!sched.is_down(GatewayId::new(1), 15.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutageSchedule {
    /// `(gateway, start_s, end_s)` windows; half-open `[start, end)`.
    windows: Vec<(GatewayId, f64, f64)>,
}

impl OutageSchedule {
    /// Creates an empty schedule (all gateways always up).
    #[must_use]
    pub fn new() -> Self {
        OutageSchedule::default()
    }

    /// Adds a downtime window `[start_s, end_s)` for `gateway`.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError::NonFiniteOutageWindow`] when either bound
    /// is NaN or infinite, and [`WirelessError::EmptyOutageWindow`] when
    /// the window is empty or reversed.
    pub fn add_window(
        &mut self,
        gateway: GatewayId,
        start_s: f64,
        end_s: f64,
    ) -> Result<(), WirelessError> {
        if !(start_s.is_finite() && end_s.is_finite()) {
            return Err(WirelessError::NonFiniteOutageWindow { start_s, end_s });
        }
        if end_s <= start_s {
            return Err(WirelessError::EmptyOutageWindow { start_s, end_s });
        }
        self.windows.push((gateway, start_s, end_s));
        Ok(())
    }

    /// Appends every window of `other` to this schedule — used to overlay
    /// compiled gateway-flapping windows onto a hand-written schedule.
    pub fn extend(&mut self, other: &OutageSchedule) {
        self.windows.extend_from_slice(&other.windows);
    }

    /// Whether `gateway` is down at `time_s`.
    #[must_use]
    pub fn is_down(&self, gateway: GatewayId, time_s: f64) -> bool {
        self.windows
            .iter()
            .any(|(g, s, e)| *g == gateway && time_s >= *s && time_s < *e)
    }

    /// Number of scheduled windows.
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Total scheduled downtime for `gateway`, in seconds (overlapping
    /// windows are double-counted; schedules are expected to be disjoint).
    #[must_use]
    pub fn total_downtime(&self, gateway: GatewayId) -> f64 {
        self.windows
            .iter()
            .filter(|(g, _, _)| *g == gateway)
            .map(|(_, s, e)| e - s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let mut s = OutageSchedule::new();
        s.add_window(GatewayId::new(2), 5.0, 8.0).unwrap();
        assert!(!s.is_down(GatewayId::new(2), 4.999));
        assert!(s.is_down(GatewayId::new(2), 5.0));
        assert!(s.is_down(GatewayId::new(2), 7.999));
        assert!(!s.is_down(GatewayId::new(2), 8.0));
    }

    #[test]
    fn schedules_are_per_gateway() {
        let mut s = OutageSchedule::new();
        s.add_window(GatewayId::new(0), 0.0, 100.0).unwrap();
        assert!(s.is_down(GatewayId::new(0), 50.0));
        assert!(!s.is_down(GatewayId::new(1), 50.0));
    }

    #[test]
    fn downtime_totals() {
        let mut s = OutageSchedule::new();
        s.add_window(GatewayId::new(0), 0.0, 10.0).unwrap();
        s.add_window(GatewayId::new(0), 20.0, 25.0).unwrap();
        s.add_window(GatewayId::new(1), 0.0, 1.0).unwrap();
        assert!((s.total_downtime(GatewayId::new(0)) - 15.0).abs() < 1e-12);
        assert!((s.total_downtime(GatewayId::new(1)) - 1.0).abs() < 1e-12);
        assert_eq!(s.window_count(), 3);
    }

    #[test]
    fn empty_or_reversed_windows_are_rejected() {
        let mut s = OutageSchedule::new();
        for (start, end) in [(5.0, 5.0), (10.0, 3.0)] {
            assert_eq!(
                s.add_window(GatewayId::new(0), start, end).unwrap_err(),
                WirelessError::EmptyOutageWindow {
                    start_s: start,
                    end_s: end
                }
            );
        }
        assert_eq!(s.window_count(), 0, "rejected windows must not be stored");
    }

    #[test]
    fn non_finite_windows_are_rejected() {
        let mut s = OutageSchedule::new();
        for (start, end) in [(f64::NAN, 1.0), (0.0, f64::INFINITY), (f64::NEG_INFINITY, 0.0)] {
            let err = s.add_window(GatewayId::new(0), start, end).unwrap_err();
            assert!(
                matches!(err, WirelessError::NonFiniteOutageWindow { .. }),
                "expected NonFiniteOutageWindow, got {err:?}"
            );
        }
        assert_eq!(s.window_count(), 0, "rejected windows must not be stored");
    }

    #[test]
    fn extend_overlays_another_schedule() {
        let mut a = OutageSchedule::new();
        a.add_window(GatewayId::new(0), 0.0, 1.0).unwrap();
        let mut b = OutageSchedule::new();
        b.add_window(GatewayId::new(1), 2.0, 3.0).unwrap();
        a.extend(&b);
        assert_eq!(a.window_count(), 2);
        assert!(a.is_down(GatewayId::new(1), 2.5));
    }
}
