//! Gateway outage schedules.
//!
//! The paper lists "frequent disconnectivity" among the mobile grid's
//! defining constraints. This module models it at the infrastructure side:
//! gateways go down for scheduled windows, during which the nodes they
//! cover cannot deliver location updates — the broker must ride out the gap
//! on its estimator, exactly like a filtered update.

use serde::{Deserialize, Serialize};

use crate::GatewayId;

/// A per-gateway schedule of downtime windows.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::{GatewayId, OutageSchedule};
///
/// let mut sched = OutageSchedule::new();
/// sched.add_window(GatewayId::new(0), 10.0, 20.0);
/// assert!(sched.is_down(GatewayId::new(0), 15.0));
/// assert!(!sched.is_down(GatewayId::new(0), 25.0));
/// assert!(!sched.is_down(GatewayId::new(1), 15.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OutageSchedule {
    /// `(gateway, start_s, end_s)` windows; half-open `[start, end)`.
    windows: Vec<(GatewayId, f64, f64)>,
}

impl OutageSchedule {
    /// Creates an empty schedule (all gateways always up).
    #[must_use]
    pub fn new() -> Self {
        OutageSchedule::default()
    }

    /// Adds a downtime window `[start_s, end_s)` for `gateway`.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty or reversed, or the bounds are not
    /// finite.
    pub fn add_window(&mut self, gateway: GatewayId, start_s: f64, end_s: f64) {
        assert!(
            start_s.is_finite() && end_s.is_finite() && end_s > start_s,
            "outage window must be a non-empty forward interval"
        );
        self.windows.push((gateway, start_s, end_s));
    }

    /// Whether `gateway` is down at `time_s`.
    #[must_use]
    pub fn is_down(&self, gateway: GatewayId, time_s: f64) -> bool {
        self.windows
            .iter()
            .any(|(g, s, e)| *g == gateway && time_s >= *s && time_s < *e)
    }

    /// Number of scheduled windows.
    #[must_use]
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Total scheduled downtime for `gateway`, in seconds (overlapping
    /// windows are double-counted; schedules are expected to be disjoint).
    #[must_use]
    pub fn total_downtime(&self, gateway: GatewayId) -> f64 {
        self.windows
            .iter()
            .filter(|(g, _, _)| *g == gateway)
            .map(|(_, s, e)| e - s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let mut s = OutageSchedule::new();
        s.add_window(GatewayId::new(2), 5.0, 8.0);
        assert!(!s.is_down(GatewayId::new(2), 4.999));
        assert!(s.is_down(GatewayId::new(2), 5.0));
        assert!(s.is_down(GatewayId::new(2), 7.999));
        assert!(!s.is_down(GatewayId::new(2), 8.0));
    }

    #[test]
    fn schedules_are_per_gateway() {
        let mut s = OutageSchedule::new();
        s.add_window(GatewayId::new(0), 0.0, 100.0);
        assert!(s.is_down(GatewayId::new(0), 50.0));
        assert!(!s.is_down(GatewayId::new(1), 50.0));
    }

    #[test]
    fn downtime_totals() {
        let mut s = OutageSchedule::new();
        s.add_window(GatewayId::new(0), 0.0, 10.0);
        s.add_window(GatewayId::new(0), 20.0, 25.0);
        s.add_window(GatewayId::new(1), 0.0, 1.0);
        assert!((s.total_downtime(GatewayId::new(0)) - 15.0).abs() < 1e-12);
        assert!((s.total_downtime(GatewayId::new(1)) - 1.0).abs() < 1e-12);
        assert_eq!(s.window_count(), 3);
    }

    #[test]
    #[should_panic(expected = "forward interval")]
    fn reversed_window_panics() {
        let mut s = OutageSchedule::new();
        s.add_window(GatewayId::new(0), 5.0, 5.0);
    }
}
