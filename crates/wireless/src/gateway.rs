use std::fmt;

use serde::{Deserialize, Serialize};

use mobigrid_geo::Point;

/// Identity of a wireless gateway within its [`AccessNetwork`](crate::AccessNetwork).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GatewayId(u32);

impl GatewayId {
    /// Creates an id from a raw dense index.
    #[must_use]
    pub const fn new(raw: u32) -> Self {
        GatewayId(raw)
    }

    /// The id as a dense array index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GatewayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gw#{}", self.0)
    }
}

/// The two gateway technologies the paper's campus provides: cellular
/// service on roads and buildings, wireless Internet (802.11) inside the six
/// buildings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatewayKind {
    /// A cellular base station: wide coverage, outdoor.
    BaseStation,
    /// An 802.11 access point: short range, indoor.
    AccessPoint,
}

impl fmt::Display for GatewayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayKind::BaseStation => write!(f, "base station"),
            GatewayKind::AccessPoint => write!(f, "access point"),
        }
    }
}

/// A wireless gateway: a coverage disc centred on its site.
///
/// # Examples
///
/// ```
/// use mobigrid_wireless::{Gateway, GatewayKind};
/// use mobigrid_geo::Point;
///
/// let ap = Gateway::new(0, GatewayKind::AccessPoint, Point::new(10.0, 10.0), 50.0);
/// assert!(ap.covers(Point::new(40.0, 10.0)));
/// assert!(!ap.covers(Point::new(100.0, 10.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gateway {
    id: GatewayId,
    kind: GatewayKind,
    site: Point,
    range_m: f64,
}

impl Gateway {
    /// Creates a gateway with the given dense `id`, technology, `site` and
    /// coverage radius in metres.
    ///
    /// # Panics
    ///
    /// Panics when `range_m` is not strictly positive.
    #[must_use]
    pub fn new(id: u32, kind: GatewayKind, site: Point, range_m: f64) -> Self {
        assert!(
            range_m.is_finite() && range_m > 0.0,
            "coverage radius must be positive"
        );
        Gateway {
            id: GatewayId::new(id),
            kind,
            site,
            range_m,
        }
    }

    /// The gateway's id.
    #[must_use]
    pub fn id(&self) -> GatewayId {
        self.id
    }

    /// Base station or access point.
    #[must_use]
    pub fn kind(&self) -> GatewayKind {
        self.kind
    }

    /// Where the gateway is installed.
    #[must_use]
    pub fn site(&self) -> Point {
        self.site
    }

    /// Coverage radius in metres.
    #[must_use]
    pub fn range(&self) -> f64 {
        self.range_m
    }

    /// Returns `true` when `p` is within coverage.
    #[must_use]
    pub fn covers(&self, p: Point) -> bool {
        self.site.distance_sq_to(p) <= self.range_m * self.range_m
    }

    /// Distance from the gateway site to `p`, in metres.
    #[must_use]
    pub fn distance_to(&self, p: Point) -> f64 {
        self.site.distance_to(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_inclusive_at_the_boundary() {
        let gw = Gateway::new(1, GatewayKind::BaseStation, Point::ORIGIN, 10.0);
        assert!(gw.covers(Point::new(10.0, 0.0)));
        assert!(!gw.covers(Point::new(10.001, 0.0)));
    }

    #[test]
    fn accessors_round_trip() {
        let gw = Gateway::new(3, GatewayKind::AccessPoint, Point::new(1.0, 2.0), 25.0);
        assert_eq!(gw.id().index(), 3);
        assert_eq!(gw.kind(), GatewayKind::AccessPoint);
        assert_eq!(gw.site(), Point::new(1.0, 2.0));
        assert_eq!(gw.range(), 25.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_panics() {
        let _ = Gateway::new(0, GatewayKind::BaseStation, Point::ORIGIN, 0.0);
    }

    #[test]
    fn kinds_display() {
        assert_eq!(GatewayKind::BaseStation.to_string(), "base station");
        assert_eq!(GatewayKind::AccessPoint.to_string(), "access point");
    }
}
