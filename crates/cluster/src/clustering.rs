/// The result of a clustering pass: per-item assignments plus per-cluster
/// centroids and sizes.
///
/// Returned by [`Bsas::cluster`](crate::Bsas::cluster) and
/// [`kmeans`](crate::kmeans). The adaptive distance filter reads the
/// centroid's velocity component of each cluster to size that cluster's
/// distance threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignments: Vec<usize>,
    centroids: Vec<Vec<f64>>,
    sizes: Vec<usize>,
}

impl Clustering {
    /// Assembles a clustering result.
    ///
    /// # Panics
    ///
    /// Panics when the invariants do not hold: every assignment must index a
    /// centroid, and sizes must agree with the assignments.
    #[must_use]
    pub fn new(assignments: Vec<usize>, centroids: Vec<Vec<f64>>) -> Self {
        let mut sizes = vec![0usize; centroids.len()];
        for &a in &assignments {
            assert!(a < centroids.len(), "assignment {a} out of range");
            sizes[a] += 1;
        }
        Clustering {
            assignments,
            centroids,
            sizes,
        }
    }

    /// Number of clusters formed.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.centroids.len()
    }

    /// Number of clustered items.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.assignments.len()
    }

    /// The cluster index item `item` was assigned to.
    ///
    /// # Panics
    ///
    /// Panics when `item` is out of range.
    #[must_use]
    pub fn assignment(&self, item: usize) -> usize {
        self.assignments[item]
    }

    /// All assignments, indexed by item.
    #[must_use]
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// The centroid (mean feature vector) of cluster `cluster`.
    ///
    /// # Panics
    ///
    /// Panics when `cluster` is out of range.
    #[must_use]
    pub fn centroid(&self, cluster: usize) -> &[f64] {
        &self.centroids[cluster]
    }

    /// All centroids, indexed by cluster.
    #[must_use]
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of members in cluster `cluster`.
    ///
    /// # Panics
    ///
    /// Panics when `cluster` is out of range.
    #[must_use]
    pub fn size(&self, cluster: usize) -> usize {
        self.sizes[cluster]
    }

    /// The items belonging to cluster `cluster`.
    pub fn members(&self, cluster: usize) -> impl Iterator<Item = usize> + '_ {
        self.assignments
            .iter()
            .enumerate()
            .filter(move |(_, &a)| a == cluster)
            .map(|(i, _)| i)
    }

    /// Mean within-cluster distance to centroid — a compactness measure used
    /// by the α-sweep ablation.
    #[must_use]
    pub fn mean_distortion(&self, items: &[Vec<f64>]) -> f64 {
        assert_eq!(items.len(), self.assignments.len(), "items must match");
        if items.is_empty() {
            return 0.0;
        }
        let total: f64 = items
            .iter()
            .zip(&self.assignments)
            .map(|(item, &a)| crate::euclidean(item, &self.centroids[a]))
            .sum();
        total / items.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Clustering {
        Clustering::new(vec![0, 0, 1], vec![vec![1.0], vec![5.0]])
    }

    #[test]
    fn counts_and_sizes() {
        let c = sample();
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.item_count(), 3);
        assert_eq!(c.size(0), 2);
        assert_eq!(c.size(1), 1);
    }

    #[test]
    fn members_enumerates_items() {
        let c = sample();
        assert_eq!(c.members(0).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(c.members(1).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn mean_distortion_hand_computed() {
        let c = sample();
        let items = vec![vec![0.0], vec![2.0], vec![5.0]];
        // distances: 1, 1, 0 -> mean 2/3
        assert!((c.mean_distortion(&items) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_assignment() {
        let _ = Clustering::new(vec![0, 3], vec![vec![1.0]]);
    }

    #[test]
    fn empty_clustering_is_valid() {
        let c = Clustering::new(vec![], vec![]);
        assert_eq!(c.cluster_count(), 0);
        assert_eq!(c.item_count(), 0);
        assert_eq!(c.mean_distortion(&[]), 0.0);
    }
}
