use crate::{euclidean, Clustering};

/// One-shot sequential clustering (BSAS).
///
/// Items are scanned in order; each joins the *nearest* existing cluster when
/// the distance to that cluster's centroid is below the similarity bound α,
/// and opens a new cluster otherwise. Centroids update incrementally as
/// members join, matching the scheme the paper cites for grouping mobile
/// nodes by velocity/direction (§3.2).
///
/// The result depends on scan order — an inherent property of sequential
/// clustering that the paper accepts in exchange for not having to fix the
/// number of clusters up front.
///
/// # Examples
///
/// ```
/// use mobigrid_cluster::Bsas;
///
/// let items = vec![vec![1.0], vec![1.1], vec![9.0]];
/// let c = Bsas::new(0.5).cluster(&items);
/// assert_eq!(c.cluster_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bsas {
    threshold: f64,
    max_clusters: Option<usize>,
}

impl Bsas {
    /// Creates a clusterer with similarity bound `threshold` (the paper's α)
    /// and no cluster-count cap.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is not a positive finite number.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "similarity bound must be positive"
        );
        Bsas {
            threshold,
            max_clusters: None,
        }
    }

    /// Caps the number of clusters; once the cap is reached items always
    /// join their nearest cluster regardless of α.
    #[must_use]
    pub fn with_max_clusters(mut self, max: usize) -> Self {
        assert!(max > 0, "cluster cap must be positive");
        self.max_clusters = Some(max);
        self
    }

    /// The similarity bound α.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Clusters `items` in scan order.
    ///
    /// # Panics
    ///
    /// Panics when items have inconsistent dimensions.
    #[must_use]
    pub fn cluster(&self, items: &[Vec<f64>]) -> Clustering {
        let mut online = OnlineBsas::new(self.threshold);
        if let Some(max) = self.max_clusters {
            online = online.with_max_clusters(max);
        }
        let assignments: Vec<usize> = items.iter().map(|item| online.push(item)).collect();
        Clustering::new(assignments, online.into_centroids())
    }
}

/// Incremental BSAS with running centroids.
///
/// The ADF's cluster manager keeps one of these per reclustering round,
/// pushing each moving node's feature vector and reading back its cluster id
/// immediately.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineBsas {
    threshold: f64,
    max_clusters: Option<usize>,
    centroids: Vec<Vec<f64>>,
    counts: Vec<usize>,
}

impl OnlineBsas {
    /// Creates an empty incremental clusterer with similarity bound
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics when `threshold` is not a positive finite number.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "similarity bound must be positive"
        );
        OnlineBsas {
            threshold,
            max_clusters: None,
            centroids: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Caps the number of clusters (see [`Bsas::with_max_clusters`]).
    ///
    /// # Panics
    ///
    /// Panics when `max` is zero.
    #[must_use]
    pub fn with_max_clusters(mut self, max: usize) -> Self {
        assert!(max > 0, "cluster cap must be positive");
        self.max_clusters = Some(max);
        self
    }

    /// Assigns `item` to a cluster and returns the cluster index, updating
    /// the centroid incrementally.
    ///
    /// # Panics
    ///
    /// Panics when `item`'s dimension differs from previously pushed items.
    pub fn push(&mut self, item: &[f64]) -> usize {
        let nearest = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, euclidean(item, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));

        let at_cap = self
            .max_clusters
            .is_some_and(|max| self.centroids.len() >= max);

        match nearest {
            Some((idx, dist)) if dist < self.threshold || at_cap => {
                // Incremental centroid update: c' = c + (x - c)/(n + 1).
                let n = self.counts[idx] as f64;
                for (c, x) in self.centroids[idx].iter_mut().zip(item) {
                    *c += (x - *c) / (n + 1.0);
                }
                self.counts[idx] += 1;
                idx
            }
            _ => {
                self.centroids.push(item.to_vec());
                self.counts.push(1);
                self.centroids.len() - 1
            }
        }
    }

    /// Number of clusters formed so far.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.centroids.len()
    }

    /// Current centroid of cluster `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    #[must_use]
    pub fn centroid(&self, idx: usize) -> &[f64] {
        &self.centroids[idx]
    }

    /// Current member count of cluster `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    #[must_use]
    pub fn count(&self, idx: usize) -> usize {
        self.counts[idx]
    }

    /// Consumes the clusterer, returning the centroids.
    #[must_use]
    pub fn into_centroids(self) -> Vec<Vec<f64>> {
        self.centroids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_input_forms_one_cluster() {
        let c = Bsas::new(1.0).cluster(&[vec![5.0]]);
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.assignment(0), 0);
        assert_eq!(c.centroid(0), &[5.0]);
    }

    #[test]
    fn empty_input_forms_no_clusters() {
        let c = Bsas::new(1.0).cluster(&[]);
        assert_eq!(c.cluster_count(), 0);
    }

    #[test]
    fn items_within_threshold_share_a_cluster() {
        let items = vec![vec![1.0], vec![1.4], vec![0.8]];
        let c = Bsas::new(1.0).cluster(&items);
        assert_eq!(c.cluster_count(), 1);
        // Centroid is the running mean of members.
        assert!((c.centroid(0)[0] - (1.0 + 1.4 + 0.8) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distant_items_open_new_clusters() {
        let items = vec![vec![1.0], vec![10.0], vec![20.0]];
        let c = Bsas::new(2.0).cluster(&items);
        assert_eq!(c.cluster_count(), 3);
    }

    #[test]
    fn item_joins_nearest_cluster() {
        // Clusters seeded at 0 and 10; item 6 is nearer 10.
        let items = vec![vec![0.0], vec![10.0], vec![6.0]];
        let c = Bsas::new(5.0).cluster(&items);
        assert_eq!(c.assignment(2), c.assignment(1));
    }

    #[test]
    fn smaller_alpha_never_produces_fewer_clusters() {
        let items: Vec<Vec<f64>> = (0..30).map(|i| vec![f64::from(i) * 0.7]).collect();
        let coarse = Bsas::new(5.0).cluster(&items).cluster_count();
        let fine = Bsas::new(0.5).cluster(&items).cluster_count();
        assert!(fine >= coarse);
    }

    #[test]
    fn cap_forces_assignment_to_nearest() {
        let items = vec![vec![0.0], vec![100.0], vec![50.0]];
        let c = Bsas::new(1.0).with_max_clusters(2).cluster(&items);
        assert_eq!(c.cluster_count(), 2);
        // Third item had to join one of the two despite exceeding alpha.
        assert!(c.assignment(2) < 2);
    }

    #[test]
    fn multidimensional_features() {
        // Velocity + heading components.
        let items = vec![
            vec![1.0, 0.0, 1.0],
            vec![1.1, 0.1, 0.9],
            vec![8.0, 1.0, 0.0],
        ];
        let c = Bsas::new(1.0).cluster(&items);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.assignment(0), c.assignment(1));
    }

    #[test]
    fn online_counts_and_centroids_track_pushes() {
        let mut ob = OnlineBsas::new(1.0);
        assert_eq!(ob.push(&[0.0]), 0);
        assert_eq!(ob.push(&[0.5]), 0);
        assert_eq!(ob.push(&[9.0]), 1);
        assert_eq!(ob.cluster_count(), 2);
        assert_eq!(ob.count(0), 2);
        assert_eq!(ob.count(1), 1);
        assert!((ob.centroid(0)[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = Bsas::new(0.0);
    }

    #[test]
    fn scan_order_dependence_is_deterministic() {
        let items = vec![vec![0.0], vec![1.0], vec![2.0]];
        let a = Bsas::new(1.5).cluster(&items);
        let b = Bsas::new(1.5).cluster(&items);
        assert_eq!(a, b);
    }
}
