/// Euclidean distance between two equal-length feature vectors.
///
/// # Panics
///
/// Panics when the slices differ in length.
///
/// # Examples
///
/// ```
/// let d = mobigrid_cluster::euclidean(&[0.0, 0.0], &[3.0, 4.0]);
/// assert_eq!(d, 5.0);
/// ```
#[must_use]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature vectors must share dimension");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_to_self_is_zero() {
        assert_eq!(euclidean(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn one_dimensional_is_abs_difference() {
        assert_eq!(euclidean(&[3.0], &[-1.0]), 4.0);
    }

    #[test]
    fn is_symmetric() {
        let a = [1.0, -2.0];
        let b = [4.5, 3.0];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
    }

    #[test]
    #[should_panic(expected = "share dimension")]
    fn mismatched_dimensions_panic() {
        let _ = euclidean(&[1.0], &[1.0, 2.0]);
    }
}
