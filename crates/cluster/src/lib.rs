//! Clustering substrate for the mobigrid workspace.
//!
//! The adaptive distance filter groups moving nodes into clusters of similar
//! velocity and direction using **sequential clustering** (the basic
//! sequential algorithmic scheme, BSAS, of Theodoridis & Koutroumbas — the
//! paper’s citation \[10\]): each item joins the nearest existing cluster if
//! its dissimilarity `d(MN, C)` is below the similarity bound α, otherwise a
//! new cluster is opened. Per-cluster statistics (mean feature values) then
//! drive the per-cluster distance thresholds.
//!
//! * [`Bsas`] — one-shot sequential clustering over a batch of items,
//! * [`OnlineBsas`] — incremental variant with running centroids,
//! * [`kmeans`] — a k-means baseline for the clustering ablation,
//! * [`Clustering`] — the assignment + centroid result shared by both.
//!
//! # Examples
//!
//! ```
//! use mobigrid_cluster::Bsas;
//!
//! // 1-D velocity features: two walkers, two vehicles.
//! let velocities = vec![vec![1.2], vec![1.4], vec![8.0], vec![8.5]];
//! let clustering = Bsas::new(2.0).cluster(&velocities);
//! assert_eq!(clustering.cluster_count(), 2);
//! assert_eq!(clustering.assignment(0), clustering.assignment(1));
//! assert_ne!(clustering.assignment(0), clustering.assignment(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bsas;
mod clustering;
mod distance;
mod kmeans;

pub use bsas::{Bsas, OnlineBsas};
pub use clustering::Clustering;
pub use distance::euclidean;
pub use kmeans::kmeans;
