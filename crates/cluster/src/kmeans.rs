use rand::seq::SliceRandom;
use rand::Rng;

use crate::{euclidean, Clustering};

/// Lloyd's k-means, the fixed-k baseline for the clustering ablation.
///
/// Sequential clustering (the paper's choice) discovers the cluster count
/// from the similarity bound α; k-means instead requires `k` up front but
/// produces tighter clusters. The ablation bench compares the distance-filter
/// effectiveness under both.
///
/// Initialisation samples `k` distinct items as seeds using the supplied RNG,
/// so results are reproducible from a seed. Runs at most `max_iters`
/// Lloyd iterations or until assignments stabilise. Empty clusters are
/// re-seeded with the item farthest from its centroid.
///
/// # Panics
///
/// Panics when `k` is zero or exceeds the number of items, or when items have
/// inconsistent dimensions.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
///
/// let items = vec![vec![0.0], vec![0.2], vec![10.0], vec![10.1]];
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let c = mobigrid_cluster::kmeans(&items, 2, 50, &mut rng);
/// assert_eq!(c.cluster_count(), 2);
/// assert_eq!(c.assignment(0), c.assignment(1));
/// assert_ne!(c.assignment(0), c.assignment(2));
/// ```
#[must_use]
pub fn kmeans<R: Rng>(items: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut R) -> Clustering {
    assert!(k > 0, "k must be positive");
    assert!(k <= items.len(), "k must not exceed item count");

    // Seed with k distinct items.
    let mut indices: Vec<usize> = (0..items.len()).collect();
    indices.shuffle(rng);
    let mut centroids: Vec<Vec<f64>> = indices[..k].iter().map(|&i| items[i].clone()).collect();

    let mut assignments = vec![0usize; items.len()];
    for _ in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        for (i, item) in items.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .map(|(c, centroid)| (c, euclidean(item, centroid)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .expect("k >= 1")
                .0;
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }

        // Update step.
        let dim = items[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (item, &a) in items.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(item) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fitting item.
                let far = items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| (i, euclidean(item, &centroids[assignments[i]])))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                    .expect("non-empty items")
                    .0;
                centroids[c] = items[far].clone();
                assignments[far] = c;
                changed = true;
            } else {
                for (cc, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cc = s / counts[c] as f64;
                }
            }
        }

        if !changed {
            break;
        }
    }

    // Final assignment pass so the returned assignments are consistent with
    // the returned centroids even when the loop exited at max_iters or after
    // an empty-cluster re-seed.
    for (i, item) in items.iter().enumerate() {
        assignments[i] = centroids
            .iter()
            .enumerate()
            .map(|(c, centroid)| (c, euclidean(item, centroid)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("k >= 1")
            .0;
    }

    Clustering::new(assignments, centroids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let mut items = Vec::new();
        for i in 0..10 {
            items.push(vec![f64::from(i) * 0.01]);
            items.push(vec![100.0 + f64::from(i) * 0.01]);
        }
        let c = kmeans(&items, 2, 100, &mut rng());
        // All even indices together, all odd indices together.
        let a0 = c.assignment(0);
        let a1 = c.assignment(1);
        assert_ne!(a0, a1);
        for i in 0..10 {
            assert_eq!(c.assignment(2 * i), a0);
            assert_eq!(c.assignment(2 * i + 1), a1);
        }
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let items = vec![vec![1.0], vec![2.0], vec![3.0]];
        let c = kmeans(&items, 3, 10, &mut rng());
        assert_eq!(c.cluster_count(), 3);
        for cl in 0..3 {
            assert_eq!(c.size(cl), 1);
        }
    }

    #[test]
    fn k_one_centroid_is_global_mean() {
        let items = vec![vec![1.0], vec![3.0], vec![8.0]];
        let c = kmeans(&items, 1, 10, &mut rng());
        assert!((c.centroid(0)[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let items: Vec<Vec<f64>> = (0..20).map(|i| vec![f64::from(i % 7)]).collect();
        let a = kmeans(&items, 3, 50, &mut StdRng::seed_from_u64(9));
        let b = kmeans(&items, 3, 50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceed item count")]
    fn k_greater_than_n_panics() {
        let _ = kmeans(&[vec![1.0]], 2, 10, &mut rng());
    }

    #[test]
    fn kmeans_distortion_not_worse_than_bsas_much() {
        // Sanity: on well-separated blobs both methods find the structure.
        let mut items = Vec::new();
        for i in 0..15 {
            items.push(vec![f64::from(i) * 0.05]);
            items.push(vec![50.0 + f64::from(i) * 0.05]);
        }
        let km = kmeans(&items, 2, 100, &mut rng());
        let bs = crate::Bsas::new(5.0).cluster(&items);
        assert_eq!(km.cluster_count(), bs.cluster_count());
        assert!(km.mean_distortion(&items) <= bs.mean_distortion(&items) + 1e-9);
    }
}
