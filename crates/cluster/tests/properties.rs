//! Property-based tests for the clustering substrate.

use mobigrid_cluster::{euclidean, kmeans, Bsas};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn items_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-100.0..100.0f64, 2), 1..60)
}

proptest! {
    #[test]
    fn every_item_is_assigned_exactly_once(items in items_strategy(), alpha in 0.5..50.0f64) {
        let c = Bsas::new(alpha).cluster(&items);
        prop_assert_eq!(c.item_count(), items.len());
        // Sizes sum to item count.
        let total: usize = (0..c.cluster_count()).map(|i| c.size(i)).sum();
        prop_assert_eq!(total, items.len());
        // No empty clusters in BSAS.
        for i in 0..c.cluster_count() {
            prop_assert!(c.size(i) > 0);
        }
    }

    #[test]
    fn first_member_is_within_alpha_or_opens_cluster(
        items in items_strategy(),
        alpha in 0.5..50.0f64,
    ) {
        // BSAS invariant: at the moment of assignment, the item was within
        // alpha of the (then-current) centroid — we can't check the historic
        // centroid, but a weaker invariant holds: any cluster of size 1 has
        // its sole member exactly at the centroid.
        let c = Bsas::new(alpha).cluster(&items);
        for cl in (0..c.cluster_count()).filter(|&cl| c.size(cl) == 1) {
            let item_idx = c.members(cl).next().unwrap();
            prop_assert!(euclidean(&items[item_idx], c.centroid(cl)) < 1e-9);
        }
    }

    #[test]
    fn centroid_is_mean_of_members(items in items_strategy(), alpha in 0.5..50.0f64) {
        let c = Bsas::new(alpha).cluster(&items);
        for cl in 0..c.cluster_count() {
            let members: Vec<usize> = c.members(cl).collect();
            let n = members.len() as f64;
            for (d, centroid_component) in c.centroid(cl).iter().enumerate() {
                let mean: f64 = members.iter().map(|&i| items[i][d]).sum::<f64>() / n;
                prop_assert!((centroid_component - mean).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn cluster_cap_is_respected(items in items_strategy(), max in 1usize..5) {
        let c = Bsas::new(0.5).with_max_clusters(max).cluster(&items);
        prop_assert!(c.cluster_count() <= max);
    }

    #[test]
    fn huge_alpha_collapses_to_one_cluster(items in items_strategy()) {
        let c = Bsas::new(1e6).cluster(&items);
        prop_assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn kmeans_preserves_item_count(items in items_strategy(), seed in any::<u64>()) {
        let k = (items.len() / 4).max(1);
        let c = kmeans(&items, k, 30, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(c.item_count(), items.len());
        prop_assert_eq!(c.cluster_count(), k);
        let total: usize = (0..k).map(|i| c.size(i)).sum();
        prop_assert_eq!(total, items.len());
    }

    #[test]
    fn kmeans_assigns_each_item_to_nearest_centroid(
        items in items_strategy(),
        seed in any::<u64>(),
    ) {
        let k = (items.len() / 3).max(1);
        let c = kmeans(&items, k, 100, &mut StdRng::seed_from_u64(seed));
        for (i, item) in items.iter().enumerate() {
            let assigned = euclidean(item, c.centroid(c.assignment(i)));
            for cl in 0..k {
                // The final assignment pass guarantees no other centroid is
                // meaningfully nearer.
                prop_assert!(assigned <= euclidean(item, c.centroid(cl)) + 1e-9);
            }
        }
    }
}
