//! Data distribution management: region-scoped interest is itself a form of
//! location-update traffic reduction — the broker only hears about nodes in
//! the campus area it cares about.

use mobigrid_hla::{Callback, ObjectModel, RoutingRegion, Rti, RtiError};

struct Setup {
    sender: mobigrid_hla::Federate,
    receiver: mobigrid_hla::Federate,
    class: mobigrid_hla::ObjectClassHandle,
    attr: mobigrid_hla::AttributeHandle,
    object: mobigrid_hla::ObjectHandle,
}

fn setup() -> Setup {
    let mut fom = ObjectModel::new();
    let class = fom.add_object_class("MobileNode");
    let attr = fom.add_attribute(class, "position").expect("fresh");
    let rti = Rti::new();
    rti.create_federation("ddm", fom).expect("fresh");
    let sender = rti.join("ddm", "sender").expect("exists");
    let receiver = rti.join("ddm", "receiver").expect("exists");
    sender.publish_object_class(class).expect("declared");
    let object = sender.register_object(class).expect("published");
    Setup {
        sender,
        receiver,
        class,
        attr,
        object,
    }
}

fn reflections(fed: &mobigrid_hla::Federate) -> usize {
    fed.tick()
        .expect("joined")
        .iter()
        .filter(|c| matches!(c, Callback::ReflectAttributes { .. }))
        .count()
}

#[test]
fn region_scoped_subscription_filters_by_location() {
    let s = setup();
    // The receiver only cares about the west half of the campus.
    let west = s
        .receiver
        .create_region(RoutingRegion::rectangle(0.0, 250.0, 0.0, 450.0).expect("valid"))
        .expect("region created");
    s.receiver
        .subscribe_object_class_with_region(s.class, &[s.attr], west)
        .expect("subscribed");
    s.receiver.tick().expect("joined"); // drain discovery

    // An update at x = 100 (inside the interest region) is delivered…
    let at_100 = s
        .sender
        .create_region(RoutingRegion::point(&[100.0, 200.0]))
        .expect("region created");
    s.sender
        .update_attributes_with_region(s.object, vec![(s.attr, b"west".to_vec())], at_100, None)
        .expect("owned");
    assert_eq!(reflections(&s.receiver), 1);

    // …an update at x = 400 is not…
    let at_400 = s
        .sender
        .create_region(RoutingRegion::point(&[400.0, 200.0]))
        .expect("region created");
    s.sender
        .update_attributes_with_region(s.object, vec![(s.attr, b"east".to_vec())], at_400, None)
        .expect("owned");
    assert_eq!(reflections(&s.receiver), 0);

    // …and an unscoped update means "everywhere", so it is delivered.
    s.sender
        .update_attributes(s.object, vec![(s.attr, b"anywhere".to_vec())], None)
        .expect("owned");
    assert_eq!(reflections(&s.receiver), 1);
}

#[test]
fn unscoped_subscription_receives_scoped_updates() {
    let s = setup();
    s.receiver
        .subscribe_object_class(s.class, &[s.attr])
        .expect("subscribed");
    s.receiver.tick().expect("joined");

    let anywhere = s
        .sender
        .create_region(RoutingRegion::point(&[999.0, 999.0]))
        .expect("region created");
    s.sender
        .update_attributes_with_region(s.object, vec![(s.attr, b"x".to_vec())], anywhere, None)
        .expect("owned");
    assert_eq!(reflections(&s.receiver), 1);
}

#[test]
fn moving_interest_region_follows_the_subscriber() {
    let s = setup();
    let interest = s
        .receiver
        .create_region(RoutingRegion::rectangle(0.0, 10.0, 0.0, 10.0).expect("valid"))
        .expect("region created");
    s.receiver
        .subscribe_object_class_with_region(s.class, &[s.attr], interest)
        .expect("subscribed");
    s.receiver.tick().expect("joined");

    let far = s
        .sender
        .create_region(RoutingRegion::point(&[100.0, 100.0]))
        .expect("region created");
    s.sender
        .update_attributes_with_region(s.object, vec![(s.attr, b"1".to_vec())], far, None)
        .expect("owned");
    assert_eq!(reflections(&s.receiver), 0, "outside the initial interest");

    // The receiver's area of interest moves over the update location.
    s.receiver
        .modify_region(
            interest,
            RoutingRegion::rectangle(90.0, 110.0, 90.0, 110.0).expect("valid"),
        )
        .expect("owned region");
    s.sender
        .update_attributes_with_region(s.object, vec![(s.attr, b"2".to_vec())], far, None)
        .expect("owned");
    assert_eq!(reflections(&s.receiver), 1, "inside the moved interest");
}

#[test]
fn region_ownership_and_dimensions_are_enforced() {
    let s = setup();
    let foreign = s
        .sender
        .create_region(RoutingRegion::rectangle(0.0, 1.0, 0.0, 1.0).expect("valid"))
        .expect("region created");
    // The receiver cannot subscribe with the sender's region.
    let err = s
        .receiver
        .subscribe_object_class_with_region(s.class, &[s.attr], foreign)
        .unwrap_err();
    assert!(matches!(err, RtiError::InvalidRegion { .. }));

    // Dimensionality is fixed by the first region (2-D here).
    let err = s
        .receiver
        .create_region(RoutingRegion::new(vec![(0.0, 1.0)]).expect("valid 1-D region"))
        .unwrap_err();
    assert!(matches!(err, RtiError::InvalidRegion { .. }));

    // Modifying a foreign region is rejected too.
    let err = s
        .receiver
        .modify_region(
            foreign,
            RoutingRegion::rectangle(0.0, 2.0, 0.0, 2.0).expect("valid"),
        )
        .unwrap_err();
    assert!(matches!(err, RtiError::InvalidRegion { .. }));
}

#[test]
fn ddm_reduces_reflected_traffic_for_a_patrolling_node() {
    // A node sweeps across the campus; a west-half subscriber should see
    // roughly half the updates — DDM as RTI-level traffic reduction.
    let s = setup();
    let west = s
        .receiver
        .create_region(RoutingRegion::rectangle(0.0, 250.0, 0.0, 450.0).expect("valid"))
        .expect("region created");
    s.receiver
        .subscribe_object_class_with_region(s.class, &[s.attr], west)
        .expect("subscribed");
    s.receiver.tick().expect("joined");

    let position = s
        .sender
        .create_region(RoutingRegion::point(&[0.0, 200.0]))
        .expect("region created");
    let mut delivered = 0usize;
    let steps = 100;
    for i in 0..steps {
        let x = f64::from(i) * 5.0; // 0 → 495 m sweep
        s.sender
            .modify_region(position, RoutingRegion::point(&[x, 200.0]))
            .expect("owned region");
        s.sender
            .update_attributes_with_region(
                s.object,
                vec![(s.attr, x.to_be_bytes().to_vec())],
                position,
                None,
            )
            .expect("owned");
        delivered += reflections(&s.receiver);
    }
    // 0..=250 of a 0..495 sweep: 51 of 100 updates.
    assert_eq!(delivered, 51);
}
