//! End-to-end federation tests mirroring the paper's simulation topology:
//! a mobile-node federate, an ADF federate and a broker federate exchanging
//! location updates under conservative time management.

use mobigrid_hla::{Callback, FedTime, ObjectModel, Rti};
use proptest::prelude::*;

/// Three federates in the paper's pipeline shape: MN updates positions, the
/// ADF federate reflects them, filters, and forwards via its own object; the
/// broker reflects the filtered stream. All lockstep at 1 s ticks.
#[test]
fn three_federate_lu_pipeline_runs_lockstep() {
    let mut fom = ObjectModel::new();
    let raw_class = fom.add_object_class("RawLocation");
    let raw_pos = fom.add_attribute(raw_class, "position").unwrap();
    let filtered_class = fom.add_object_class("FilteredLocation");
    let filtered_pos = fom.add_attribute(filtered_class, "position").unwrap();

    let rti = Rti::new();
    rti.create_federation("campus", fom).unwrap();
    let mn = rti.join("campus", "mn-federate").unwrap();
    let adf = rti.join("campus", "adf-federate").unwrap();
    let broker = rti.join("campus", "broker-federate").unwrap();

    mn.publish_object_class(raw_class).unwrap();
    adf.subscribe_object_class(raw_class, &[raw_pos]).unwrap();
    adf.publish_object_class(filtered_class).unwrap();
    broker
        .subscribe_object_class(filtered_class, &[filtered_pos])
        .unwrap();

    let la = FedTime::from_secs_f64(0.5);
    for f in [&mn, &adf, &broker] {
        f.enable_time_regulation(la).unwrap();
        f.enable_time_constrained().unwrap();
    }

    let raw_obj = mn.register_object(raw_class).unwrap();
    let filtered_obj = adf.register_object(filtered_class).unwrap();
    adf.tick().unwrap(); // discover raw
    broker.tick().unwrap(); // discover filtered

    let mut broker_reflections = 0;
    let mut adf_reflections = 0;

    for step in 1..=20u64 {
        let now = FedTime::from_secs(step);
        // MN reports its position each tick.
        let payload = format!("{},{}", step, 2 * step).into_bytes();
        mn.update_attributes(raw_obj, vec![(raw_pos, payload)], Some(now))
            .unwrap();

        for f in [&mn, &adf, &broker] {
            f.request_time_advance(now).unwrap();
        }

        // ADF: drain, count reflections, forward every other one (a crude
        // 50 % filter standing in for the distance filter).
        let mut granted = false;
        for cb in adf.tick().unwrap() {
            match cb {
                Callback::ReflectAttributes { values, .. } => {
                    adf_reflections += 1;
                    if step % 2 == 0 {
                        let fwd: Vec<(_, Vec<u8>)> = values
                            .iter()
                            .map(|(_, v)| (filtered_pos, v.to_vec()))
                            .collect();
                        adf.update_attributes(filtered_obj, fwd, Some(now + la))
                            .unwrap();
                    }
                }
                Callback::TimeAdvanceGrant { time } => {
                    assert_eq!(time, now);
                    granted = true;
                }
                _ => {}
            }
        }
        assert!(granted, "adf deadlocked at step {step}");

        for cb in broker.tick().unwrap() {
            if matches!(cb, Callback::ReflectAttributes { .. }) {
                broker_reflections += 1;
            }
        }
        mn.tick().unwrap();
    }

    // The MN sent 20 updates; the ADF saw them all (modulo the final one
    // which may still be in flight at t=20+lookahead).
    assert!(adf_reflections >= 19, "adf saw {adf_reflections}");
    // The broker saw roughly half, lagging at most one update.
    assert!(
        (8..=10).contains(&broker_reflections),
        "broker saw {broker_reflections}"
    );
}

#[test]
fn federation_time_advances_monotonically() {
    let rti = Rti::new();
    rti.create_federation("t", ObjectModel::new()).unwrap();
    let f = rti.join("t", "solo").unwrap();
    f.enable_time_regulation(FedTime::ZERO).unwrap();
    f.enable_time_constrained().unwrap();
    let mut last = FedTime::ZERO;
    for s in [1u64, 2, 5, 9] {
        f.request_time_advance(FedTime::from_secs(s)).unwrap();
        let events = f.tick().unwrap();
        match events.as_slice() {
            [Callback::TimeAdvanceGrant { time }] => {
                assert!(*time > last);
                last = *time;
            }
            other => panic!("expected grant, got {other:?}"),
        }
    }
    assert_eq!(f.time().unwrap(), FedTime::from_secs(9));
}

proptest! {
    /// TSO messages always arrive in timestamp order at a constrained
    /// federate, whatever order they were sent in.
    #[test]
    fn tso_messages_always_arrive_in_timestamp_order(
        mut stamps in prop::collection::vec(1u64..100, 1..30)
    ) {
        let mut fom = ObjectModel::new();
        let class = fom.add_object_class("C");
        let attr = fom.add_attribute(class, "a").unwrap();
        let rti = Rti::new();
        rti.create_federation("p", fom).unwrap();
        let tx = rti.join("p", "tx").unwrap();
        let rx = rti.join("p", "rx").unwrap();
        tx.publish_object_class(class).unwrap();
        rx.subscribe_object_class(class, &[attr]).unwrap();
        tx.enable_time_regulation(FedTime::ZERO).unwrap();
        rx.enable_time_constrained().unwrap();
        let obj = tx.register_object(class).unwrap();
        rx.tick().unwrap();

        for s in &stamps {
            tx.update_attributes(
                obj,
                vec![(attr, s.to_be_bytes().to_vec())],
                Some(FedTime::from_secs(*s)),
            ).unwrap();
        }
        // Advance the receiver past every stamp.
        tx.request_time_advance(FedTime::from_secs(1000)).unwrap();
        rx.request_time_advance(FedTime::from_secs(200)).unwrap();

        let mut seen = Vec::new();
        for cb in rx.tick().unwrap() {
            if let Callback::ReflectAttributes { time: Some(t), .. } = cb {
                seen.push(t);
            }
        }
        let mut expected: Vec<FedTime> = stamps.drain(..).map(FedTime::from_secs).collect();
        expected.sort();
        prop_assert_eq!(seen, expected);
    }
}
