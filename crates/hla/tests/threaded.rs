//! The RTI's handles are `Send + Sync`; this test runs a producer and a
//! consumer federate on separate OS threads, synchronised purely by HLA
//! time management, and checks nothing is lost or reordered.

use std::thread;

use mobigrid_hla::{Callback, FedTime, ObjectModel, Rti};

const STEPS: u64 = 50;

#[test]
fn two_federates_on_threads_stay_in_lockstep() {
    let mut fom = ObjectModel::new();
    let class = fom.add_object_class("Telemetry");
    let attr = fom.add_attribute(class, "value").expect("fresh attribute");

    let rti = Rti::new();
    rti.create_federation("threads", fom).expect("fresh name");
    let tx = rti.join("threads", "producer").expect("exists");
    let rx = rti.join("threads", "consumer").expect("exists");

    tx.publish_object_class(class).expect("declared");
    rx.subscribe_object_class(class, &[attr]).expect("declared");
    tx.enable_time_regulation(FedTime::from_secs_f64(0.5))
        .expect("first enable");
    tx.enable_time_constrained().expect("first enable");
    rx.enable_time_regulation(FedTime::from_secs_f64(0.5))
        .expect("first enable");
    rx.enable_time_constrained().expect("first enable");

    let obj = tx.register_object(class).expect("published");
    // Wait for discovery before the producer starts publishing.
    loop {
        let events = rx.tick().expect("joined");
        if events
            .iter()
            .any(|e| matches!(e, Callback::DiscoverObject { .. }))
        {
            break;
        }
        thread::yield_now();
    }

    let producer = thread::spawn(move || {
        for step in 1..=STEPS {
            let now = FedTime::from_secs(step);
            tx.update_attributes(obj, vec![(attr, step.to_be_bytes().to_vec())], Some(now))
                .expect("owned object");
            tx.request_time_advance(now).expect("monotone");
            // Spin until our own grant arrives (the consumer's request is
            // the other half of the barrier).
            'grant: loop {
                for cb in tx.tick().expect("joined") {
                    if matches!(cb, Callback::TimeAdvanceGrant { time } if time == now) {
                        break 'grant;
                    }
                }
                thread::yield_now();
            }
        }
    });

    let consumer = thread::spawn(move || {
        let mut received: Vec<u64> = Vec::new();
        for step in 1..=STEPS {
            let now = FedTime::from_secs(step);
            rx.request_time_advance(now).expect("monotone");
            'grant: loop {
                for cb in rx.tick().expect("joined") {
                    match cb {
                        Callback::ReflectAttributes { values, time, .. } => {
                            assert!(time.is_some(), "updates must arrive TSO");
                            let mut buf = [0u8; 8];
                            buf.copy_from_slice(&values[0].1);
                            received.push(u64::from_be_bytes(buf));
                        }
                        Callback::TimeAdvanceGrant { time } if time == now => break 'grant,
                        _ => {}
                    }
                }
                thread::yield_now();
            }
        }
        received
    });

    producer.join().expect("producer thread");
    let received = consumer.join().expect("consumer thread");

    // Every step's update arrived exactly once, in timestamp order.
    assert_eq!(received, (1..=STEPS).collect::<Vec<u64>>());
}
