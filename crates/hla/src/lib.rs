//! A miniature HLA 1.3-style Run-Time Infrastructure (RTI).
//!
//! The paper evaluates the adaptive distance filter inside a distributed
//! simulation built on the DMSO HLA RTI 1.3 — a closed-source US-DoD
//! middleware. This crate reimplements the slice of HLA the paper's system
//! actually uses, as an in-process, deterministic library:
//!
//! * **Federation management** — create/join/resign federation executions
//!   ([`Rti::create_federation`], [`Rti::join`], [`Federate::resign`]),
//!   synchronization points,
//! * **Declaration management** — a federation object model
//!   ([`ObjectModel`]) of object classes/attributes and interaction
//!   classes/parameters, with publish/subscribe,
//! * **Object management** — register object instances, update attribute
//!   values, reflections delivered to subscribers
//!   ([`Federate::update_attributes`] → [`Callback::ReflectAttributes`]),
//!   interactions,
//! * **Time management** — time-regulating and time-constrained federates
//!   with lookahead, conservative time-advance grants, and timestamp-order
//!   (TSO) message delivery.
//!
//! Federates drain their callback queues explicitly with
//! [`Federate::tick`], mirroring HLA's `tick()` evoked-callback model, which
//! keeps multi-federate executions single-threaded and bit-reproducible.
//! The handle types are `Send + Sync` (the core lives behind a
//! [`parking_lot`] mutex), so federates may also run from separate threads —
//! see the `threaded` integration test.
//!
//! # Examples
//!
//! A two-federate federation exchanging a timestamped attribute update:
//!
//! ```
//! use mobigrid_hla::{Callback, FedTime, ObjectModel, Rti};
//!
//! let mut fom = ObjectModel::new();
//! let mn = fom.add_object_class("MobileNode");
//! let pos = fom.add_attribute(mn, "position").unwrap();
//!
//! let rti = Rti::new();
//! rti.create_federation("campus", fom).unwrap();
//! let sender = rti.join("campus", "node-federate").unwrap();
//! let broker = rti.join("campus", "broker-federate").unwrap();
//!
//! sender.publish_object_class(mn).unwrap();
//! broker.subscribe_object_class(mn, &[pos]).unwrap();
//! sender.enable_time_regulation(FedTime::from_secs_f64(0.5)).unwrap();
//! broker.enable_time_constrained().unwrap();
//!
//! let obj = sender.register_object(mn).unwrap();
//! broker.tick().unwrap(); // discover the object
//!
//! sender
//!     .update_attributes(obj, vec![(pos, b"12.5,7.5".to_vec())], Some(FedTime::from_secs_f64(1.0)))
//!     .unwrap();
//! sender.request_time_advance(FedTime::from_secs_f64(1.0)).unwrap();
//! broker.request_time_advance(FedTime::from_secs_f64(1.0)).unwrap();
//!
//! let events = broker.tick().unwrap();
//! assert!(events.iter().any(|e| matches!(e, Callback::ReflectAttributes { .. })));
//! assert!(events.iter().any(|e| matches!(e, Callback::TimeAdvanceGrant { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod callback;
mod error;
mod federation;
mod fom;
mod handles;
mod region;
mod rti;
mod time;
mod time_mgmt;

pub use callback::{AttributeValues, Callback, ParameterValues};
pub use error::RtiError;
pub use fom::ObjectModel;
pub use handles::{
    AttributeHandle, FederateHandle, InteractionClassHandle, ObjectClassHandle, ObjectHandle,
    ParameterHandle, RegionHandle,
};
pub use region::RoutingRegion;
pub use rti::{Federate, Rti};
pub use time::FedTime;
