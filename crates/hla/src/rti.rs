use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::federation::Federation;
use crate::{
    AttributeHandle, AttributeValues, Callback, FedTime, FederateHandle, InteractionClassHandle,
    ObjectClassHandle, ObjectHandle, ObjectModel, ParameterValues, RegionHandle, RoutingRegion,
    RtiError,
};

#[derive(Default)]
struct RtiCore {
    federations: BTreeMap<String, Federation>,
}

/// The RTI executive: creates federation executions and admits federates.
///
/// Cloning an `Rti` yields another handle to the same executive (the core is
/// shared behind a mutex), so federates can run from multiple threads.
///
/// # Examples
///
/// ```
/// use mobigrid_hla::{ObjectModel, Rti};
///
/// let rti = Rti::new();
/// rti.create_federation("exp", ObjectModel::new()).unwrap();
/// let fed = rti.join("exp", "observer").unwrap();
/// assert_eq!(fed.name(), "observer");
/// ```
#[derive(Clone, Default)]
pub struct Rti {
    core: Arc<Mutex<RtiCore>>,
}

impl std::fmt::Debug for Rti {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let core = self.core.lock();
        f.debug_struct("Rti")
            .field("federations", &core.federations.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Rti {
    /// Creates an executive with no federation executions.
    #[must_use]
    pub fn new() -> Self {
        Rti::default()
    }

    /// Creates a federation execution governed by `fom`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::FederationAlreadyExists`] when the name is taken.
    pub fn create_federation(
        &self,
        name: impl Into<String>,
        fom: ObjectModel,
    ) -> Result<(), RtiError> {
        let name = name.into();
        let mut core = self.core.lock();
        if core.federations.contains_key(&name) {
            return Err(RtiError::FederationAlreadyExists { name });
        }
        core.federations.insert(name, Federation::new(fom));
        Ok(())
    }

    /// Destroys a federation execution. In HLA this requires all federates
    /// to have resigned; here any remaining federates are dropped with it.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownFederation`] when no such execution
    /// exists.
    pub fn destroy_federation(&self, name: &str) -> Result<(), RtiError> {
        let mut core = self.core.lock();
        core.federations
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| RtiError::UnknownFederation {
                name: name.to_string(),
            })
    }

    /// Joins a federate to an execution, returning its service handle.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownFederation`] when no such execution
    /// exists.
    pub fn join(
        &self,
        federation: impl Into<String>,
        federate_name: impl Into<String>,
    ) -> Result<Federate, RtiError> {
        let federation = federation.into();
        let federate_name = federate_name.into();
        let mut core = self.core.lock();
        let fed_exec =
            core.federations
                .get_mut(&federation)
                .ok_or_else(|| RtiError::UnknownFederation {
                    name: federation.clone(),
                })?;
        let handle = fed_exec.join(&federate_name);
        Ok(Federate {
            core: Arc::clone(&self.core),
            federation,
            handle,
            name: federate_name,
        })
    }

    /// Number of federates currently joined to `federation`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownFederation`] when no such execution
    /// exists.
    pub fn federate_count(&self, federation: &str) -> Result<usize, RtiError> {
        let core = self.core.lock();
        core.federations
            .get(federation)
            .map(Federation::federate_count)
            .ok_or_else(|| RtiError::UnknownFederation {
                name: federation.to_string(),
            })
    }

    /// Names of the federates currently joined to `federation`, in join
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownFederation`] when no such execution
    /// exists.
    pub fn federate_names(&self, federation: &str) -> Result<Vec<String>, RtiError> {
        let core = self.core.lock();
        core.federations
            .get(federation)
            .map(Federation::federate_names)
            .ok_or_else(|| RtiError::UnknownFederation {
                name: federation.to_string(),
            })
    }
}

/// A joined federate's service handle — the RTI-ambassador surface.
///
/// All RTI services the paper's simulation needs hang off this type; see the
/// [crate docs](crate) for a full walkthrough.
pub struct Federate {
    core: Arc<Mutex<RtiCore>>,
    federation: String,
    handle: FederateHandle,
    name: String,
}

impl std::fmt::Debug for Federate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federate")
            .field("federation", &self.federation)
            .field("handle", &self.handle)
            .field("name", &self.name)
            .finish()
    }
}

impl Federate {
    fn with<R>(
        &self,
        f: impl FnOnce(&mut Federation) -> Result<R, RtiError>,
    ) -> Result<R, RtiError> {
        let mut core = self.core.lock();
        let fed_exec = core.federations.get_mut(&self.federation).ok_or_else(|| {
            RtiError::UnknownFederation {
                name: self.federation.clone(),
            }
        })?;
        f(fed_exec)
    }

    /// The federate's name as supplied at join time.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The RTI-issued federate handle.
    #[must_use]
    pub fn handle(&self) -> FederateHandle {
        self.handle
    }

    /// The federation this federate is joined to.
    #[must_use]
    pub fn federation(&self) -> &str {
        &self.federation
    }

    /// A copy of the federation object model.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownFederation`] if the execution was
    /// destroyed.
    pub fn fom(&self) -> Result<ObjectModel, RtiError> {
        self.with(|fed| Ok(fed.fom().clone()))
    }

    /// Resigns from the federation, deleting owned objects.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::NotJoined`] when already resigned.
    pub fn resign(&self) -> Result<(), RtiError> {
        self.with(|fed| fed.resign(self.handle))
    }

    /// Declares intent to register instances / update attributes of `class`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownHandle`] for classes missing from the FOM.
    pub fn publish_object_class(&self, class: ObjectClassHandle) -> Result<(), RtiError> {
        self.with(|fed| fed.publish_object_class(self.handle, class))
    }

    /// Subscribes to reflections of the given attributes of `class`; also
    /// delivers discoveries of existing instances.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownHandle`] for unknown class/attributes.
    pub fn subscribe_object_class(
        &self,
        class: ObjectClassHandle,
        attributes: &[AttributeHandle],
    ) -> Result<(), RtiError> {
        self.with(|fed| fed.subscribe_object_class(self.handle, class, attributes))
    }

    /// Creates a DDM routing region owned by this federate.
    ///
    /// The first region created fixes the federation's routing-space
    /// dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::InvalidRegion`] for malformed regions or a
    /// dimensionality mismatch with the routing space.
    pub fn create_region(&self, region: RoutingRegion) -> Result<RegionHandle, RtiError> {
        self.with(|fed| fed.create_region(self.handle, region))
    }

    /// Replaces an owned region's extents (e.g. tracking a moving area of
    /// interest). The dimensionality must not change.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::InvalidRegion`] for unknown/foreign regions or a
    /// dimensionality change.
    pub fn modify_region(
        &self,
        handle: RegionHandle,
        region: RoutingRegion,
    ) -> Result<(), RtiError> {
        self.with(|fed| fed.modify_region(self.handle, handle, region))
    }

    /// Subscribes to `class` with interest limited to an owned routing
    /// region: updates tagged with a non-overlapping region are not
    /// delivered.
    ///
    /// # Errors
    ///
    /// Same contract as [`Federate::subscribe_object_class`], plus
    /// [`RtiError::InvalidRegion`] for unknown/foreign regions.
    pub fn subscribe_object_class_with_region(
        &self,
        class: ObjectClassHandle,
        attributes: &[AttributeHandle],
        region: RegionHandle,
    ) -> Result<(), RtiError> {
        self.with(|fed| {
            fed.subscribe_object_class_scoped(self.handle, class, attributes, Some(region))
        })
    }

    /// Updates attribute values tagged with an owned routing region, so
    /// region-scoped subscribers only see it when their interest overlaps.
    ///
    /// # Errors
    ///
    /// Same contract as [`Federate::update_attributes`], plus
    /// [`RtiError::InvalidRegion`] for unknown/foreign regions.
    pub fn update_attributes_with_region(
        &self,
        object: ObjectHandle,
        values: Vec<(AttributeHandle, Vec<u8>)>,
        region: RegionHandle,
        time: Option<FedTime>,
    ) -> Result<(), RtiError> {
        let values: AttributeValues = values
            .into_iter()
            .map(|(a, v)| (a, Bytes::from(v)))
            .collect();
        self.with(|fed| {
            fed.update_attributes_scoped(self.handle, object, values, Some(region), time)
        })
    }

    /// Declares intent to send interaction `class`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownHandle`] for interactions missing from the
    /// FOM.
    pub fn publish_interaction(&self, class: InteractionClassHandle) -> Result<(), RtiError> {
        self.with(|fed| fed.publish_interaction(self.handle, class))
    }

    /// Subscribes to interaction `class`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownHandle`] for interactions missing from the
    /// FOM.
    pub fn subscribe_interaction(&self, class: InteractionClassHandle) -> Result<(), RtiError> {
        self.with(|fed| fed.subscribe_interaction(self.handle, class))
    }

    /// Registers a new object instance of a published `class`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::NotPublished`] when the class was not published.
    pub fn register_object(&self, class: ObjectClassHandle) -> Result<ObjectHandle, RtiError> {
        self.with(|fed| fed.register_object(self.handle, class))
    }

    /// Deletes an owned object instance.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownObject`] / [`RtiError::NotPublished`] for
    /// unknown or foreign objects.
    pub fn delete_object(&self, object: ObjectHandle) -> Result<(), RtiError> {
        self.with(|fed| fed.delete_object(self.handle, object))
    }

    /// Updates attribute values of an owned object. With `time = Some(t)`
    /// and this federate time-regulating, delivery to time-constrained
    /// subscribers is timestamp-ordered at `t`; otherwise receive-ordered.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::InvalidTime`] when `t` violates the lookahead
    /// promise, plus the object/handle errors of
    /// [`Federate::register_object`].
    pub fn update_attributes(
        &self,
        object: ObjectHandle,
        values: Vec<(AttributeHandle, Vec<u8>)>,
        time: Option<FedTime>,
    ) -> Result<(), RtiError> {
        let values: AttributeValues = values
            .into_iter()
            .map(|(a, v)| (a, Bytes::from(v)))
            .collect();
        self.with(|fed| fed.update_attributes(self.handle, object, values, time))
    }

    /// Sends an interaction of a published `class`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Federate::update_attributes`].
    pub fn send_interaction(
        &self,
        class: InteractionClassHandle,
        values: Vec<(crate::ParameterHandle, Vec<u8>)>,
        time: Option<FedTime>,
    ) -> Result<(), RtiError> {
        let values: ParameterValues = values
            .into_iter()
            .map(|(p, v)| (p, Bytes::from(v)))
            .collect();
        self.with(|fed| fed.send_interaction(self.handle, class, values, time))
    }

    /// Becomes time-regulating with the given lookahead.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::TimeAlreadyEnabled`] when already regulating.
    pub fn enable_time_regulation(&self, lookahead: FedTime) -> Result<(), RtiError> {
        self.with(|fed| fed.enable_time_regulation(self.handle, lookahead))
    }

    /// Becomes time-constrained.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::TimeAlreadyEnabled`] when already constrained.
    pub fn enable_time_constrained(&self) -> Result<(), RtiError> {
        self.with(|fed| fed.enable_time_constrained(self.handle))
    }

    /// Requests a time advance to `to`; the grant arrives as a
    /// [`Callback::TimeAdvanceGrant`] once safe.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::AdvanceAlreadyPending`] / [`RtiError::InvalidTime`]
    /// per the HLA time-management rules.
    pub fn request_time_advance(&self, to: FedTime) -> Result<(), RtiError> {
        self.with(|fed| fed.request_time_advance(self.handle, to))
    }

    /// This federate's current granted time.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::NotJoined`] after resignation.
    pub fn time(&self) -> Result<FedTime, RtiError> {
        self.with(|fed| fed.federate_time(self.handle))
    }

    /// Announces a federation-wide synchronization point.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::InvalidSyncPoint`] for duplicate labels.
    pub fn register_sync_point(&self, label: &str) -> Result<(), RtiError> {
        self.with(|fed| fed.register_sync_point(self.handle, label))
    }

    /// Marks this federate as having achieved the labelled point; when the
    /// last federate achieves it, everyone receives
    /// [`Callback::FederationSynchronized`].
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::InvalidSyncPoint`] for unannounced labels.
    pub fn achieve_sync_point(&self, label: &str) -> Result<(), RtiError> {
        self.with(|fed| fed.achieve_sync_point(self.handle, label))
    }

    /// Drains and returns the pending callbacks, in delivery order — the
    /// HLA `tick()`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::NotJoined`] after resignation.
    pub fn tick(&self) -> Result<Vec<Callback>, RtiError> {
        self.with(|fed| fed.drain_callbacks(self.handle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fom_with_node() -> (ObjectModel, ObjectClassHandle, AttributeHandle) {
        let mut fom = ObjectModel::new();
        let mn = fom.add_object_class("MobileNode");
        let pos = fom.add_attribute(mn, "position").unwrap();
        (fom, mn, pos)
    }

    #[test]
    fn create_join_resign_lifecycle() {
        let (fom, ..) = fom_with_node();
        let rti = Rti::new();
        rti.create_federation("f", fom).unwrap();
        assert!(matches!(
            rti.create_federation("f", ObjectModel::new()),
            Err(RtiError::FederationAlreadyExists { .. })
        ));
        let a = rti.join("f", "a").unwrap();
        assert_eq!(rti.federate_count("f").unwrap(), 1);
        a.resign().unwrap();
        assert_eq!(rti.federate_count("f").unwrap(), 0);
        assert_eq!(a.resign(), Err(RtiError::NotJoined));
        rti.destroy_federation("f").unwrap();
        assert!(matches!(
            rti.destroy_federation("f"),
            Err(RtiError::UnknownFederation { .. })
        ));
    }

    #[test]
    fn federate_names_listed_in_join_order() {
        let rti = Rti::new();
        rti.create_federation("f", ObjectModel::new()).unwrap();
        let _a = rti.join("f", "alpha").unwrap();
        let _b = rti.join("f", "beta").unwrap();
        assert_eq!(rti.federate_names("f").unwrap(), vec!["alpha", "beta"]);
    }

    #[test]
    fn join_unknown_federation_fails() {
        let rti = Rti::new();
        assert!(matches!(
            rti.join("ghost", "x"),
            Err(RtiError::UnknownFederation { .. })
        ));
    }

    #[test]
    fn discover_and_reflect_receive_order() {
        let (fom, mn, pos) = fom_with_node();
        let rti = Rti::new();
        rti.create_federation("f", fom).unwrap();
        let sender = rti.join("f", "sender").unwrap();
        let receiver = rti.join("f", "receiver").unwrap();

        sender.publish_object_class(mn).unwrap();
        receiver.subscribe_object_class(mn, &[pos]).unwrap();
        let obj = sender.register_object(mn).unwrap();

        let events = receiver.tick().unwrap();
        assert!(matches!(
            events.as_slice(),
            [Callback::DiscoverObject { object, .. }] if *object == obj
        ));

        sender
            .update_attributes(obj, vec![(pos, b"1,2".to_vec())], None)
            .unwrap();
        let events = receiver.tick().unwrap();
        match events.as_slice() {
            [Callback::ReflectAttributes {
                object,
                values,
                time,
            }] => {
                assert_eq!(*object, obj);
                assert_eq!(values[0].1.as_ref(), b"1,2");
                assert!(time.is_none());
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn late_subscriber_discovers_existing_objects() {
        let (fom, mn, pos) = fom_with_node();
        let rti = Rti::new();
        rti.create_federation("f", fom).unwrap();
        let sender = rti.join("f", "sender").unwrap();
        sender.publish_object_class(mn).unwrap();
        let obj = sender.register_object(mn).unwrap();

        let late = rti.join("f", "late").unwrap();
        late.subscribe_object_class(mn, &[pos]).unwrap();
        let events = late.tick().unwrap();
        assert!(matches!(
            events.as_slice(),
            [Callback::DiscoverObject { object, .. }] if *object == obj
        ));
    }

    #[test]
    fn unsubscribed_attributes_are_filtered() {
        let mut fom = ObjectModel::new();
        let mn = fom.add_object_class("MobileNode");
        let pos = fom.add_attribute(mn, "position").unwrap();
        let bat = fom.add_attribute(mn, "battery").unwrap();

        let rti = Rti::new();
        rti.create_federation("f", fom).unwrap();
        let sender = rti.join("f", "sender").unwrap();
        let receiver = rti.join("f", "receiver").unwrap();
        sender.publish_object_class(mn).unwrap();
        receiver.subscribe_object_class(mn, &[pos]).unwrap();
        let obj = sender.register_object(mn).unwrap();
        receiver.tick().unwrap(); // drain discover

        // Battery-only update: the receiver must see nothing.
        sender
            .update_attributes(obj, vec![(bat, b"77".to_vec())], None)
            .unwrap();
        assert!(receiver.tick().unwrap().is_empty());

        // Mixed update: only the subscribed attribute arrives.
        sender
            .update_attributes(obj, vec![(pos, b"1".to_vec()), (bat, b"66".to_vec())], None)
            .unwrap();
        let events = receiver.tick().unwrap();
        match events.as_slice() {
            [Callback::ReflectAttributes { values, .. }] => {
                assert_eq!(values.len(), 1);
                assert_eq!(values[0].0, pos);
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn updating_foreign_object_is_rejected() {
        let (fom, mn, pos) = fom_with_node();
        let rti = Rti::new();
        rti.create_federation("f", fom).unwrap();
        let a = rti.join("f", "a").unwrap();
        let b = rti.join("f", "b").unwrap();
        a.publish_object_class(mn).unwrap();
        b.publish_object_class(mn).unwrap();
        let obj = a.register_object(mn).unwrap();
        assert_eq!(
            b.update_attributes(obj, vec![(pos, vec![1])], None),
            Err(RtiError::NotPublished)
        );
    }

    #[test]
    fn tso_delivery_waits_for_grant_and_orders_by_timestamp() {
        let (fom, mn, pos) = fom_with_node();
        let rti = Rti::new();
        rti.create_federation("f", fom).unwrap();
        let sender = rti.join("f", "sender").unwrap();
        let receiver = rti.join("f", "receiver").unwrap();
        sender.publish_object_class(mn).unwrap();
        receiver.subscribe_object_class(mn, &[pos]).unwrap();
        sender.enable_time_regulation(FedTime::ZERO).unwrap();
        receiver.enable_time_constrained().unwrap();
        let obj = sender.register_object(mn).unwrap();
        receiver.tick().unwrap();

        // Send t=2 then t=1: TSO must reorder.
        sender
            .update_attributes(
                obj,
                vec![(pos, b"late".to_vec())],
                Some(FedTime::from_secs(2)),
            )
            .unwrap();
        sender
            .update_attributes(
                obj,
                vec![(pos, b"early".to_vec())],
                Some(FedTime::from_secs(1)),
            )
            .unwrap();

        // Nothing delivered before a grant.
        assert!(receiver.tick().unwrap().is_empty());

        sender.request_time_advance(FedTime::from_secs(3)).unwrap();
        receiver
            .request_time_advance(FedTime::from_secs(3))
            .unwrap();
        let events = receiver.tick().unwrap();
        let payloads: Vec<&[u8]> = events
            .iter()
            .filter_map(|e| match e {
                Callback::ReflectAttributes { values, .. } => Some(values[0].1.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(payloads, vec![b"early".as_ref(), b"late".as_ref()]);
        assert!(matches!(
            events.last(),
            Some(Callback::TimeAdvanceGrant { time }) if *time == FedTime::from_secs(3)
        ));
    }

    #[test]
    fn interactions_flow_to_subscribers() {
        let mut fom = ObjectModel::new();
        let ping = fom.add_interaction_class("Ping");
        let payload = fom.add_parameter(ping, "payload").unwrap();
        let rti = Rti::new();
        rti.create_federation("f", fom).unwrap();
        let a = rti.join("f", "a").unwrap();
        let b = rti.join("f", "b").unwrap();
        a.publish_interaction(ping).unwrap();
        b.subscribe_interaction(ping).unwrap();
        a.send_interaction(ping, vec![(payload, b"hi".to_vec())], None)
            .unwrap();
        let events = b.tick().unwrap();
        assert!(matches!(
            events.as_slice(),
            [Callback::ReceiveInteraction { class, .. }] if *class == ping
        ));
    }

    #[test]
    fn sync_points_complete_when_all_achieve() {
        let rti = Rti::new();
        rti.create_federation("f", ObjectModel::new()).unwrap();
        let a = rti.join("f", "a").unwrap();
        let b = rti.join("f", "b").unwrap();
        a.register_sync_point("ready").unwrap();
        assert!(matches!(
            a.tick().unwrap().as_slice(),
            [Callback::SyncPointAnnounced { label }] if label == "ready"
        ));
        b.tick().unwrap();
        a.achieve_sync_point("ready").unwrap();
        assert!(a.tick().unwrap().is_empty());
        b.achieve_sync_point("ready").unwrap();
        assert!(matches!(
            a.tick().unwrap().as_slice(),
            [Callback::FederationSynchronized { label }] if label == "ready"
        ));
    }

    #[test]
    fn resign_deletes_owned_objects() {
        let (fom, mn, pos) = fom_with_node();
        let rti = Rti::new();
        rti.create_federation("f", fom).unwrap();
        let owner = rti.join("f", "owner").unwrap();
        let watcher = rti.join("f", "watcher").unwrap();
        owner.publish_object_class(mn).unwrap();
        watcher.subscribe_object_class(mn, &[pos]).unwrap();
        let obj = owner.register_object(mn).unwrap();
        watcher.tick().unwrap();
        owner.resign().unwrap();
        assert!(matches!(
            watcher.tick().unwrap().as_slice(),
            [Callback::RemoveObject { object }] if *object == obj
        ));
    }

    #[test]
    fn rti_handles_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<Rti>();
        check::<Federate>();
    }
}
