use std::fmt;

macro_rules! handle_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates a handle from its raw value. Handles are issued by
            /// the RTI; constructing them manually is only useful in tests.
            #[must_use]
            pub const fn from_raw(raw: u32) -> Self {
                $name(raw)
            }

            /// The raw numeric handle.
            #[must_use]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "#{}"), self.0)
            }
        }
    };
}

handle_type!(
    /// Identifies a joined federate within a federation execution.
    FederateHandle,
    "federate"
);
handle_type!(
    /// Identifies an object class declared in the federation object model.
    ObjectClassHandle,
    "class"
);
handle_type!(
    /// Identifies an attribute of an object class.
    AttributeHandle,
    "attribute"
);
handle_type!(
    /// Identifies an interaction class declared in the FOM.
    InteractionClassHandle,
    "interaction"
);
handle_type!(
    /// Identifies a parameter of an interaction class.
    ParameterHandle,
    "parameter"
);
handle_type!(
    /// Identifies a registered object instance.
    ObjectHandle,
    "object"
);
handle_type!(
    /// Identifies a routing region created for data distribution
    /// management.
    RegionHandle,
    "region"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trips() {
        let h = ObjectHandle::from_raw(7);
        assert_eq!(h.raw(), 7);
        assert_eq!(h, ObjectHandle::from_raw(7));
        assert_ne!(h, ObjectHandle::from_raw(8));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(FederateHandle::from_raw(1).to_string(), "federate#1");
        assert_eq!(AttributeHandle::from_raw(2).to_string(), "attribute#2");
    }

    #[test]
    fn handles_are_ordered() {
        assert!(ObjectHandle::from_raw(1) < ObjectHandle::from_raw(2));
    }
}
