use std::error::Error;
use std::fmt;

use crate::FedTime;

/// Errors returned by RTI services.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtiError {
    /// A federation execution with this name already exists.
    FederationAlreadyExists {
        /// The federation name.
        name: String,
    },
    /// No federation execution with this name exists.
    UnknownFederation {
        /// The requested name.
        name: String,
    },
    /// The federate handle is not joined (or has resigned).
    NotJoined,
    /// A FOM handle (class, attribute, interaction, parameter) is unknown.
    UnknownHandle,
    /// The object instance is unknown or has been deleted.
    UnknownObject,
    /// The federate tried to update an object it does not own, or update a
    /// class it has not published.
    NotPublished,
    /// A name was declared twice in the FOM.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// Time regulation/constraint was enabled twice.
    TimeAlreadyEnabled,
    /// A time-advance request went backwards, or a timestamped message
    /// violated the sender's lookahead guarantee.
    InvalidTime {
        /// The offending timestamp.
        requested: FedTime,
        /// The earliest legal timestamp.
        minimum: FedTime,
    },
    /// A time-advance request was issued while one is already pending.
    AdvanceAlreadyPending,
    /// A synchronization label was registered twice, or achieved without
    /// being announced.
    InvalidSyncPoint {
        /// The offending label.
        label: String,
    },
    /// A routing region was malformed, unknown, not owned by the caller, or
    /// its dimensionality disagrees with the federation's routing space.
    InvalidRegion {
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for RtiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtiError::FederationAlreadyExists { name } => {
                write!(f, "federation execution already exists: {name}")
            }
            RtiError::UnknownFederation { name } => write!(f, "unknown federation: {name}"),
            RtiError::NotJoined => write!(f, "federate is not joined"),
            RtiError::UnknownHandle => write!(f, "unknown FOM handle"),
            RtiError::UnknownObject => write!(f, "unknown object instance"),
            RtiError::NotPublished => write!(f, "class not published or object not owned"),
            RtiError::DuplicateName { name } => write!(f, "name declared twice: {name}"),
            RtiError::TimeAlreadyEnabled => write!(f, "time service already enabled"),
            RtiError::InvalidTime { requested, minimum } => {
                write!(f, "invalid time {requested}: must be at least {minimum}")
            }
            RtiError::AdvanceAlreadyPending => {
                write!(f, "time advance request already pending")
            }
            RtiError::InvalidSyncPoint { label } => {
                write!(f, "invalid synchronization point: {label}")
            }
            RtiError::InvalidRegion { reason } => write!(f, "invalid routing region: {reason}"),
        }
    }
}

impl Error for RtiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = RtiError::InvalidTime {
            requested: FedTime::from_secs(1),
            minimum: FedTime::from_secs(2),
        };
        let msg = e.to_string();
        assert!(msg.contains("1.0"));
        assert!(msg.contains("2.0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<RtiError>();
    }
}
