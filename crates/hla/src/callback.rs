use bytes::Bytes;

use crate::{
    AttributeHandle, FedTime, InteractionClassHandle, ObjectClassHandle, ObjectHandle,
    ParameterHandle,
};

/// Attribute values carried by an update/reflect: `(attribute, bytes)` pairs
/// in attribute-handle order.
pub type AttributeValues = Vec<(AttributeHandle, Bytes)>;

/// Parameter values carried by an interaction.
pub type ParameterValues = Vec<(ParameterHandle, Bytes)>;

/// A callback evoked on a federate by [`Federate::tick`](crate::Federate::tick).
///
/// These mirror the HLA 1.3 `FederateAmbassador` services the paper's
/// simulation uses: object discovery, attribute reflection, interaction
/// receipt, object removal, time grants and synchronization-point
/// notifications.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Callback {
    /// A subscribed object instance was registered by another federate.
    DiscoverObject {
        /// The new instance.
        object: ObjectHandle,
        /// Its class.
        class: ObjectClassHandle,
        /// Its instance name.
        name: String,
    },
    /// A subscribed attribute update arrived.
    ReflectAttributes {
        /// The updated instance.
        object: ObjectHandle,
        /// The subscribed subset of the updated values.
        values: AttributeValues,
        /// The update's timestamp when it was sent timestamp-ordered.
        time: Option<FedTime>,
    },
    /// A subscribed interaction arrived.
    ReceiveInteraction {
        /// The interaction class.
        class: InteractionClassHandle,
        /// Its parameter values.
        values: ParameterValues,
        /// The timestamp when sent timestamp-ordered.
        time: Option<FedTime>,
    },
    /// A discovered object instance was deleted by its owner.
    RemoveObject {
        /// The removed instance.
        object: ObjectHandle,
    },
    /// The federate's pending time-advance request was granted.
    TimeAdvanceGrant {
        /// The granted federation time.
        time: FedTime,
    },
    /// A synchronization point was announced to the federation.
    SyncPointAnnounced {
        /// The point's label.
        label: String,
    },
    /// Every joined federate achieved the synchronization point.
    FederationSynchronized {
        /// The point's label.
        label: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callbacks_compare_by_value() {
        let a = Callback::TimeAdvanceGrant {
            time: FedTime::from_secs(1),
        };
        let b = Callback::TimeAdvanceGrant {
            time: FedTime::from_secs(1),
        };
        assert_eq!(a, b);
    }

    #[test]
    fn callback_is_send() {
        fn check<T: Send>() {}
        check::<Callback>();
    }
}
