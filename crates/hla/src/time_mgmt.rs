use std::collections::BTreeMap;

use crate::{FedTime, FederateHandle, RtiError};

/// Per-federate time-management state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TimeState {
    /// `Some(lookahead)` when the federate is time-regulating.
    pub regulating: Option<FedTime>,
    /// Whether the federate is time-constrained.
    pub constrained: bool,
    /// The federate's current (granted) time.
    pub current: FedTime,
    /// An outstanding time-advance request, if any.
    pub pending: Option<FedTime>,
}

impl TimeState {
    fn new() -> Self {
        TimeState {
            regulating: None,
            constrained: false,
            current: FedTime::ZERO,
            pending: None,
        }
    }

    /// The earliest timestamp this federate may still put on a message: its
    /// effective time plus lookahead. Only meaningful for regulating
    /// federates.
    fn promise(&self) -> FedTime {
        let lookahead = self.regulating.unwrap_or(FedTime::ZERO);
        // While a request to `t` is pending the federate has committed to
        // reaching `t`, so its guarantee advances with the request.
        let effective = self.pending.map_or(self.current, |p| p.max(self.current));
        effective.saturating_add(lookahead)
    }
}

/// The federation's conservative time manager.
///
/// Implements the classic lower-bound-on-timestamp (LBTS) rule: a
/// time-constrained federate may advance to `t` only when every *other*
/// time-regulating federate has promised not to send messages with
/// timestamps below `t`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct TimeManager {
    states: BTreeMap<FederateHandle, TimeState>,
}

impl TimeManager {
    pub fn new() -> Self {
        TimeManager::default()
    }

    pub fn join(&mut self, fed: FederateHandle) {
        self.states.insert(fed, TimeState::new());
    }

    pub fn resign(&mut self, fed: FederateHandle) {
        self.states.remove(&fed);
    }

    pub fn state(&self, fed: FederateHandle) -> Option<&TimeState> {
        self.states.get(&fed)
    }

    pub fn enable_regulation(
        &mut self,
        fed: FederateHandle,
        lookahead: FedTime,
    ) -> Result<(), RtiError> {
        let st = self.states.get_mut(&fed).ok_or(RtiError::NotJoined)?;
        if st.regulating.is_some() {
            return Err(RtiError::TimeAlreadyEnabled);
        }
        st.regulating = Some(lookahead);
        Ok(())
    }

    pub fn enable_constrained(&mut self, fed: FederateHandle) -> Result<(), RtiError> {
        let st = self.states.get_mut(&fed).ok_or(RtiError::NotJoined)?;
        if st.constrained {
            return Err(RtiError::TimeAlreadyEnabled);
        }
        st.constrained = true;
        Ok(())
    }

    /// Checks that a regulating sender may emit a message stamped `time`.
    pub fn check_send_time(&self, fed: FederateHandle, time: FedTime) -> Result<(), RtiError> {
        let st = self.states.get(&fed).ok_or(RtiError::NotJoined)?;
        let minimum = st
            .current
            .saturating_add(st.regulating.unwrap_or(FedTime::ZERO));
        if time < minimum {
            return Err(RtiError::InvalidTime {
                requested: time,
                minimum,
            });
        }
        Ok(())
    }

    /// Whether `fed` is time-regulating.
    pub fn is_regulating(&self, fed: FederateHandle) -> bool {
        self.states
            .get(&fed)
            .is_some_and(|s| s.regulating.is_some())
    }

    /// Whether `fed` is time-constrained.
    pub fn is_constrained(&self, fed: FederateHandle) -> bool {
        self.states.get(&fed).is_some_and(|s| s.constrained)
    }

    /// Files a time-advance request.
    ///
    /// # Errors
    ///
    /// [`RtiError::NotJoined`] for unknown federates,
    /// [`RtiError::AdvanceAlreadyPending`] when one is outstanding, and
    /// [`RtiError::InvalidTime`] for requests at or before the current time.
    pub fn request_advance(&mut self, fed: FederateHandle, to: FedTime) -> Result<(), RtiError> {
        let st = self.states.get_mut(&fed).ok_or(RtiError::NotJoined)?;
        if st.pending.is_some() {
            return Err(RtiError::AdvanceAlreadyPending);
        }
        if to <= st.current {
            return Err(RtiError::InvalidTime {
                requested: to,
                minimum: st.current,
            });
        }
        st.pending = Some(to);
        Ok(())
    }

    /// The lower bound on timestamps that may still reach `fed`: the minimum
    /// promise over all *other* regulating federates.
    pub fn lbts_for(&self, fed: FederateHandle) -> FedTime {
        self.states
            .iter()
            .filter(|(h, st)| **h != fed && st.regulating.is_some())
            .map(|(_, st)| st.promise())
            .min()
            .unwrap_or(FedTime::MAX)
    }

    /// Grants every pending request that has become safe; returns the grants
    /// in deterministic (handle) order. Looping until fixpoint matters:
    /// granting one federate advances its promise, which can unblock others.
    pub fn evaluate(&mut self) -> Vec<(FederateHandle, FedTime)> {
        let mut grants = Vec::new();
        loop {
            let mut granted_this_round = Vec::new();
            let handles: Vec<FederateHandle> = self.states.keys().copied().collect();
            for fed in handles {
                let Some(st) = self.states.get(&fed) else {
                    continue;
                };
                let Some(req) = st.pending else { continue };
                let safe = !st.constrained || req <= self.lbts_for(fed);
                if safe {
                    granted_this_round.push((fed, req));
                }
            }
            if granted_this_round.is_empty() {
                break;
            }
            for (fed, t) in &granted_this_round {
                let st = self.states.get_mut(fed).expect("granted federate exists");
                st.current = *t;
                st.pending = None;
            }
            grants.extend(granted_this_round);
        }
        grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fed(n: u32) -> FederateHandle {
        FederateHandle::from_raw(n)
    }

    fn manager_with(n: u32) -> TimeManager {
        let mut tm = TimeManager::new();
        for i in 0..n {
            tm.join(fed(i));
        }
        tm
    }

    #[test]
    fn unconstrained_requests_grant_immediately() {
        let mut tm = manager_with(1);
        tm.request_advance(fed(0), FedTime::from_secs(5)).unwrap();
        let grants = tm.evaluate();
        assert_eq!(grants, vec![(fed(0), FedTime::from_secs(5))]);
        assert_eq!(tm.state(fed(0)).unwrap().current, FedTime::from_secs(5));
    }

    #[test]
    fn constrained_federate_waits_for_regulator() {
        let mut tm = manager_with(2);
        tm.enable_regulation(fed(0), FedTime::from_secs(1)).unwrap();
        tm.enable_constrained(fed(1)).unwrap();

        tm.request_advance(fed(1), FedTime::from_secs(5)).unwrap();
        // Regulator is at 0 with lookahead 1: LBTS = 1 < 5 — no grant.
        assert!(tm.evaluate().is_empty());

        // Regulator asks to advance to 5: its promise becomes 6 ≥ 5.
        tm.request_advance(fed(0), FedTime::from_secs(5)).unwrap();
        let grants = tm.evaluate();
        assert_eq!(grants.len(), 2);
        assert_eq!(tm.state(fed(1)).unwrap().current, FedTime::from_secs(5));
    }

    #[test]
    fn lockstep_regulating_and_constrained_federates_advance() {
        // Both federates regulating + constrained, positive lookahead:
        // the common ADF simulation pattern. Lockstep requests must grant.
        let mut tm = manager_with(2);
        for i in 0..2 {
            tm.enable_regulation(fed(i), FedTime::from_secs_f64(0.5))
                .unwrap();
            tm.enable_constrained(fed(i)).unwrap();
        }
        for step in 1..=10u64 {
            let t = FedTime::from_secs(step);
            tm.request_advance(fed(0), t).unwrap();
            tm.request_advance(fed(1), t).unwrap();
            let grants = tm.evaluate();
            assert_eq!(grants.len(), 2, "step {step} deadlocked");
        }
    }

    #[test]
    fn grant_cascade_unblocks_chains() {
        // f0 regulating only; f1 regulating+constrained; f2 constrained only.
        let mut tm = manager_with(3);
        tm.enable_regulation(fed(0), FedTime::from_secs(1)).unwrap();
        tm.enable_regulation(fed(1), FedTime::from_secs(1)).unwrap();
        tm.enable_constrained(fed(1)).unwrap();
        tm.enable_constrained(fed(2)).unwrap();

        tm.request_advance(fed(2), FedTime::from_secs(2)).unwrap();
        tm.request_advance(fed(1), FedTime::from_secs(2)).unwrap();
        assert!(tm.evaluate().is_empty()); // f0 holds everyone at LBTS 1

        tm.request_advance(fed(0), FedTime::from_secs(2)).unwrap();
        let grants = tm.evaluate();
        // All three grant in one evaluation (fixpoint loop).
        assert_eq!(grants.len(), 3);
    }

    #[test]
    fn resigning_regulator_unblocks() {
        let mut tm = manager_with(2);
        tm.enable_regulation(fed(0), FedTime::ZERO).unwrap();
        tm.enable_constrained(fed(1)).unwrap();
        tm.request_advance(fed(1), FedTime::from_secs(1)).unwrap();
        assert!(tm.evaluate().is_empty());
        tm.resign(fed(0));
        assert_eq!(tm.evaluate().len(), 1);
    }

    #[test]
    fn backwards_and_double_requests_rejected() {
        let mut tm = manager_with(1);
        tm.request_advance(fed(0), FedTime::from_secs(2)).unwrap();
        assert_eq!(
            tm.request_advance(fed(0), FedTime::from_secs(3)),
            Err(RtiError::AdvanceAlreadyPending)
        );
        tm.evaluate();
        assert!(matches!(
            tm.request_advance(fed(0), FedTime::from_secs(1)),
            Err(RtiError::InvalidTime { .. })
        ));
    }

    #[test]
    fn send_time_respects_lookahead() {
        let mut tm = manager_with(1);
        tm.enable_regulation(fed(0), FedTime::from_secs(2)).unwrap();
        assert!(tm.check_send_time(fed(0), FedTime::from_secs(2)).is_ok());
        assert!(matches!(
            tm.check_send_time(fed(0), FedTime::from_secs(1)),
            Err(RtiError::InvalidTime { .. })
        ));
    }

    #[test]
    fn double_enable_rejected() {
        let mut tm = manager_with(1);
        tm.enable_regulation(fed(0), FedTime::ZERO).unwrap();
        assert_eq!(
            tm.enable_regulation(fed(0), FedTime::ZERO),
            Err(RtiError::TimeAlreadyEnabled)
        );
        tm.enable_constrained(fed(0)).unwrap();
        assert_eq!(
            tm.enable_constrained(fed(0)),
            Err(RtiError::TimeAlreadyEnabled)
        );
    }

    #[test]
    fn lbts_without_regulators_is_unbounded() {
        let tm = manager_with(2);
        assert_eq!(tm.lbts_for(fed(0)), FedTime::MAX);
    }
}
