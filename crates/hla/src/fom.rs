use std::collections::BTreeMap;

use crate::{
    AttributeHandle, InteractionClassHandle, ObjectClassHandle, ParameterHandle, RtiError,
};

#[derive(Debug, Clone, PartialEq, Eq)]
struct ObjectClassDef {
    name: String,
    attributes: BTreeMap<AttributeHandle, String>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct InteractionClassDef {
    name: String,
    parameters: BTreeMap<ParameterHandle, String>,
}

/// The federation object model (FOM): the declared object classes with
/// their attributes and interaction classes with their parameters.
///
/// In HLA 1.3 this is the `.fed` file parsed at federation creation; here it
/// is built programmatically and attached to
/// [`Rti::create_federation`](crate::Rti::create_federation).
///
/// # Examples
///
/// ```
/// use mobigrid_hla::ObjectModel;
///
/// let mut fom = ObjectModel::new();
/// let mn = fom.add_object_class("MobileNode");
/// let pos = fom.add_attribute(mn, "position").unwrap();
/// let vel = fom.add_attribute(mn, "velocity").unwrap();
/// assert_eq!(fom.object_class_by_name("MobileNode"), Some(mn));
/// assert_eq!(fom.attribute_by_name(mn, "position"), Some(pos));
/// assert_ne!(pos, vel);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectModel {
    object_classes: BTreeMap<ObjectClassHandle, ObjectClassDef>,
    interactions: BTreeMap<InteractionClassHandle, InteractionClassDef>,
    next_class: u32,
    next_attribute: u32,
    next_interaction: u32,
    next_parameter: u32,
}

impl ObjectModel {
    /// Creates an empty FOM.
    #[must_use]
    pub fn new() -> Self {
        ObjectModel::default()
    }

    /// Declares an object class. Duplicate names are allowed by HLA (they
    /// would be hierarchical there); here later declarations simply get
    /// distinct handles.
    pub fn add_object_class(&mut self, name: impl Into<String>) -> ObjectClassHandle {
        let handle = ObjectClassHandle::from_raw(self.next_class);
        self.next_class += 1;
        self.object_classes.insert(
            handle,
            ObjectClassDef {
                name: name.into(),
                attributes: BTreeMap::new(),
            },
        );
        handle
    }

    /// Declares an attribute of `class`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownHandle`] for an undeclared class and
    /// [`RtiError::DuplicateName`] when the class already has an attribute
    /// of that name.
    pub fn add_attribute(
        &mut self,
        class: ObjectClassHandle,
        name: impl Into<String>,
    ) -> Result<AttributeHandle, RtiError> {
        let name = name.into();
        let def = self
            .object_classes
            .get_mut(&class)
            .ok_or(RtiError::UnknownHandle)?;
        if def.attributes.values().any(|n| *n == name) {
            return Err(RtiError::DuplicateName { name });
        }
        let handle = AttributeHandle::from_raw(self.next_attribute);
        self.next_attribute += 1;
        def.attributes.insert(handle, name);
        Ok(handle)
    }

    /// Declares an interaction class.
    pub fn add_interaction_class(&mut self, name: impl Into<String>) -> InteractionClassHandle {
        let handle = InteractionClassHandle::from_raw(self.next_interaction);
        self.next_interaction += 1;
        self.interactions.insert(
            handle,
            InteractionClassDef {
                name: name.into(),
                parameters: BTreeMap::new(),
            },
        );
        handle
    }

    /// Declares a parameter of interaction `class`.
    ///
    /// # Errors
    ///
    /// Returns [`RtiError::UnknownHandle`] for an undeclared interaction and
    /// [`RtiError::DuplicateName`] for a repeated parameter name.
    pub fn add_parameter(
        &mut self,
        class: InteractionClassHandle,
        name: impl Into<String>,
    ) -> Result<ParameterHandle, RtiError> {
        let name = name.into();
        let def = self
            .interactions
            .get_mut(&class)
            .ok_or(RtiError::UnknownHandle)?;
        if def.parameters.values().any(|n| *n == name) {
            return Err(RtiError::DuplicateName { name });
        }
        let handle = ParameterHandle::from_raw(self.next_parameter);
        self.next_parameter += 1;
        def.parameters.insert(handle, name);
        Ok(handle)
    }

    /// Looks up an object class by name (first declared wins).
    #[must_use]
    pub fn object_class_by_name(&self, name: &str) -> Option<ObjectClassHandle> {
        self.object_classes
            .iter()
            .find(|(_, def)| def.name == name)
            .map(|(h, _)| *h)
    }

    /// Looks up an attribute of `class` by name.
    #[must_use]
    pub fn attribute_by_name(
        &self,
        class: ObjectClassHandle,
        name: &str,
    ) -> Option<AttributeHandle> {
        self.object_classes
            .get(&class)?
            .attributes
            .iter()
            .find_map(|(h, n)| if n == name { Some(*h) } else { None })
    }

    /// Looks up an interaction class by name.
    #[must_use]
    pub fn interaction_by_name(&self, name: &str) -> Option<InteractionClassHandle> {
        self.interactions
            .iter()
            .find(|(_, def)| def.name == name)
            .map(|(h, _)| *h)
    }

    /// The name of an object class.
    #[must_use]
    pub fn object_class_name(&self, class: ObjectClassHandle) -> Option<&str> {
        self.object_classes.get(&class).map(|d| d.name.as_str())
    }

    /// Whether `class` is declared.
    #[must_use]
    pub fn has_object_class(&self, class: ObjectClassHandle) -> bool {
        self.object_classes.contains_key(&class)
    }

    /// Whether `interaction` is declared.
    #[must_use]
    pub fn has_interaction(&self, interaction: InteractionClassHandle) -> bool {
        self.interactions.contains_key(&interaction)
    }

    /// Whether `attribute` belongs to `class`.
    #[must_use]
    pub fn class_has_attribute(
        &self,
        class: ObjectClassHandle,
        attribute: AttributeHandle,
    ) -> bool {
        self.object_classes
            .get(&class)
            .is_some_and(|d| d.attributes.contains_key(&attribute))
    }

    /// All attributes of `class`.
    #[must_use]
    pub fn attributes_of(&self, class: ObjectClassHandle) -> Vec<AttributeHandle> {
        self.object_classes
            .get(&class)
            .map(|d| d.attributes.keys().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_classes_and_attributes() {
        let mut fom = ObjectModel::new();
        let mn = fom.add_object_class("MobileNode");
        let pos = fom.add_attribute(mn, "position").unwrap();
        assert!(fom.has_object_class(mn));
        assert!(fom.class_has_attribute(mn, pos));
        assert_eq!(fom.object_class_name(mn), Some("MobileNode"));
        assert_eq!(fom.attributes_of(mn), vec![pos]);
    }

    #[test]
    fn duplicate_attribute_names_rejected() {
        let mut fom = ObjectModel::new();
        let mn = fom.add_object_class("MobileNode");
        fom.add_attribute(mn, "position").unwrap();
        assert!(matches!(
            fom.add_attribute(mn, "position"),
            Err(RtiError::DuplicateName { .. })
        ));
    }

    #[test]
    fn attribute_on_unknown_class_rejected() {
        let mut fom = ObjectModel::new();
        let ghost = ObjectClassHandle::from_raw(99);
        assert_eq!(fom.add_attribute(ghost, "x"), Err(RtiError::UnknownHandle));
    }

    #[test]
    fn interactions_and_parameters() {
        let mut fom = ObjectModel::new();
        let hello = fom.add_interaction_class("Hello");
        let who = fom.add_parameter(hello, "who").unwrap();
        assert!(fom.has_interaction(hello));
        assert_eq!(fom.interaction_by_name("Hello"), Some(hello));
        assert!(fom.add_parameter(hello, "who").is_err());
        let _ = who;
    }

    #[test]
    fn lookups_by_name() {
        let mut fom = ObjectModel::new();
        let a = fom.add_object_class("A");
        let b = fom.add_object_class("B");
        assert_eq!(fom.object_class_by_name("A"), Some(a));
        assert_eq!(fom.object_class_by_name("B"), Some(b));
        assert_eq!(fom.object_class_by_name("C"), None);
        let ax = fom.add_attribute(a, "x").unwrap();
        assert_eq!(fom.attribute_by_name(a, "x"), Some(ax));
        assert_eq!(fom.attribute_by_name(b, "x"), None);
    }

    #[test]
    fn handles_are_globally_unique() {
        let mut fom = ObjectModel::new();
        let a = fom.add_object_class("A");
        let b = fom.add_object_class("B");
        let ax = fom.add_attribute(a, "x").unwrap();
        let bx = fom.add_attribute(b, "x").unwrap();
        assert_ne!(ax, bx);
        assert!(!fom.class_has_attribute(a, bx));
    }
}
